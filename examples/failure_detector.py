"""Ω-style leader election over messages, with optimistic timeouts.

Run::

    python examples/failure_detector.py

The paper's recipe — exploit timing when it holds, survive it when it
does not, adapt the optimistic bound online — applied to a
message-passing failure detector (§4's suggested extension):

* five nodes heartbeat each other over FIFO channels (emulated on atomic
  registers, so the whole run is deterministic);
* node 0 (the rightful leader) suffers a long stall — its heartbeats
  blow through everyone's optimistic timeout, it gets suspected, and
  leadership churns to node 1;
* when the stall ends, node 0's heartbeats return; the detectors
  *unsuspect* it and grow their timeouts (the adaptive rule), and the
  group converges back to leader 0 — and stays there, because the grown
  timeouts now absorb stalls of that size.
"""

from repro.mp import OmegaElection, eventual_agreement
from repro.sim import (
    ConstantTiming,
    Engine,
    FailureWindowTiming,
    failure_window,
)

N = 5
ROUNDS = 60


def main() -> None:
    omega = OmegaElection(
        n=N, heartbeat_period=1.0, initial_timeout=2.5, timeout_growth=2.0
    )
    timing = FailureWindowTiming(
        ConstantTiming(0.05),
        [failure_window(start=8.0, end=20.0, pids=[0], stretch=100.0)],
    )
    engine = Engine(delta=1.0, timing=timing, max_time=10_000.0)
    for pid in range(N):
        engine.spawn(omega.run(pid, ROUNDS), pid=pid)
    result = engine.run()

    samples = dict(result.returns)
    print(f"run status       : {result.status.value}")
    print(f"timing failures  : {len(result.trace.timing_failures())}")

    # Show node 1's view of leadership over time.
    view = samples[1]
    changes = []
    current = None
    for sample in view:
        if sample.leader != current:
            changes.append((sample.time, sample.leader))
            current = sample.leader
    print("node 1's leadership view (time -> leader):")
    for at, leader in changes:
        print(f"  t={at:5.1f}  leader = node {leader}")

    leader = eventual_agreement(samples, tail_fraction=0.2)
    print(f"eventual agreement: leader = node {leader}")
    assert leader == 0, "the group must converge back to node 0"
    print("churned during the stall, converged after — the Ω contract, "
          "delivered by the paper's optimistic-timing recipe")


if __name__ == "__main__":
    main()
