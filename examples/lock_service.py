"""Algorithm 3 as a lock service: fast when timing holds, safe when not.

Run::

    python examples/lock_service.py

Scenario: four workers hammer a shared critical section.

* Phase A (clean): the doorway serializes everyone — handovers cost O(Δ),
  independent of the worker count.
* Phase B (a timing-failure storm): the doorway is breached and several
  workers flood the embedded asynchronous lock, which keeps the critical
  section exclusive (stabilization).
* Phase C (clean again): the flood drains and handovers return to O(Δ)
  (convergence — the resilience definition, checked by the library's
  own resilience checker).

A pure bakery lock run on the same workload shows the price of not using
the timing assumption: handovers cost Θ(n) steps even in phase A.
"""

from repro.algorithms import BakeryLock, mutex_session
from repro.core.mutex import default_time_resilient_mutex
from repro.core.resilience import check_resilience
from repro.sim import (
    ConstantTiming,
    Engine,
    FailureWindowTiming,
    failure_window,
)
from repro.spec import check_mutex, time_complexity

DELTA = 1.0
N = 4
SESSIONS = 8


def run_workload_n(lock, timing, n):
    engine = Engine(delta=DELTA, timing=timing, max_time=100_000.0)
    for pid in range(n):
        engine.spawn(
            mutex_session(lock, pid, SESSIONS, cs_duration=0.3,
                          ncs_duration=0.4),
            pid=pid,
        )
    return engine.run()


def run_workload(lock, timing):
    return run_workload_n(lock, timing, N)


def main() -> None:
    storm = FailureWindowTiming(
        ConstantTiming(0.25 * DELTA),
        [failure_window(start=8.0, end=16.0, stretch=25.0)],
    )

    print("=== Algorithm 3 (Fischer doorway + Bar-David(Lamport fast)) ===")
    lock = default_time_resilient_mutex(N, delta=DELTA)
    result = run_workload(lock, storm)
    verdict = check_mutex(result.trace)
    report = check_resilience(result.trace, psi_deltas=8.0)
    print(f"status            : {result.status.value}")
    print(f"CS entries        : {len(result.trace.cs_intervals())} "
          f"(expected {N * SESSIONS})")
    print(f"timing failures   : {len(result.trace.timing_failures())}")
    print(f"mutual exclusion  : {'held' if verdict.safe else 'VIOLATED'}")
    print(f"efficiency (preΔ) : metric {report.efficiency_value:.2f} <= "
          f"ψ = {report.psi:.2f}: {report.efficiency_ok}")
    print(f"convergence       : {report.convergence_time:.2f} time units "
          f"after failures stopped" if report.converged else
          "convergence       : not within this trace")

    from repro.analysis import render_timeline
    print("\ntimeline (the storm is visible as ! marks):")
    print(render_timeline(result.trace, width=100))

    print("\n=== the contrast: paper metric vs n, clean timing ===")
    clean = ConstantTiming(0.25 * DELTA)
    print(f"{'n':>4}  {'Algorithm 3':>12}  {'Bakery':>8}")
    for n in (2, 4, 8, 16):
        alg3_run = run_workload_n(default_time_resilient_mutex(n, delta=DELTA),
                                  clean, n)
        bakery_run = run_workload_n(BakeryLock(n), clean, n)
        print(f"{n:>4}  {time_complexity(alg3_run.trace):>12.2f}  "
              f"{time_complexity(bakery_run.trace):>8.2f}")
    print("-> Algorithm 3 stays O(Δ) while the bakery's Θ(n) scans grow: "
          "the crossover lands by n = 8")


if __name__ == "__main__":
    main()
