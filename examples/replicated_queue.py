"""A wait-free replicated FIFO queue from atomic registers.

Run::

    python examples/replicated_queue.py

The paper's §1.4 invokes Herlihy's universality: wait-free consensus from
registers gives a wait-free implementation of *any* sequential object.
This example builds a FIFO queue through the universal construction over
time-resilient consensus and drives it with two producers and two
consumers — one producer crashing mid-stream, one consumer suffering a
timing-failure window — then verifies the observed history is
linearizable against the sequential queue specification.
"""

from repro.core.derived import Universal
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    failure_window,
)
from repro.spec import (QueueModel, check_linearizability, history_from_trace,
                        pending_from_trace)

DELTA = 1.0
N = 4


def producer(queue: Universal, pid: int, items):
    client = queue.client(pid)
    for item in items:
        yield from client.invoke("enqueue", item)
    return f"produced {len(items)}"


def consumer(queue: Universal, pid: int, attempts: int):
    client = queue.client(pid)
    got = []
    for _ in range(attempts):
        item = yield from client.invoke("dequeue")
        if item is not None:
            got.append(item)
    return got


def main() -> None:
    queue = Universal(n=N, delta=DELTA, model=QueueModel(), object_id="jobs")

    timing = FailureWindowTiming(
        ConstantTiming(0.5 * DELTA),
        # consumer 3 stalls hard mid-run
        [failure_window(start=40.0, end=90.0, pids=[3], stretch=30.0)],
    )
    # producer 1 crashes after 120 shared steps (mid-enqueue, perhaps)
    crashes = CrashSchedule(after_steps={1: 120})

    engine = Engine(delta=DELTA, timing=timing, crashes=crashes,
                    max_time=100_000.0)
    engine.spawn(producer(queue, 0, [f"a{i}" for i in range(4)]), pid=0)
    engine.spawn(producer(queue, 1, [f"b{i}" for i in range(4)]), pid=1)
    engine.spawn(consumer(queue, 2, attempts=6), pid=2)
    engine.spawn(consumer(queue, 3, attempts=4), pid=3)
    result = engine.run()

    print(f"status          : {result.status.value}")
    print(f"crashed         : {result.crashed_pids}")
    print(f"timing failures : {len(result.trace.timing_failures())}")
    for pid, value in sorted(result.returns.items()):
        print(f"p{pid} -> {value!r}")

    history = history_from_trace(result.trace, obj="jobs")
    pending = pending_from_trace(result.trace, obj="jobs")
    verdict = check_linearizability(history, QueueModel(), pending=pending)
    print(f"completed ops   : {len(history)} (+{len(pending)} pending from the crash)")
    print(f"linearizable    : {verdict.ok} "
          f"(search explored {verdict.explored} nodes)")
    assert verdict.ok

    # Each consumer individually observes every producer's items in FIFO
    # order (the global FIFO interleaving is certified by the witness).
    for pid in (2, 3):
        got = result.returns.get(pid, [])
        for prefix in ("a", "b"):
            seq = [v for v in got if str(v).startswith(prefix)]
            assert seq == sorted(seq), f"p{pid} saw {prefix}-items out of order: {seq}"
    print("per-producer FIFO order preserved through the crash and the stall")


if __name__ == "__main__":
    main()
