"""A leadership service for a replica group, resilient to timing failures.

Run::

    python examples/election_service.py

Scenario: five replicas coordinate leadership epochs through a
:class:`repro.core.derived.ConsensusService` (one multivalued consensus
instance per epoch, built from Algorithm 1 tournaments).  Epoch 1 runs
under clean timing; during epoch 2 one replica suffers a long timing-
failure window (e.g. a GC pause or VM migration); in epoch 3 two replicas
have crashed outright.  The service's guarantees, inherited from the
paper's consensus:

* at most one leader per epoch, always — even during the timing failures;
* every live replica learns the epoch's leader once timing constraints
  hold, no matter how many others crashed.
"""

from repro.core.derived import ConsensusService
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    failure_window,
)

DELTA = 1.0
N = 5


def run_epoch_demo() -> None:
    service = ConsensusService(delta=DELTA, n=N)

    # Epoch 2 happens while replica 0 is stalled far beyond Δ.
    timing = FailureWindowTiming(
        ConstantTiming(0.6 * DELTA),
        [failure_window(start=30.0, end=70.0, pids=[0], stretch=40.0)],
    )
    # Replicas 3 and 4 die before epoch 3 concludes.
    crashes = CrashSchedule(at_time={3: 95.0, 4: 100.0})

    engine = Engine(delta=DELTA, timing=timing, crashes=crashes,
                    max_time=5_000.0)
    epochs = [1, 2, 3]
    for pid in range(N):
        # Stagger epochs with think time so the failure window lands in
        # epoch 2 and the crashes in epoch 3.
        def replica_with_pauses(p=pid):
            from repro.sim import ops

            learned = {}
            for epoch in epochs:
                leader = yield from service.propose(("epoch", epoch), p, p)
                learned[epoch] = leader
                yield ops.local_work(40.0)  # between-epoch quiet period
            return learned

        engine.spawn(replica_with_pauses(), pid=pid)
    result = engine.run()

    print(f"run status      : {result.status.value}")
    print(f"crashed replicas: {result.crashed_pids}")
    print(f"timing failures : {len(result.trace.timing_failures())}")
    per_epoch = {}
    for pid, learned in result.returns.items():
        for epoch, leader in learned.items():
            per_epoch.setdefault(epoch, set()).add(leader)
    for epoch in epochs:
        leaders = per_epoch.get(epoch, set())
        print(f"epoch {epoch}: leaders learned by live replicas = {sorted(leaders)}")
        assert len(leaders) <= 1, "split brain!"
    print("no epoch ever had two leaders — safety held through failures")


if __name__ == "__main__":
    run_epoch_demo()
