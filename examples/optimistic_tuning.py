"""Tuning optimistic(Δ) online, as §1.2/§3.3 of the paper suggests.

Run::

    python examples/optimistic_tuning.py

Part 1 — the simulator: sweep the delay estimate against the worst legal
schedule (every step within the true Δ, maximally adversarial).  Estimates
below Δ never decide; estimates above pay linearly.  Then let an AIMD
estimator (the paper's TCP-congestion-control suggestion) discover the
knee from a 20x underestimate, with safety guaranteed at every step.

Part 2 — the real machine: measure the host's actual inter-step gaps under
thread contention (GIL included) and show how enormous a *sound* Δ would
be compared to an optimistic p99 choice — the practical motivation for
the whole idea.
"""

from repro.core.consensus import run_consensus
from repro.core.optimistic import AimdEstimator, tune
from repro.runtime import measure_host_delta
from repro.sim import ConstantTiming, HookTiming
from repro.sim.adversary import round_conflict_hook

TRUE_DELTA = 1.0


def one_instance(estimate: float):
    """One consensus instance against the worst legal schedule."""
    timing = HookTiming(
        ConstantTiming(0.01 * TRUE_DELTA), round_conflict_hook(TRUE_DELTA)
    )
    result = run_consensus(
        [0, 1], delta=TRUE_DELTA, timing=timing,
        algorithm_delta=estimate, max_time=120.0,
    )
    assert result.verdict.safe  # at *every* estimate
    decided = result.verdict.terminated
    cost = (result.max_decision_time or 120.0) / TRUE_DELTA
    return decided, cost


def sweep() -> None:
    print("=== estimate sweep (true Δ = 1.0, worst legal schedule) ===")
    print(f"{'estimate':>9}  {'decided':>7}  {'time (Δ)':>9}")
    for estimate in (0.1, 0.5, 0.9, 1.0, 1.5, 3.0, 6.0):
        decided, cost = one_instance(estimate)
        cost_text = f"{cost:9.2f}" if decided else "   capped"
        print(f"{estimate:9.2f}  {'yes' if decided else 'no':>7}  {cost_text}")
    print("-> the cliff sits exactly at Δ; above it latency grows with "
          "the estimate")


def aimd_demo() -> None:
    print("\n=== AIMD tuning from a 20x underestimate ===")
    estimator = AimdEstimator(
        initial=0.05 * TRUE_DELTA, increase_factor=2.0,
        decrease_step=0.02 * TRUE_DELTA, patience=5,
    )
    steps = tune(estimator, lambda est: one_instance(est), instances=15)
    for step in steps:
        outcome = "decided" if step.success else "failed "
        print(f"instance {step.instance:2d}: estimate {step.estimate:5.2f}Δ "
              f"-> {outcome} (cost {step.cost:6.2f}Δ)")
    print(f"-> settled at {estimator.current():.2f}Δ after "
          f"{estimator.failures} failures; safety never depended on it")


def host_measurement() -> None:
    print("\n=== the host's real step times (why optimistic(Δ) matters) ===")
    report = measure_host_delta(threads=4, steps_per_thread=3_000)
    print(report)
    sound = report.maximum
    optimistic = report.optimistic(0.99)
    print(f"a sound Δ (max observed)     : {sound * 1e6:10.1f} us")
    print(f"optimistic(Δ) (p99 observed) : {optimistic * 1e6:10.1f} us")
    if optimistic > 0:
        print(f"-> the sound bound is {sound / optimistic:.1f}x larger; "
              f"running with it would make every delay statement that much "
              f"slower, for failures that almost never happen")


if __name__ == "__main__":
    sweep()
    aimd_demo()
    host_measurement()
