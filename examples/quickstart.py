"""Quickstart: time-resilient consensus in three scenarios.

Run::

    python examples/quickstart.py

Demonstrates the paper's headline guarantees on Algorithm 1:

1. a clean timing-based run — everyone decides within 15·Δ;
2. a run with an injected timing-failure window — safety holds
   throughout, liveness resumes the moment the window closes;
3. a run where most processes crash — the survivor still decides
   (wait-freedom).
"""

from repro.core.consensus import run_consensus
from repro.sim import (
    ConstantTiming,
    CrashSchedule,
    FailureWindowTiming,
    failure_window,
)

DELTA = 1.0  # the known upper bound on one shared-memory step


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def scenario_clean() -> None:
    banner("1. clean timing-based run (steps within Δ)")
    result = run_consensus(
        inputs=[0, 1, 1, 0, 1],
        delta=DELTA,
        timing=ConstantTiming(step=0.8 * DELTA),
    )
    print(f"decisions      : {result.decisions}")
    print(f"agreed         : {result.agreed}")
    print(f"worst decision : {result.max_decision_time_in_deltas:.1f}·Δ "
          f"(paper bound: 15·Δ)")


def scenario_timing_failures() -> None:
    banner("2. transient timing failures (6Δ window, 30x stretched steps)")
    timing = FailureWindowTiming(
        ConstantTiming(step=0.8 * DELTA),
        [failure_window(start=0.0, end=6.0 * DELTA, stretch=30.0)],
    )
    result = run_consensus(
        inputs=[0, 1, 0],
        delta=DELTA,
        timing=timing,
        max_time=1_000.0,
    )
    failures = len(result.run.trace.timing_failures())
    last = result.run.trace.last_failure_time
    print(f"timing failures observed : {failures}")
    print(f"safety (validity+agree)  : {result.verdict.safe}")
    print(f"decisions                : {result.decisions}")
    print(f"last failure at          : {last:.1f}, "
          f"last decision at {result.max_decision_time:.1f} "
          f"(recovered {result.max_decision_time - last:.1f} later)")


def scenario_crashes() -> None:
    banner("3. wait-freedom: 4 of 5 processes crash")
    result = run_consensus(
        inputs=[0, 1, 1, 0, 1],
        delta=DELTA,
        timing=ConstantTiming(step=0.8 * DELTA),
        crashes=CrashSchedule(after_steps={0: 1, 1: 2, 2: 3, 3: 4}),
    )
    print(f"crashed pids : {result.run.crashed_pids}")
    print(f"decisions    : {result.decisions}")
    print(f"verdict      : {result.verdict}")


def main() -> None:
    scenario_clean()
    scenario_timing_failures()
    scenario_crashes()
    print("\nAll three scenarios satisfied the consensus specification.")


if __name__ == "__main__":
    main()
