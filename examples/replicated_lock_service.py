"""A replicated lock service: Algorithm 3 over quorum-emulated registers.

Run::

    python examples/replicated_lock_service.py          # simulated network
    python examples/replicated_lock_service.py --live   # real loopback sockets

The paper's time-resilient mutex (Algorithm 3) runs here *unchanged* —
same generator program, same registers — but the registers are an
illusion: three clients talk to three replica servers over a crash-prone
message network, and every read/write becomes two ABD majority phases
(query the highest timestamp, then store / write back under a larger
one).  Mid-run, a partition cuts two of the three replicas off for a
window.  During the window no majority is reachable, so lock operations
*block* — they never return stale values — and the critical-section
timeline shows a gap.  When the partition heals, retransmission carries
the pending phases over, the service converges, and every session
completes.  Mutual exclusion holds throughout: safety never rests, even
while the network misbehaves.

With ``--live`` the *same* client programs run over
:class:`repro.serve.AsyncioSubstrate` — real TCP streams on loopback,
wall-clock time, driven by :class:`repro.serve.AsyncioDriver`.  Not a
rewrite: the generators are identical objects; only the substrate under
them changes.  The default (simulated) path is untouched and remains the
deterministic regression guard.
"""

import sys

from repro.algorithms import mutex_session
from repro.core.mutex import default_time_resilient_mutex
from repro.net import NetFaultPlan, Partition, QuorumSystem, convergence_start
from repro.spec import check_mutual_exclusion

CLIENTS = 3
REPLICAS = 3
SESSIONS = 2
WINDOW = (60.0, 110.0)


def main() -> None:
    # Pids 0..2 are lock clients, 3..5 are register replicas; the window
    # isolates replicas 4 and 5 — a majority, so the service must stall.
    connected = tuple(range(CLIENTS + 1))
    isolated = tuple(range(CLIENTS + 1, CLIENTS + REPLICAS))
    faults = NetFaultPlan(partitions=(
        Partition(start=WINDOW[0], end=WINDOW[1], groups=(connected, isolated)),
    ))
    system = QuorumSystem(
        clients=CLIENTS, replicas=REPLICAS, bound=1.0, seed=0, faults=faults
    )
    lock = default_time_resilient_mutex(CLIENTS, delta=system.delta)
    programs = [
        mutex_session(lock, pid, SESSIONS, cs_duration=0.2, ncs_duration=0.2)
        for pid in range(CLIENTS)
    ]
    result = system.run(programs)

    stats = system.transport.stats
    print(f"run status        : {result.status.value}")
    print(f"delta_net         : {system.delta:.2f} (delivery bound 1.0)")
    print(f"partition window  : t={WINDOW[0]:.0f}..{WINDOW[1]:.0f} "
          f"(replicas {isolated} cut off — no majority)")
    print(f"messages          : sent={stats.messages_sent} "
          f"delivered={stats.messages_delivered} "
          f"dropped={stats.messages_dropped}")
    print(f"quorum phases     : {stats.quorum_rtts}")

    overlaps = check_mutual_exclusion(result.trace)
    print(f"mutual exclusion  : {'held' if not overlaps else 'VIOLATED'}")

    resume_at = convergence_start(faults)
    print("critical-section timeline:")
    for interval in sorted(result.trace.cs_intervals(), key=lambda i: i.enter):
        if interval.enter < WINDOW[0]:
            phase = "before the partition"
        elif interval.enter < resume_at:
            phase = "inside the window (minority side still connected)"
        else:
            phase = "after the heal"
        print(f"  t={interval.enter:7.2f}..{interval.exit:7.2f}  "
              f"client {interval.pid}  ({phase})")

    entries = result.trace.cs_intervals()
    after = [i for i in entries if i.enter >= resume_at]
    print(f"convergence       : {len(after)} of {len(entries)} entries after "
          f"the window closed at t={resume_at:.0f}")

    assert not overlaps, "exclusion must hold through the partition"
    assert result.completed, "every session must finish once the net heals"
    assert len(entries) == CLIENTS * SESSIONS
    assert any(i.enter < WINDOW[0] for i in entries), "the service ran first"
    assert after, "progress must resume after the heal"
    print("blocked while the majority was unreachable, converged after — "
          "the paper's resilience contract, served over a quorum")


def main_live() -> None:
    """The same lock sessions over real loopback sockets."""
    import asyncio

    from repro.obs.tracer import Tracer, trace_scope
    from repro.serve import AsyncioDriver, AsyncioSubstrate

    bound = 0.02  # assumed delivery bound: 20ms, generous for loopback
    tracer = Tracer()

    async def body():
        substrate = AsyncioSubstrate(CLIENTS + REPLICAS, bound=bound, tracer=tracer)
        await substrate.start()
        system = QuorumSystem(
            clients=CLIENTS, replicas=REPLICAS, substrate=substrate, seed=0
        )
        lock = default_time_resilient_mutex(CLIENTS, delta=system.delta)
        driver = AsyncioDriver(substrate, tracer=tracer)
        for pid in system.replica_pids:
            driver.spawn(system.replica(pid), pid=pid, name=f"replica{pid}")
        for pid in range(CLIENTS):
            program = mutex_session(
                lock, pid, SESSIONS, cs_duration=0.05, ncs_duration=0.05
            )
            driver.spawn(
                system.emulate_registers(pid, program), pid=pid, name=f"client{pid}"
            )
        await driver.wait()
        await substrate.close()
        return system

    with trace_scope(tracer):
        system = asyncio.run(body())

    stats = system.transport.stats
    print(f"substrate         : live loopback TCP (delivery bound {bound}s)")
    print(f"delta_net         : {system.delta:.3f}s")
    print(f"messages          : sent={stats.messages_sent} "
          f"delivered={stats.messages_delivered}")
    print(f"quorum phases     : {stats.quorum_rtts}")

    # Pair CS_ENTER/CS_EXIT label records per client, then sweep for
    # overlap — the live-trace equivalent of check_mutual_exclusion.
    intervals = []
    open_cs = {}
    for record in tracer.take():
        if record.get("kind") != "label":
            continue
        pid, t = record["pid"], record["t"]
        if record["label"] == "cs_enter":
            open_cs[pid] = t
        elif record["label"] == "cs_exit" and pid in open_cs:
            intervals.append((open_cs.pop(pid), t, pid))
    intervals.sort()
    overlaps = [
        (a, b)
        for a, b in zip(intervals, intervals[1:])
        if b[0] < a[1]
    ]
    print(f"mutual exclusion  : {'held' if not overlaps else 'VIOLATED'}")
    print("critical-section timeline (wall seconds):")
    for enter, exit_, pid in intervals:
        print(f"  t={enter:7.3f}..{exit_:7.3f}  client {pid}")

    assert not overlaps, "exclusion must hold on the live substrate"
    assert len(intervals) == CLIENTS * SESSIONS
    print("the same generators, real sockets, exclusion intact — the "
         "substrate changed, the algorithm did not")


if __name__ == "__main__":
    if "--live" in sys.argv[1:]:
        main_live()
    else:
        main()
