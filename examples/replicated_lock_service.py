"""A replicated lock service: Algorithm 3 over quorum-emulated registers.

Run::

    python examples/replicated_lock_service.py

The paper's time-resilient mutex (Algorithm 3) runs here *unchanged* —
same generator program, same registers — but the registers are an
illusion: three clients talk to three replica servers over a crash-prone
message network, and every read/write becomes two ABD majority phases
(query the highest timestamp, then store / write back under a larger
one).  Mid-run, a partition cuts two of the three replicas off for a
window.  During the window no majority is reachable, so lock operations
*block* — they never return stale values — and the critical-section
timeline shows a gap.  When the partition heals, retransmission carries
the pending phases over, the service converges, and every session
completes.  Mutual exclusion holds throughout: safety never rests, even
while the network misbehaves.
"""

from repro.algorithms import mutex_session
from repro.core.mutex import default_time_resilient_mutex
from repro.net import NetFaultPlan, Partition, QuorumSystem, convergence_start
from repro.spec import check_mutual_exclusion

CLIENTS = 3
REPLICAS = 3
SESSIONS = 2
WINDOW = (60.0, 110.0)


def main() -> None:
    # Pids 0..2 are lock clients, 3..5 are register replicas; the window
    # isolates replicas 4 and 5 — a majority, so the service must stall.
    connected = tuple(range(CLIENTS + 1))
    isolated = tuple(range(CLIENTS + 1, CLIENTS + REPLICAS))
    faults = NetFaultPlan(partitions=(
        Partition(start=WINDOW[0], end=WINDOW[1], groups=(connected, isolated)),
    ))
    system = QuorumSystem(
        clients=CLIENTS, replicas=REPLICAS, bound=1.0, seed=0, faults=faults
    )
    lock = default_time_resilient_mutex(CLIENTS, delta=system.delta)
    programs = [
        mutex_session(lock, pid, SESSIONS, cs_duration=0.2, ncs_duration=0.2)
        for pid in range(CLIENTS)
    ]
    result = system.run(programs)

    stats = system.transport.stats
    print(f"run status        : {result.status.value}")
    print(f"delta_net         : {system.delta:.2f} (delivery bound 1.0)")
    print(f"partition window  : t={WINDOW[0]:.0f}..{WINDOW[1]:.0f} "
          f"(replicas {isolated} cut off — no majority)")
    print(f"messages          : sent={stats.messages_sent} "
          f"delivered={stats.messages_delivered} "
          f"dropped={stats.messages_dropped}")
    print(f"quorum phases     : {stats.quorum_rtts}")

    overlaps = check_mutual_exclusion(result.trace)
    print(f"mutual exclusion  : {'held' if not overlaps else 'VIOLATED'}")

    resume_at = convergence_start(faults)
    print("critical-section timeline:")
    for interval in sorted(result.trace.cs_intervals(), key=lambda i: i.enter):
        if interval.enter < WINDOW[0]:
            phase = "before the partition"
        elif interval.enter < resume_at:
            phase = "inside the window (minority side still connected)"
        else:
            phase = "after the heal"
        print(f"  t={interval.enter:7.2f}..{interval.exit:7.2f}  "
              f"client {interval.pid}  ({phase})")

    entries = result.trace.cs_intervals()
    after = [i for i in entries if i.enter >= resume_at]
    print(f"convergence       : {len(after)} of {len(entries)} entries after "
          f"the window closed at t={resume_at:.0f}")

    assert not overlaps, "exclusion must hold through the partition"
    assert result.completed, "every session must finish once the net heals"
    assert len(entries) == CLIENTS * SESSIONS
    assert any(i.enter < WINDOW[0] for i in entries), "the service ran first"
    assert after, "progress must resume after the heal"
    print("blocked while the majority was unreachable, converged after — "
          "the paper's resilience contract, served over a quorum")


if __name__ == "__main__":
    main()
