"""Machine-checking the paper's safety claims (and finding Fischer's bug).

Run::

    python examples/model_checking.py

The model checker explores *every* interleaving of shared-memory steps —
which, for safety, is exactly the set of executions available to an
unrestricted timing-failure adversary.  Three demonstrations:

1. Fischer's algorithm: the checker *finds* the mutual-exclusion
   violation and prints the schedule — the classic six-step interleaving
   the paper's §3.1 describes in prose;
2. Algorithm 3: the same property, exhaustively verified — zero violating
   interleavings (stabilization, machine-checked);
3. Algorithm 1: validity and agreement verified over every interleaving
   of a conflicting-inputs configuration (Theorems 2.2/2.3 for n = 2).
"""

from repro.algorithms import FischerLock, mutex_session
from repro.core.consensus import TimeResilientConsensus, labeled_decision
from repro.core.mutex import default_time_resilient_mutex
from repro.verify import (
    AgreementProperty,
    MutualExclusionProperty,
    ValidityProperty,
    explore,
    replay_schedule,
)


def check_fischer() -> None:
    print("=== 1. Fischer (Algorithm 2) under arbitrary asynchrony ===")
    lock = FischerLock(delta=1.0)
    factories = {
        pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
        for pid in (0, 1)
    }
    result = explore(factories, [MutualExclusionProperty()], max_ops=30)
    violation = result.violations[0]
    print(f"explored {result.states} states -> VIOLATION FOUND")
    print(f"schedule (pids in linearization order): {list(violation.schedule)}")
    sandbox = replay_schedule(factories, violation.schedule, max_ops=30)
    print(f"replayed: processes {sorted(sandbox.in_cs)} are in the CS together")
    print("(a delayed write to x outlives the other's delay(Δ) — §3.1)")


def check_algorithm3() -> None:
    print("\n=== 2. Algorithm 3, same property, exhaustively ===")
    lock = default_time_resilient_mutex(2, delta=1.0)
    factories = {
        pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
        for pid in (0, 1)
    }
    result = explore(factories, [MutualExclusionProperty()], max_ops=24)
    print(f"explored {result.states} states, complete={result.complete} "
          f"-> {len(result.violations)} violations")
    assert result.ok


def check_algorithm1() -> None:
    print("\n=== 3. Algorithm 1: agreement + validity (Theorems 2.2/2.3) ===")
    consensus = TimeResilientConsensus(delta=1.0, max_rounds=2)
    inputs = {0: 0, 1: 1}
    factories = {
        pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
        for pid in inputs
    }
    result = explore(
        factories,
        [AgreementProperty(), ValidityProperty(inputs)],
        max_ops=30,
    )
    print(f"explored {result.states} states, complete={result.complete} "
          f"-> {len(result.violations)} violations")
    assert result.ok


if __name__ == "__main__":
    check_fischer()
    check_algorithm3()
    check_algorithm1()
    print("\nFischer breaks; the paper's algorithms do not — machine-checked.")
