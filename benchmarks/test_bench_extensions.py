"""Extension tables X1-X3: the §4 features must show their shapes."""

from repro.analysis.extensions import run_x1, run_x2, run_x3

from .conftest import run_once


def test_bench_x1_adaptive_mutex_arc(benchmark):
    table = run_once(benchmark, run_x1)
    rows = {row[0]: row for row in table.rows}
    under, right = rows[0.01], rows[1.0]
    # Exclusion held in both regimes.
    assert under[4] and right[4]
    # The underestimate grew; the correct estimate did not move.
    assert under[1] > 0.01
    assert right[1] == 1.0
    # The underestimate's flood drained back to a serialized doorway.
    assert under[2] >= 2
    assert under[3] == 1


def test_bench_x2_omega_converges(benchmark):
    table = run_once(benchmark, run_x2)
    rows = {row[0]: row for row in table.rows}
    clean = rows["clean"]
    stalled = rows["node-0 stalled 12 periods"]
    # Both scenarios converge on node 0.
    assert clean[1] == 0 and stalled[1] == 0
    # The stall left a churn footprint; the clean run did not.
    assert stalled[2] and not clean[2]


def test_bench_x3_rmr_shapes(benchmark):
    table = run_once(benchmark, run_x3, n=8)
    rmr = dict(zip(table.column("lock"), table.column("RMR / entry")))
    # The ticket lock's FAA + local spin is the cheapest.
    assert rmr["ticket"] < rmr["fischer"]
    assert rmr["ticket"] < rmr["alg3"]
    # The bakery's Θ(n) remote doorway scan is the most expensive.
    assert rmr["bakery"] > rmr["ticket"]
