"""E12 — derived wait-free objects under failure injection."""

from repro.analysis.experiments import run_e12

from .conftest import run_once


def test_bench_e12_derived_objects_safe_under_failures(benchmark):
    table = run_once(benchmark, run_e12, n=4)
    # Shape: every derived object keeps its safety property with a process
    # suffering an 8x slowdown window (timing failures).
    assert all(table.column("safe under failures")), table.render()
    # Shape: all objects complete in bounded time in both regimes.
    for column in ("clean time (Δ)", "with failures (Δ)"):
        assert all(v is not None and v < 500 for v in table.column(column))
