"""Shared benchmark helpers.

Every benchmark wraps one experiment driver from
:mod:`repro.analysis.experiments` (usually with reduced parameters so the
suite stays fast), times it with pytest-benchmark, and asserts the shape
claims the paper makes — who wins, by roughly what factor, where the
behaviour changes.  Absolute numbers are simulator-specific and not
asserted.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round (experiment drivers are heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)
