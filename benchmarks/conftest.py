"""Shared benchmark helpers.

Every benchmark wraps one experiment driver from
:mod:`repro.analysis.experiments` (usually with reduced parameters so the
suite stays fast), times it with pytest-benchmark, and asserts the shape
claims the paper makes — who wins, by roughly what factor, where the
behaviour changes.  Absolute numbers are simulator-specific and not
asserted.

pytest-benchmark is an optional dependency (the ``bench`` extra:
``pip install -e .[bench]``).  When it is absent the suite still runs —
a fallback ``benchmark`` fixture calls the workload plainly, without
timing — so the shape assertions never silently stop being checked.
Set ``REPRO_BENCH_NO_PLUGIN=1`` (with ``-p no:benchmark``) to force the
fallback where the plugin is installed, e.g. to test the degraded path.
"""

from __future__ import annotations

import importlib.util
import os

import pytest

HAVE_PYTEST_BENCHMARK = (
    importlib.util.find_spec("pytest_benchmark") is not None
    and not os.environ.get("REPRO_BENCH_NO_PLUGIN")
)


class NullBenchmark:
    """Degraded stand-in for pytest-benchmark's fixture: call, don't time."""

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, iterations=1, rounds=1,
                 **_ignored):
        return fn(*args, **(kwargs or {}))


if not HAVE_PYTEST_BENCHMARK:

    @pytest.fixture
    def benchmark():
        return NullBenchmark()


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` with a single round (experiment drivers are heavy)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)
