"""E8 — Theorems 3.2/3.3: convergence and the embedded lock's fairness."""

from repro.analysis.experiments import run_e8

from .conftest import run_once


def test_bench_e8_starvation_free_converges_faster(benchmark):
    table = run_once(benchmark, run_e8)
    by_name = {row[0]: row for row in table.rows}
    sf = by_name["bar_david(lamport_fast)"]
    df = by_name["lamport_fast"]
    # Shape: mutual exclusion (stabilization) holds for both variants.
    assert sf[1] and df[1]
    # Shape: the starvation-free A drains the flooded victim promptly...
    assert sf[2] is not None and sf[2] <= 30.0
    # ...while the deadlock-free-only A delays it by a large factor (the
    # measurable face of Theorem 3.2's "not guaranteed to converge").
    assert df[3] is None or df[3] >= 2.0, table.render()
