"""E3 — Theorem 2.1(3)/2.4: wait-freedom under crash failures."""

from repro.analysis.experiments import run_e3

from .conftest import run_once


def test_bench_e3_survivors_always_decide(benchmark):
    table = run_once(benchmark, run_e3, ns=(2, 4, 8))
    # Shape: in every configuration all survivors decided and agreed.
    for decided, agreed in zip(table.column("survivors decided"),
                               table.column("agreed")):
        done, expected = decided.split("/")
        assert done == expected, table.render()
        assert agreed
    # Shape: decision time stays within the 15·Δ budget despite crashes.
    assert max(table.column("worst time (Δ)")) <= 15.0
