"""E9 — Theorem 3.1: the n-register lower bound, from the upper side."""

from repro.analysis.experiments import run_e9

from .conftest import run_once


def test_bench_e9_register_counts(benchmark):
    n = 8
    table = run_once(benchmark, run_e9, n=n)
    by_name = {row[0]: row for row in table.rows}
    # Shape: Fischer sits below the bound — and indeed is not resilient.
    assert by_name["fischer"][1] == 1
    assert not by_name["fischer"][4]
    # Shape: the time-resilient Algorithm 3 respects Theorem 3.1's bound.
    alg3 = by_name["alg3 (time-resilient)"]
    assert alg3[1] >= n and alg3[3] and alg3[4]
    # Shape: claimed counts upper-bound the registers actually touched.
    for name, row in by_name.items():
        if row[1] is not None:
            assert row[2] <= row[1], (name, table.render())
