"""E1 — Theorem 2.1(1): decision within 15·Δ without timing failures."""

from repro.analysis.experiments import run_e1

from .conftest import run_once


def test_bench_e1_decision_within_15_delta(benchmark):
    table = run_once(benchmark, run_e1, ns=(1, 2, 4, 8, 16), seeds=(0, 1))
    # Shape: every configuration decides within the paper's 15·Δ bound.
    assert all(table.column("within 15Δ"))
    # Shape: worst time is flat in n (no growth beyond the 2-round bound).
    worst = table.column("worst time (Δ)")
    assert max(worst) <= 15.0
    assert max(worst[1:]) <= worst[1] + 3.0  # contended cases level out
    # Shape: never more than the two rounds of Theorem 2.1(1).
    assert max(table.column("worst rounds")) <= 2
