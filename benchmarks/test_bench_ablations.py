"""Ablations A1-A4: each removed design choice must visibly break its
property (see repro/analysis/ablations.py for the full rationale)."""

from repro.analysis.ablations import run_a1, run_a2, run_a3, run_a4

from .conftest import run_once


def test_bench_a1_delay_buys_liveness(benchmark):
    table = run_once(benchmark, run_a1, cap=120.0)
    paper, ablated = table.rows
    # Both safe; both fine under benign timing.
    assert paper[3] and ablated[3]
    assert "decided" in paper[1] and "decided" in ablated[1]
    # Against the worst legal schedule only the paper variant decides.
    assert "decided" in paper[2]
    assert "undecided" in ablated[2]


def test_bench_a2_conditional_reset_drains_the_flood(benchmark):
    table = run_once(benchmark, run_a2, max_time=300.0)
    by_name = {row[0]: row for row in table.rows}
    paper = by_name["paper (conditional)"]
    ablated = by_name["ablated (unconditional)"]
    assert paper[1] and ablated[1]  # exclusion held in both
    assert paper[3]  # the paper variant drains A back to solo
    assert not ablated[3]  # the ablated one keeps A contended
    assert ablated[2] > paper[2]


def test_bench_a3_doorway_delay_serializes(benchmark):
    table = run_once(benchmark, run_a3, seeds=(0, 1))
    by_name = {row[0]: row for row in table.rows}
    paper = by_name["paper (with delay)"]
    ablated = by_name["ablated (no delay)"]
    # Zero timing failures in either run.
    assert paper[3] == 0 and ablated[3] == 0
    # With the delay, the doorway admits one process at a time.
    assert paper[1] == 1
    # Without it, plain jitter floods the embedded lock.
    assert ablated[1] >= 3
    # Exclusion survives in both (A is an asynchronous lock).
    assert paper[2] and ablated[2]


def test_bench_a4_contention_hint_keeps_exit_constant(benchmark):
    table = run_once(benchmark, run_a4, ns_sweep=(4, 16, 64))
    paper, ablated = table.rows
    # The hinted exit is flat in n...
    assert paper[1] == paper[3]
    # ...the scanning exit grows roughly linearly.
    assert ablated[3] > ablated[1] + 32
