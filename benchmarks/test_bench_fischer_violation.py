"""E13 — Fischer loses exclusion under asynchrony; Algorithm 3 does not."""

from repro.analysis.experiments import run_e13

from .conftest import run_once


def test_bench_e13_fischer_violated_alg3_immune(benchmark):
    table = run_once(benchmark, run_e13, max_ops=24)
    by_name = {row[0]: row for row in table.rows}
    fischer = by_name["fischer (Algorithm 2)"]
    alg3 = by_name["Algorithm 3"]
    # Shape: Fischer admits violating interleavings, with a short witness.
    assert fischer[2] > 0
    assert fischer[3] is not None and fischer[3] <= 12
    # Shape: Algorithm 3's exploration is exhaustive at this bound and
    # finds nothing.
    assert alg3[2] == 0
    assert alg3[1] > fischer[1]  # it genuinely explored a larger space
