"""E4 — Theorem 2.1(4): the 7-step contention-free fast path."""

from repro.analysis.experiments import run_e4

from .conftest import run_once


def test_bench_e4_seven_step_fast_path(benchmark):
    table = run_once(benchmark, run_e4)
    rows = {row[0]: row for row in table.rows}
    # Shape: the solo paths take exactly the paper's 7 steps, even while
    # the system is drowning in timing failures, and never delay.
    assert rows["solo, clean"][1] == 7
    assert rows["solo, during timing failures"][1] == 7
    assert rows["solo, clean"][2] == 0
    assert rows["solo, during timing failures"][2] == 0
    # Shape: a late arrival adopts the standing decision in (far) fewer
    # steps than a fresh solo run.
    assert rows["late arrival (decision standing)"][1] <= 7
    # Shape: unanimity decides in round one with zero delays system-wide.
    assert rows["unanimous x4"][2] == 0
