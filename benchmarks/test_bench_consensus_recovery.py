"""E2 — Theorem 2.1(2): recovery within ~2 rounds after failures stop."""

from repro.analysis.experiments import run_e2

from .conftest import run_once


def test_bench_e2_recovery_bound(benchmark):
    table = run_once(benchmark, run_e2, window_lengths=(2.0, 5.0, 10.0, 20.0))
    # Shape: every run decides, regardless of how long the window was.
    assert all(table.column("decided"))
    # Shape: at most 2 post-failure rounds (decide by round r+1).
    assert all(table.column("within bound"))
    # Shape: post-failure time is flat in the window length — the window
    # only shifts when recovery starts, not how long it takes.
    times = table.column("post-failure time (Δ)")
    assert max(times) - min(times) <= 3.0
