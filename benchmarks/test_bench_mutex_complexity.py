"""E7 — §3 headline: O(Δ) time complexity vs asynchronous baselines."""

from repro.analysis.experiments import run_e7

from .conftest import run_once


def test_bench_e7_alg3_flat_baselines_grow(benchmark):
    ns = (2, 4, 8, 16)
    table = run_once(benchmark, run_e7, ns=ns)
    by_name = {row[0]: row for row in table.rows}
    grows_col = len(ns) + 1

    # Shape: the timing-based locks stay O(Δ) — flat in n.
    for name in ("alg3", "fischer"):
        assert not by_name[name][grows_col], table.render()
    # Shape: the scan-based asynchronous locks grow with n.
    for name in ("bakery", "filter"):
        assert by_name[name][grows_col], table.render()
    # Shape: the crossover — at the largest n the asynchronous scanners
    # are at least 2x worse than Algorithm 3.
    largest = len(ns)  # column index of the largest-n metric
    assert by_name["bakery"][largest] > 2.0 * by_name["alg3"][largest]
    assert by_name["filter"][largest] > 2.0 * by_name["alg3"][largest]
