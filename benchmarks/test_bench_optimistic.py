"""E10 — optimistic(Δ): the cliff at Δ and AIMD finding the knee."""

from repro.analysis.experiments import run_e10

from .conftest import run_once


def test_bench_e10_cliff_at_delta(benchmark):
    table = run_once(
        benchmark, run_e10, ratios=(0.25, 0.5, 1.0, 2.0, 5.0), cap=100.0
    )
    rows = {row[0]: row for row in table.rows}
    # Shape: below Δ the worst legal schedule wins every round — undecided
    # within the cap, but always safe.
    for ratio in (0.25, 0.5):
        assert not rows[ratio][1], table.render()
        assert rows[ratio][4]  # safe
    # Shape: at and above Δ, decided in round 2.
    for ratio in (1.0, 2.0, 5.0):
        assert rows[ratio][1]
        assert rows[ratio][3] <= 2
    # Shape: above the knee, latency grows with the estimate.
    assert rows[5.0][2] > rows[1.0][2]
