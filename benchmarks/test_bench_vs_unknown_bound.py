"""E11 — known Δ (c·Δ) vs unknown bound (doubling rounds)."""

from repro.analysis.experiments import run_e11

from .conftest import run_once


def test_bench_e11_unknown_bound_pays_log_rounds(benchmark):
    ratios = (1.0, 0.25, 0.0625, 0.015625)
    table = run_once(benchmark, run_e11, est_ratios=ratios)
    alg1_rounds = table.column("alg1 rounds")
    aat_rounds = table.column("aat rounds")
    gaps = table.column("aat/alg1")
    # Shape: Algorithm 1 always needs 2 rounds against the worst legal
    # schedule.
    assert all(r == 2 for r in alg1_rounds)
    # Shape: AAT's rounds grow as the initial estimate shrinks —
    # one extra round per estimate doubling (log2 of the ratio).
    assert aat_rounds == sorted(aat_rounds)
    assert aat_rounds[-1] >= aat_rounds[0] + 4
    # Shape: the time gap widens monotonically.
    assert gaps == sorted(gaps)
    assert gaps[-1] >= 2.0
