"""E5 — Theorem 2.1(5): open participation; flat per-process cost."""

import pytest

from repro.analysis.experiments import run_e5

from .conftest import run_once


def test_bench_e5_flat_time_linear_steps(benchmark):
    table = run_once(benchmark, run_e5, ns=(2, 8, 32, 128))
    times = table.column("worst time (Δ)")
    steps = table.column("total shared steps")
    per_process = table.column("steps per process")
    ns = table.column("n")
    # Shape: per-process time and steps are flat in n.
    assert max(times) - min(times) <= 3.0
    assert max(per_process) - min(per_process) <= 4.0
    # Shape: total steps scale linearly with n.
    ratio = steps[-1] / steps[0]
    assert ratio == pytest.approx(ns[-1] / ns[0], rel=0.5)
