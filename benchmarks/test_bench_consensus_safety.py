"""E6 — Theorems 2.2/2.3: safety, exhaustive and randomized."""

from repro.analysis.experiments import run_e6

from .conftest import run_once


def test_bench_e6_zero_violations(benchmark):
    table = run_once(benchmark, run_e6, random_seeds=100, mc_max_ops=26)
    # Shape: zero safety violations in both the exhaustive model-checking
    # pass and the randomized adversity sweep.
    assert all(v == 0 for v in table.column("violations")), table.render()
