"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (this environment has no network and no wheel); all metadata lives
in pyproject.toml."""

from setuptools import setup

setup()
