"""Static↔dynamic cross-validation: the analyzer's claims, falsified or not.

The flow facts (:mod:`repro.lint.flow.facts`) are *may*-analyses: "this
module's programs may read/write exactly these registers".  Sound
over-approximation has a testable consequence — every access a real
execution performs must appear in the static set.  This harness closes
that loop for every algorithm in the experiments registry:

1. **static side** — build :class:`ModuleFlow` fact bases for the whole
   algorithms package, with a cross-module resolver so ``yield from``
   of an imported helper (the tournament lock delegating into
   ``peterson_acquire``) substitutes through to creation-site leafs;
2. **dynamic side** — run the algorithm on the real engine under a
   deterministic timing model, inside a fresh
   :class:`~repro.sim.registers.RegisterNamespace`, and project the
   trace onto that namespace: every shared event becomes an observed
   ``(op kind, register leaf)`` pair;
3. **compare** — an observed pair missing from the static access set is
   a :class:`Contradiction` and fails the check.  So is a probe/trace
   counter mismatch (the EngineProbe and the trace must agree on how
   many shared ops happened), and a run that does not complete.

A contradiction means one of three things, all bugs: the CFG missed an
op site, the interprocedural substitution resolved a handle wrongly, or
the engine executed something the recognizer cannot see.  None are
tolerable silently — that is the point.

Run it directly::

    python -m repro.lint.flow.xcheck          # exit 1 on contradictions
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..context import build_context
from .facts import LEAF, ModuleFlow

__all__ = [
    "Contradiction",
    "XCheckTarget",
    "default_targets",
    "project_flows",
    "run_target",
    "run_xcheck",
    "main",
]

_SHARED_KINDS = ("read", "write", "rmw")


@dataclass(frozen=True)
class Contradiction:
    """One static↔dynamic disagreement."""

    target: str
    message: str

    def render(self) -> str:
        return f"{self.target}: {self.message}"


@dataclass(frozen=True)
class XCheckTarget:
    """One algorithm to cross-validate.

    ``module`` is the file whose flow facts make the static claim;
    ``prefix`` the namespace prefix the dynamic run is projected onto;
    ``make`` builds the programs to execute, each paired with its pid
    (constructing the algorithm inside a namespace rooted at
    ``prefix``).
    """

    name: str
    module: str
    prefix: str
    make: Callable[[], Sequence[Tuple[int, object]]]


# ---------------------------------------------------------------------------
# Static side
# ---------------------------------------------------------------------------


def _import_map(tree: ast.Module) -> Dict[str, Tuple[str, str]]:
    """Local name -> (module basename, original name) for relative imports."""
    out: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            base = node.module.rsplit(".", 1)[-1]
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = (base, alias.name)
    return out


def project_flows(paths: Sequence[str]) -> Dict[str, ModuleFlow]:
    """Flow fact bases for a set of modules, cross-resolving imports.

    Keyed by module basename (``fischer`` for ``.../fischer.py``).  Each
    module's external resolver follows its import table, so delegation
    to a program imported from a sibling module substitutes through that
    module's facts instead of going opaque.
    """
    flows: Dict[str, ModuleFlow] = {}
    imports: Dict[str, Dict[str, Tuple[str, str]]] = {}
    for path in paths:
        base = os.path.splitext(os.path.basename(path))[0]
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            ctx = build_context(path, source)
        except SyntaxError:
            continue
        flows[base] = ModuleFlow(ctx)
        imports[base] = _import_map(ctx.tree)

    def resolver_for(base: str):
        def resolve(name: str) -> Optional[Tuple[ModuleFlow, str]]:
            entry = imports.get(base, {}).get(name)
            if entry is None:
                return None
            other_base, original = entry
            other = flows.get(other_base)
            if other is None:
                return None
            if original in other.programs:
                return other, original
            return None

        return resolve

    for base, flow in flows.items():
        flow.external_resolver = resolver_for(base)
    return flows


def static_access_set(flow: ModuleFlow) -> Tuple[set, bool]:
    """The module's may-access claim as ``{(kind, leaf)}`` + completeness."""
    targets, complete = flow.module_accesses()
    out = set()
    for t in targets:
        if t.cls == LEAF:
            out.add((t.kind, t.name))
        else:
            complete = False
    return out, complete


# ---------------------------------------------------------------------------
# Dynamic side
# ---------------------------------------------------------------------------


def _under_prefix(name: object, prefix: str) -> bool:
    """True when a runtime register name belongs to the target namespace.

    Scalars are ``(prefix, leaf)``; array cells ``((prefix, base), i)``.
    Nested namespaces get tuple heads whose first element is the parent
    prefix — targets use disjoint top-level prefixes, so equality on the
    head's root is the membership test.
    """
    if not isinstance(name, tuple) or not name:
        return False
    head = name[0]
    while isinstance(head, tuple) and head:
        head = head[0]
    return head == prefix


def dynamic_access_set(
    target: XCheckTarget,
) -> Tuple[set, Dict[str, int], Dict[str, int], str]:
    """Run the target and project its trace onto the namespace.

    Returns ``(observed pairs, probe counters, trace counters, status)``.
    """
    from ...sim import ConstantTiming, Engine
    from ...sim.adversary import register_leaf
    from ...sim.instrument import EngineProbe, probe_scope

    probe = EngineProbe()
    with probe_scope(probe):  # the engine adopts the ambient probe at build
        engine = Engine(
            delta=1.0, timing=ConstantTiming(0.1), max_time=10_000.0
        )
        for pid, program in target.make():
            engine.spawn(program, pid=pid)
        result = engine.run()
    observed = set()
    trace_counts = {kind: 0 for kind in _SHARED_KINDS}
    for event in result.trace.events:
        if event.kind in trace_counts:
            trace_counts[event.kind] += 1
        if event.register is None or event.kind not in _SHARED_KINDS:
            continue
        if not _under_prefix(event.register, target.prefix):
            continue
        observed.add((event.kind, register_leaf(event.register)))
    probe_counts = {
        "read": probe.reads,
        "write": probe.writes,
        "rmw": probe.rmws,
    }
    return observed, probe_counts, trace_counts, str(result.status)


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def run_target(
    target: XCheckTarget, flows: Dict[str, ModuleFlow]
) -> List[Contradiction]:
    """Cross-validate one target; empty list means no contradiction."""
    base = os.path.splitext(os.path.basename(target.module))[0]
    flow = flows.get(base)
    if flow is None:
        return [Contradiction(target.name, f"no flow facts for {base!r}")]
    static, _complete = static_access_set(flow)
    observed, probe_counts, trace_counts, status = dynamic_access_set(target)
    out: List[Contradiction] = []
    if "COMPLETED" not in status:
        out.append(
            Contradiction(target.name, f"dynamic run did not complete: {status}")
        )
    for kind, leaf in sorted(observed):
        if (kind, leaf) not in static:
            out.append(
                Contradiction(
                    target.name,
                    f"dynamic trace observed `{kind}` of register "
                    f"{leaf!r} that the static access set of {base}.py "
                    "does not predict",
                )
            )
    # Memory.rmw counts as one read plus one write besides itself (the
    # primitive both observes and updates the cell), so the probe's
    # read/write totals exceed the trace's op counts by the rmw count.
    expected = {
        "read": trace_counts["read"] + trace_counts["rmw"],
        "write": trace_counts["write"] + trace_counts["rmw"],
        "rmw": trace_counts["rmw"],
    }
    for kind in _SHARED_KINDS:
        if probe_counts[kind] != expected[kind]:
            out.append(
                Contradiction(
                    target.name,
                    f"EngineProbe counted {probe_counts[kind]} {kind} ops "
                    f"but the trace implies {expected[kind]}",
                )
            )
    if not observed:
        out.append(
            Contradiction(
                target.name,
                "dynamic run touched no register under the target "
                "namespace — the harness is not exercising the algorithm",
            )
        )
    return out


# ---------------------------------------------------------------------------
# The registry targets
# ---------------------------------------------------------------------------


def _algorithms_dir() -> str:
    from ... import algorithms

    return os.path.dirname(os.path.abspath(algorithms.__file__))


def _mutex_programs(lock: object, n: int, sessions: int = 2):
    from ...algorithms import mutex_session

    return [
        (
            pid,
            mutex_session(
                lock, pid, sessions, cs_duration=0.1, ncs_duration=0.1
            ),
        )
        for pid in range(n)
    ]


def default_targets() -> List[XCheckTarget]:
    """One target per algorithm the experiments registry drives."""
    from ...sim.registers import RegisterNamespace

    alg = _algorithms_dir()

    def path(base: str) -> str:
        return os.path.join(alg, base + ".py")

    def fischer():
        from ...algorithms import FischerLock

        lock = FischerLock(delta=1.0, namespace=RegisterNamespace("xc"))
        return _mutex_programs(lock, 3)

    def peterson2():
        from ...algorithms.peterson import PetersonTwoProcess

        lock = PetersonTwoProcess(namespace=RegisterNamespace("xc"))
        return _mutex_programs(lock, 2)

    def filter_lock():
        from ...algorithms import FilterLock

        lock = FilterLock(3, namespace=RegisterNamespace("xc"))
        return _mutex_programs(lock, 3)

    def tournament():
        from ...algorithms import TournamentLock

        lock = TournamentLock(4, namespace=RegisterNamespace("xc"))
        return _mutex_programs(lock, 4)

    def bakery():
        from ...algorithms import BakeryLock

        lock = BakeryLock(3, namespace=RegisterNamespace("xc"))
        return _mutex_programs(lock, 3)

    def black_white():
        from ...algorithms import BlackWhiteBakeryLock

        lock = BlackWhiteBakeryLock(3, namespace=RegisterNamespace("xc"))
        return _mutex_programs(lock, 3)

    def lamport_fast():
        from ...algorithms import LamportFastLock

        lock = LamportFastLock(3, namespace=RegisterNamespace("xc"))
        return _mutex_programs(lock, 3)

    def bar_david():
        from ...algorithms import BarDavidLock, LamportFastLock

        # The inner lock lives in its *own* namespace so the projection
        # onto "xc" sees exactly the composing module's registers.
        inner = LamportFastLock(3, namespace=RegisterNamespace("xc-inner"))
        lock = BarDavidLock(inner, 3, namespace=RegisterNamespace("xc"))
        return _mutex_programs(lock, 3)

    def at_consensus():
        from ...algorithms import AtConsensus

        algo = AtConsensus(delta=1.0, namespace=RegisterNamespace("xc"))
        return [
            (pid, algo.propose(pid, value))
            for pid, value in ((0, 0), (1, 1), (2, 1))
        ]

    def aat_consensus():
        from ...algorithms import AatConsensus

        algo = AatConsensus(
            initial_estimate=1.0, namespace=RegisterNamespace("xc")
        )
        return [
            (pid, algo.propose(pid, value))
            for pid, value in ((0, 0), (1, 1), (2, 1))
        ]

    def dg_mutex():
        from ...algorithms import stabilizing_ring

        # The stabilizing session driver, not mutex_session: a stopped
        # process freezes the token, so finishers must keep forwarding.
        _lock, factory = stabilizing_ring(
            3, sessions=2, cs_duration=0.1, namespace=RegisterNamespace("xc")
        )
        return [(pid, factory(pid)) for pid in range(3)]

    def recoverable():
        from ...algorithms import RecoverableConsensus

        algo = RecoverableConsensus(namespace=RegisterNamespace("xc"))
        return [(pid, algo.propose(pid, pid + 1)) for pid in range(3)]

    return [
        XCheckTarget("fischer", path("fischer"), "xc", fischer),
        XCheckTarget("peterson2", path("peterson"), "xc", peterson2),
        XCheckTarget("filter", path("peterson"), "xc", filter_lock),
        XCheckTarget("tournament", path("tournament"), "xc", tournament),
        XCheckTarget("bakery", path("bakery"), "xc", bakery),
        XCheckTarget(
            "black_white_bakery", path("black_white_bakery"), "xc", black_white
        ),
        XCheckTarget("lamport_fast", path("lamport_fast"), "xc", lamport_fast),
        XCheckTarget("bar_david", path("bar_david"), "xc", bar_david),
        XCheckTarget("at_consensus", path("at_consensus"), "xc", at_consensus),
        XCheckTarget(
            "aat_consensus", path("aat_consensus"), "xc", aat_consensus
        ),
        XCheckTarget("dg_mutex", path("dg_mutex"), "xc", dg_mutex),
        XCheckTarget("recoverable", path("recoverable"), "xc", recoverable),
    ]


def run_xcheck(
    targets: Optional[Iterable[XCheckTarget]] = None,
    flows: Optional[Dict[str, ModuleFlow]] = None,
) -> List[Contradiction]:
    """Cross-validate all targets; the programmatic entry point."""
    targets = list(targets) if targets is not None else default_targets()
    if flows is None:
        modules = sorted({t.module for t in targets})
        # Resolve within each module's own directory, so cross-module
        # delegation between siblings (tournament -> peterson) works.
        dirs = sorted({os.path.dirname(m) for m in modules})
        paths = [
            os.path.join(d, f)
            for d in dirs
            for f in sorted(os.listdir(d))
            if f.endswith(".py")
        ]
        flows = project_flows(paths)
    out: List[Contradiction] = []
    for target in targets:
        out.extend(run_target(target, flows))
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    contradictions = run_xcheck()
    targets = default_targets()
    if contradictions:
        for c in contradictions:
            print(c.render())
        print(f"xcheck: {len(contradictions)} contradiction(s)")
        return 1
    print(
        f"xcheck: {len(targets)} algorithm(s) cross-validated, "
        "no static<->dynamic contradictions"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
