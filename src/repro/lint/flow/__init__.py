"""``repro.lint.flow`` — CFG-based semantic analysis of algorithm programs.

The base analyzer (:mod:`repro.lint.rules`) is purely syntactic: each
rule pattern-matches AST shapes in isolation.  This subpackage adds a
*semantic* layer: every program is compiled to a control-flow graph over
the yield-op DSL (:mod:`repro.lint.flow.cfg`), and a small abstract-
interpretation pass (:mod:`repro.lint.flow.facts`) derives op-level
facts from it —

* per-program **access sets** (which registers each program may read or
  write, with array-index classification),
* **reachable op kinds** (can this program ever delay? send? RMW?),
* **loop structure** (which loops contain yields, how they exit, which
  read-bound values their exits test),
* a **Δ-taint lattice** tracking which locals/branches/delays derive
  from timing parameters,
* the **delegation graph** over ``yield from`` edges, which makes the
  access sets interprocedural (with call-site argument substitution, so
  register handles threaded through helper parameters resolve to their
  creation-site names).

On top of the facts live the flow rules TMF101–TMF104 (in
:mod:`repro.lint.rules`; enabled with ``python -m repro.lint --flow``)
and the static↔dynamic cross-validation harness
(:mod:`repro.lint.flow.xcheck`), which replays every registered
algorithm on the simulation engine and fails on any contradiction
between the static claims and the observed trace.
"""

from __future__ import annotations

from .cfg import Cfg, CfgNode, LoopInfo, OpSite, build_cfg, classify_yield
from .facts import (
    ModuleFlow,
    ProgramFacts,
    RegisterDecl,
    TaintSite,
    module_flow,
)

__all__ = [
    "Cfg",
    "CfgNode",
    "LoopInfo",
    "OpSite",
    "build_cfg",
    "classify_yield",
    "ModuleFlow",
    "ProgramFacts",
    "RegisterDecl",
    "TaintSite",
    "module_flow",
]
