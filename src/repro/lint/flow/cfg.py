"""Per-program control-flow graphs over the yield-op DSL.

A :class:`Cfg` has one node per *statement* of one program body (nested
function scopes are separate programs with their own graphs, matching
:class:`~repro.lint.programs.ProgramInfo` scoping).  Each node carries
the yield expressions evaluated *by that statement itself* — the test of
a ``while``, the value of an ``Assign`` — never those of its child
statements, so every yield belongs to exactly one node.

Edges follow Python's structured control flow: ``if``/``while``/``for``
branch, ``break``/``continue`` jump to the innermost loop's follow/
header, ``return``/``raise`` jump to the virtual exit, ``try`` bodies
conservatively may enter any handler.  ``while True:`` (any constant
truthy test) gets no fall-through edge, which is what lets the analyzer
prove "this loop has no exit".

Loops are first-class: a :class:`LoopInfo` records the header, the body
node set, the break/return exits observed inside, and whether the loop
test itself is falsifiable — everything rule TMF101 and the xcheck
harness read off.

The graph is deliberately an *over*-approximation of reachability (it
never prunes an edge it cannot prove dead); downstream facts inherit
that direction, which is the sound one for "may write" / "may reach"
claims checked against dynamic traces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..programs import (
    MESSAGE_HELPERS,
    ProgramInfo,
    RMW_NAMES,
    terminal_name,
)

__all__ = [
    "OpSite",
    "CfgNode",
    "LoopInfo",
    "Cfg",
    "build_cfg",
    "classify_yield",
]

# Op kinds an OpSite may carry (mirrors repro.sim.ops / repro.net).
OP_READ = "read"
OP_WRITE = "write"
OP_RMW = "rmw"
OP_DELAY = "delay"
OP_LOCAL = "local"
OP_LABEL = "label"
OP_SEND = "send"
OP_RECV = "recv"
OP_BROADCAST = "broadcast"
OP_DELEGATE = "delegate"  # yield from
OP_UNKNOWN = "unknown"  # op-bound local or unrecognized construction

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

# Python-version-dependent statement kinds (3.10 match, 3.11 try*).
_MATCH = getattr(ast, "Match", None)
_TRY_NODES = tuple(
    t for t in (ast.Try, getattr(ast, "TryStar", None)) if t is not None
)


@dataclass
class OpSite:
    """One yield (or ``yield from``) site, classified.

    ``register`` is the *handle expression* of a shared-memory op
    (``self.x`` in ``yield self.x.read()``) — resolution to a creation-
    site leaf name happens in :mod:`repro.lint.flow.facts`, which owns
    the module's register table.  ``index`` is the subscript expression
    for array-cell accesses, ``argument`` the duration of a delay /
    payload of a label, and ``bound_to`` the local name the yielded
    value was assigned to (``v = yield reg.read()``).
    """

    kind: str
    node: ast.AST  # the Yield / YieldFrom
    lineno: int
    col: int
    register: Optional[ast.expr] = None
    index: Optional[ast.expr] = None
    argument: Optional[ast.expr] = None
    call: Optional[ast.Call] = None  # delegation call, for arg substitution
    bound_to: Optional[str] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        reg = f" {ast.unparse(self.register)}" if self.register is not None else ""
        return f"<OpSite {self.kind}{reg} @{self.lineno}>"


@dataclass
class CfgNode:
    """One statement of the program body."""

    index: int
    stmt: Optional[ast.stmt]  # None for the virtual entry/exit nodes
    succs: List[int] = field(default_factory=list)
    ops: List[OpSite] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return self.stmt.lineno if self.stmt is not None else 0

    def link(self, other: int) -> None:
        if other not in self.succs:
            self.succs.append(other)


@dataclass
class LoopInfo:
    """One ``while``/``for`` loop of the program, with its exit anatomy."""

    stmt: ast.stmt
    header: int
    body: Set[int] = field(default_factory=set)
    #: Conditions guarding each break/return exit: the tests of the
    #: ``if`` statements (innermost-out, within the loop) enclosing it.
    exit_guards: List[List[ast.expr]] = field(default_factory=list)
    has_break: bool = False
    has_return: bool = False

    @property
    def lineno(self) -> int:
        return self.stmt.lineno

    @property
    def is_for(self) -> bool:
        return isinstance(self.stmt, (ast.For, ast.AsyncFor))

    @property
    def test(self) -> Optional[ast.expr]:
        return self.stmt.test if isinstance(self.stmt, ast.While) else None

    @property
    def test_falsifiable(self) -> bool:
        """True when the loop's own test can terminate it.

        ``for`` loops always exhaust their iterator; a ``while`` test
        terminates unless it is a constant truthy value.
        """
        if self.is_for:
            return True
        test = self.test
        if isinstance(test, ast.Constant):
            return not bool(test.value)
        return True

    @property
    def has_exit(self) -> bool:
        return self.has_break or self.has_return or self.test_falsifiable


class Cfg:
    """The control-flow graph of one program body."""

    def __init__(self, program: ProgramInfo) -> None:
        self.program = program
        self.nodes: List[CfgNode] = []
        self.entry = self._new(None)
        self.exit = self._new(None)
        self.loops: List[LoopInfo] = []
        self._build()

    # -- construction -------------------------------------------------------

    def _new(self, stmt: Optional[ast.stmt]) -> CfgNode:
        node = CfgNode(index=len(self.nodes), stmt=stmt)
        self.nodes.append(node)
        return node

    def _build(self) -> None:
        first = self._block(
            self.program.node.body, follow=self.exit.index, loops=[], guards=[]
        )
        self.entry.link(first)

    def _block(
        self,
        stmts: Sequence[ast.stmt],
        follow: int,
        loops: List[Tuple[LoopInfo, int]],
        guards: List[ast.expr],
    ) -> int:
        """Wire ``stmts`` in sequence, returning the entry node index.

        ``loops`` stacks (loop-info, loop-follow) for break/continue
        resolution; ``guards`` stacks the enclosing ``if`` tests inside
        the innermost loop, so exit sites know what condition released
        them.
        """
        if not stmts:
            return follow
        entry: Optional[int] = None
        nodes = [self._new(stmt) for stmt in stmts]
        for node, nxt in zip(nodes, nodes[1:] + [None]):
            after = nxt.index if nxt is not None else follow
            self._wire(node, after, loops, guards)
            if entry is None:
                entry = node.index
        return entry if entry is not None else follow

    def _wire(
        self,
        node: CfgNode,
        after: int,
        loops: List[Tuple[LoopInfo, int]],
        guards: List[ast.expr],
    ) -> None:
        stmt = node.stmt
        assert stmt is not None
        node.ops.extend(_own_op_sites(stmt))
        current_loop = loops[-1][0] if loops else None
        if current_loop is not None:
            current_loop.body.add(node.index)

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            info = LoopInfo(stmt=stmt, header=node.index)
            self.loops.append(info)
            body_entry = self._block(
                stmt.body, follow=node.index, loops=loops + [(info, after)], guards=[]
            )
            node.link(body_entry)
            # The else: block runs on normal exhaustion; both it and the
            # direct fall-through only exist when the test can fail.
            if info.test_falsifiable:
                if stmt.orelse:
                    node.link(self._block(stmt.orelse, after, loops, guards))
                else:
                    node.link(after)
        elif isinstance(stmt, ast.If):
            node.link(self._block(stmt.body, after, loops, guards + [stmt.test]))
            if stmt.orelse:
                node.link(
                    self._block(stmt.orelse, after, loops, guards + [stmt.test])
                )
            else:
                node.link(after)
        elif isinstance(stmt, _TRY_NODES):
            handler_entries = [
                self._block(h.body, after, loops, guards) for h in stmt.handlers
            ]
            final_follow = after
            if stmt.finalbody:
                final_follow = self._block(stmt.finalbody, after, loops, guards)
            else_follow = final_follow
            if stmt.orelse:
                else_follow = self._block(stmt.orelse, final_follow, loops, guards)
            body_entry = self._block(stmt.body, else_follow, loops, guards)
            node.link(body_entry)
            # Any statement of the body may raise into any handler; the
            # node-level approximation links the try itself to each.
            for entry in handler_entries:
                node.link(entry)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            node.link(self._block(stmt.body, after, loops, guards))
        elif _MATCH is not None and isinstance(stmt, _MATCH):
            for case in stmt.cases:
                node.link(self._block(case.body, after, loops, guards))
            node.link(after)  # no case may match
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            node.link(self.exit.index)
            if current_loop is not None and isinstance(stmt, ast.Return):
                current_loop.has_return = True
                current_loop.exit_guards.append(list(guards))
        elif isinstance(stmt, ast.Break):
            if loops:
                info, loop_follow = loops[-1]
                info.has_break = True
                info.exit_guards.append(list(guards))
                node.link(loop_follow)
            else:  # pragma: no cover - break outside loop is a SyntaxError
                node.link(after)
        elif isinstance(stmt, ast.Continue):
            if loops:
                node.link(loops[-1][0].header)
            else:  # pragma: no cover - continue outside loop
                node.link(after)
        else:
            node.link(after)

    # -- queries ------------------------------------------------------------

    def reachable(self) -> Set[int]:
        """Node indices reachable from the entry."""
        seen: Set[int] = set()
        stack = [self.entry.index]
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            stack.extend(self.nodes[idx].succs)
        return seen

    def op_sites(self, reachable_only: bool = True) -> List[OpSite]:
        """Every op site, in node order (optionally reachable ones only)."""
        keep = self.reachable() if reachable_only else None
        out: List[OpSite] = []
        for node in self.nodes:
            if keep is None or node.index in keep:
                out.extend(node.ops)
        return out

    def __len__(self) -> int:
        return len(self.nodes)


def build_cfg(program: ProgramInfo) -> Cfg:
    """Compile one program body to its control-flow graph."""
    return Cfg(program)


# ---------------------------------------------------------------------------
# Yield classification
# ---------------------------------------------------------------------------


def classify_yield(
    value: Optional[ast.AST],
    node: ast.AST,
    bound_to: Optional[str] = None,
) -> List[OpSite]:
    """Classify one yield value into op sites (IfExp yields produce two)."""
    lineno = getattr(node, "lineno", 0)
    col = getattr(node, "col_offset", 0)
    if value is None:
        return [OpSite(OP_UNKNOWN, node, lineno, col, bound_to=bound_to)]
    if isinstance(value, ast.IfExp):
        return classify_yield(value.body, node, bound_to) + classify_yield(
            value.orelse, node, bound_to
        )
    if not isinstance(value, ast.Call):
        return [OpSite(OP_UNKNOWN, node, lineno, col, bound_to=bound_to)]
    name = terminal_name(value.func)
    site = OpSite(
        OP_UNKNOWN, node, lineno, col, call=value, bound_to=bound_to
    )
    if name in ("read", "Read"):
        site.kind = OP_READ
        site.register, site.index = _handle_of(value, arg_pos=0, name=name)
    elif name in ("write", "Write"):
        site.kind = OP_WRITE
        site.register, site.index = _handle_of(value, arg_pos=0, name=name)
        site.argument = value.args[-1] if value.args else None
    elif name in RMW_NAMES:
        site.kind = OP_RMW
        site.register, site.index = _handle_of(value, arg_pos=0, name=name)
    elif name in ("delay", "Delay"):
        site.kind = OP_DELAY
        site.argument = value.args[0] if value.args else None
    elif name in ("local_work", "LocalWork"):
        site.kind = OP_LOCAL
        site.argument = value.args[0] if value.args else None
    elif name in ("label", "Label"):
        site.kind = OP_LABEL
        site.argument = value.args[0] if value.args else None
    elif name in MESSAGE_HELPERS or name in ("Send", "Recv", "Broadcast"):
        site.kind = {
            "send": OP_SEND, "Send": OP_SEND,
            "recv": OP_RECV, "Recv": OP_RECV,
            "broadcast": OP_BROADCAST, "Broadcast": OP_BROADCAST,
        }[name]
    return [site]


def _handle_of(
    call: ast.Call, arg_pos: int, name: str
) -> Tuple[Optional[ast.expr], Optional[ast.expr]]:
    """The register handle (and array index) of a shared-memory op call.

    Method form ``self.x.read()`` / ``self.b[i].write(v)``: the handle is
    the attribute's value.  Constructor/helper form ``Write(reg, v)`` /
    ``compare_and_swap(reg, a, b)``: the handle is the first argument.
    """
    handle: Optional[ast.expr]
    if isinstance(call.func, ast.Attribute) and name[0].islower() and name in (
        "read",
        "write",
    ):
        handle = call.func.value
    elif call.args and len(call.args) > arg_pos:
        handle = call.args[arg_pos]
    else:
        return None, None
    if isinstance(handle, ast.Subscript):
        return handle, handle.slice
    return handle, None


def _own_op_sites(stmt: ast.stmt) -> List[OpSite]:
    """Op sites for the yields evaluated by ``stmt`` itself.

    Walks the statement's expression children only — child statements
    (and nested scopes) own their yields — so every yield in a program
    body lands on exactly one CFG node.
    """
    sites: List[OpSite] = []
    bound = _bound_name(stmt)
    for expr in _own_expressions(stmt):
        for sub in _walk_expr(expr):
            if isinstance(sub, ast.Yield):
                sites.extend(classify_yield(sub.value, sub, bound_to=bound))
            elif isinstance(sub, ast.YieldFrom):
                site = OpSite(
                    OP_DELEGATE,
                    sub,
                    sub.lineno,
                    sub.col_offset,
                    bound_to=bound,
                )
                if isinstance(sub.value, ast.Call):
                    site.call = sub.value
                    site.register = sub.value.func
                else:
                    site.register = sub.value if isinstance(
                        sub.value, (ast.Name, ast.Attribute)
                    ) else None
                sites.append(site)
    return sites


def _bound_name(stmt: ast.stmt) -> Optional[str]:
    """The simple name a statement assigns its value to, if any."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        return stmt.target.id
    return None


def _own_expressions(stmt: ast.stmt) -> List[ast.expr]:
    """The expression children evaluated by ``stmt`` itself."""
    out: List[ast.expr] = []
    for fname, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            out.append(value)
        elif isinstance(value, list) and value and isinstance(value[0], ast.expr):
            out.extend(value)
    return out


def _walk_expr(expr: ast.expr) -> List[ast.AST]:
    """Walk an expression without descending into nested scopes."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out
