"""Op-level facts derived from program CFGs (abstract interpretation).

The pass is a small may-analysis over each program's
:class:`~repro.lint.flow.cfg.Cfg`:

* **register table** — creation sites (``self.x = ns.register("x", 0)``)
  map attribute/variable names to their *leaf* names, the trailing
  string the runtime embeds in every namespaced register name (see
  :class:`repro.sim.registers.RegisterNamespace`), which is what dynamic
  traces report;
* **access sets** — every shared-memory op site resolved to a leaf, a
  *parameter* (register handles threaded through helper arguments), or
  an *opaque* target the analysis cannot name;
* **delegation graph** — ``yield from`` edges, resolved by callee name
  within the module (or across modules via an external resolver), with
  call-site argument substitution so parameter-relative accesses become
  concrete at each caller;
* **loop facts** — which loops contain yields, how they exit, and which
  read-bound locals their exit conditions test (rule TMF101);
* **Δ-taint lattice** — the two-point may-taint lattice over locals
  (⊥ untainted / ⊤ timing-derived), seeded by every identifier matching
  the timing-parameter convention (``delta`` in the name), propagated
  through assignments to a fixpoint, and observed at branch tests and
  delay durations (rule TMF102).

Everything here over-approximates: "may write", "may reach", "may be
tainted".  That is the direction the xcheck harness can falsify — a
dynamic observation outside a *complete* static may-set is a
contradiction, never a tolerated gap.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..context import ModuleContext
from ..programs import ProgramInfo, terminal_name
from . import cfg as cfg_mod
from .cfg import Cfg, LoopInfo, OpSite, build_cfg

__all__ = [
    "AccessTarget",
    "RegisterDecl",
    "LoopFacts",
    "TaintSite",
    "ProgramFacts",
    "ModuleFlow",
    "module_flow",
]

#: Shared-memory op kinds the access sets track.
_SHARED_KINDS = (cfg_mod.OP_READ, cfg_mod.OP_WRITE, cfg_mod.OP_RMW)

_CREATOR_NAMES = {"register", "array", "Register", "Array"}

_DELTA_NAME = re.compile(r"delta|Δ", re.IGNORECASE)

#: Access target resolution classes.
LEAF = "leaf"  # resolved to a creation-site leaf name
PARAM = "param"  # a register handle received as a parameter
OPAQUE = "opaque"  # unresolvable (dynamic dispatch, computed handles)


@dataclass(frozen=True)
class AccessTarget:
    """One (op kind, register) element of a program's access set."""

    kind: str  # read / write / rmw
    cls: str  # LEAF, PARAM or OPAQUE
    name: str  # leaf name, parameter name, or best-effort identifier

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} {self.cls}:{self.name}>"


@dataclass(frozen=True)
class RegisterDecl:
    """One register/array creation site in the module."""

    attr: str  # the attribute/variable the handle is bound to
    leaf: str  # the runtime leaf name (first creation argument)
    kind: str  # "register" | "array"
    lineno: int
    annotated: bool  # carries `# repro-lint: single-writer`


@dataclass
class LoopFacts:
    """TMF101's view of one yield-bearing loop."""

    info: LoopInfo
    ops: List[OpSite]
    #: Exit condition expressions (break/return guards + falsifiable test).
    exit_conditions: List[ast.expr]
    #: Local name -> register targets it was bound from by an in-loop read.
    read_bound: Dict[str, Set[AccessTarget]]
    #: Locals the body mutates through non-read channels (counters,
    #: accumulators, method-mutated containers) — any of these in an exit
    #: condition gives the loop a register-independent escape.
    mutated: Set[str]

    @property
    def lineno(self) -> int:
        return self.info.lineno


@dataclass(frozen=True)
class TaintSite:
    """One Δ-tainted sink: a branch test or a delay duration."""

    kind: str  # "branch" | "delay"
    lineno: int
    col: int
    detail: str  # the offending expression, unparsed


@dataclass
class ProgramFacts:
    """Everything the flow rules know about one program body."""

    program: ProgramInfo
    cfg: Cfg
    params: Tuple[str, ...] = ()
    accesses: List[Tuple[OpSite, AccessTarget]] = field(default_factory=list)
    delegations: List[OpSite] = field(default_factory=list)
    reachable_kinds: Set[str] = field(default_factory=set)
    loops: List[LoopFacts] = field(default_factory=list)
    taint_sites: List[TaintSite] = field(default_factory=list)
    tainted_locals: Set[str] = field(default_factory=set)
    #: local name -> the parameter/attribute base names it may alias
    aliases: Dict[str, Set[str]] = field(default_factory=dict)
    #: Annotated arrays written indexed by one of this program's own
    #: parameters: (register attr, parameter name) — the seed of the
    #: interprocedural pid-sensitivity analysis (TMF104).
    pid_indexed_writes: List[Tuple[str, str]] = field(default_factory=list)
    #: Writes through a *parameter-bound* array handle, indexed by
    #: another parameter: (array param, index param).  Whether the cell
    #: is single-writer depends on what each call site binds to the
    #: array parameter — TMF104 joins these against the annotations.
    param_indexed_writes: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def qualname(self) -> str:
        return self.program.qualname

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def fact_count(self) -> int:
        """Deterministic size of this program's fact base (bench counter)."""
        return (
            len(self.accesses)
            + len(self.delegations)
            + len(self.reachable_kinds)
            + len(self.loops)
            + len(self.taint_sites)
            + len(self.pid_indexed_writes)
        )


class ModuleFlow:
    """The per-module fact base, with interprocedural closure on top."""

    def __init__(
        self,
        ctx: ModuleContext,
        external_resolver: Optional[
            Callable[[str], Optional[Tuple["ModuleFlow", str]]]
        ] = None,
    ) -> None:
        self.ctx = ctx
        self.external_resolver = external_resolver
        self.registers: Dict[str, RegisterDecl] = _register_table(ctx)
        self.programs: Dict[str, ProgramFacts] = {}
        for program in ctx.programs:
            self.programs[program.qualname] = _analyze_program(
                program, self.registers
            )
        self._closure_cache: Dict[str, Tuple[FrozenSet[AccessTarget], bool]] = {}
        self._kind_cache: Dict[str, Tuple[FrozenSet[str], bool]] = {}

    # -- lookup -------------------------------------------------------------

    def facts_for(self, qualname: str) -> Optional[ProgramFacts]:
        return self.programs.get(qualname)

    def resolve_callee(
        self, facts: ProgramFacts, site: OpSite
    ) -> Optional[Tuple["ModuleFlow", ProgramFacts]]:
        """The program a ``yield from`` site delegates to, if nameable.

        Resolution is by the callee expression's terminal identifier:
        ``self._helper(...)`` and bare ``helper(...)`` match a program of
        the same name in this module (same-class methods first), then the
        external resolver (cross-module imports).  Anything else —
        ``self.inner.entry(...)`` through an object-valued attribute,
        a parameter-bound program — is dynamic dispatch: unresolvable.
        """
        callee = site.register
        if callee is None:
            return None
        name = terminal_name(callee)
        if name is None:
            return None
        # Dynamic dispatch guard: `self.x.entry` has a non-self base.
        if isinstance(callee, ast.Attribute):
            base = callee.value
            if not (isinstance(base, ast.Name) and base.id == "self"):
                return None
        candidates = [
            f for q, f in self.programs.items() if f.name == name
        ]
        if candidates:
            # Prefer a program in the caller's own class scope.
            prefix = facts.qualname.rsplit(".", 1)[0]
            for cand in candidates:
                if cand.qualname == f"{prefix}.{name}":
                    return self, cand
            return self, candidates[0]
        if self.external_resolver is not None:
            resolved = self.external_resolver(name)
            if resolved is not None:
                flow, qualname = resolved
                target = flow.facts_for(qualname)
                if target is not None:
                    return flow, target
        return None

    # -- interprocedural closure -------------------------------------------

    def closure_accesses(
        self, qualname: str, _stack: Optional[Set[str]] = None
    ) -> Tuple[FrozenSet[AccessTarget], bool]:
        """All shared-memory accesses reachable from ``qualname``.

        Returns ``(targets, complete)``: parameter-relative accesses of
        callees are substituted through each call site's arguments, so a
        helper writing ``my_flag`` (aliasing its ``flag0``/``flag1``
        parameters) contributes the *caller's* concrete leafs.
        ``complete`` is False when any reachable delegation could not be
        resolved or any access stayed opaque — the signal xcheck uses to
        demand containment only where the analysis actually claims it.
        """
        if _stack is None:
            if qualname in self._closure_cache:
                return self._closure_cache[qualname]
            _stack = set()
        if qualname in _stack:
            return frozenset(), True  # recursive delegation: already counted
        facts = self.programs.get(qualname)
        if facts is None:
            return frozenset(), False
        _stack = _stack | {qualname}
        out: Set[AccessTarget] = set()
        complete = True
        for _site, target in facts.accesses:
            out.add(target)
            if target.cls == OPAQUE:
                complete = False
        for site in facts.delegations:
            resolved = self.resolve_callee(facts, site)
            if resolved is None:
                complete = False
                continue
            flow, callee = resolved
            sub, sub_complete = flow.closure_accesses(callee.qualname, _stack)
            complete = complete and sub_complete
            for target in sub:
                if target.cls != PARAM:
                    out.add(target)
                    continue
                mapped = _substitute_param(
                    self, facts, site, callee, target
                )
                out.add(mapped)
                if mapped.cls == OPAQUE:
                    complete = False
        result = (frozenset(out), complete)
        if len(_stack) == 1:
            self._closure_cache[qualname] = result
        return result

    def closure_kinds(
        self, qualname: str, _stack: Optional[Set[str]] = None
    ) -> Tuple[FrozenSet[str], bool]:
        """All op kinds reachable from ``qualname`` (transitively)."""
        if _stack is None:
            if qualname in self._kind_cache:
                return self._kind_cache[qualname]
            _stack = set()
        if qualname in _stack:
            return frozenset(), True
        facts = self.programs.get(qualname)
        if facts is None:
            return frozenset(), False
        _stack = _stack | {qualname}
        kinds: Set[str] = set(facts.reachable_kinds)
        complete = True
        for site in facts.delegations:
            resolved = self.resolve_callee(facts, site)
            if resolved is None:
                complete = False
                continue
            flow, callee = resolved
            sub, sub_complete = flow.closure_kinds(callee.qualname, _stack)
            kinds |= sub
            complete = complete and sub_complete
        kinds.discard(cfg_mod.OP_DELEGATE)
        result = (frozenset(kinds), complete)
        if len(_stack) == 1:
            self._kind_cache[qualname] = result
        return result

    # -- module-wide aggregates --------------------------------------------

    def module_accesses(self) -> Tuple[FrozenSet[AccessTarget], bool]:
        """Union of every program's closure accesses, with completeness."""
        out: Set[AccessTarget] = set()
        complete = True
        for qualname in self.programs:
            targets, ok = self.closure_accesses(qualname)
            out |= targets
            complete = complete and ok
        return frozenset(out), complete

    def written_leafs(self) -> Tuple[Set[str], bool]:
        """Leaf names some program may write, plus whether that's all.

        ``complete`` is False when any write in the module stayed
        parameter-relative or opaque at the top level — an unaccounted
        write channel that could alias any leaf.
        """
        targets, complete = self.module_accesses()
        leafs: Set[str] = set()
        for t in targets:
            if t.kind not in (cfg_mod.OP_WRITE, cfg_mod.OP_RMW):
                continue
            if t.cls == LEAF:
                leafs.add(t.name)
            else:
                complete = False
        return leafs, complete

    # -- sizes (bench counters) --------------------------------------------

    @property
    def cfg_node_count(self) -> int:
        return sum(len(f.cfg) for f in self.programs.values())

    @property
    def fact_count(self) -> int:
        return len(self.registers) + sum(
            f.fact_count for f in self.programs.values()
        )


def module_flow(ctx: ModuleContext) -> ModuleFlow:
    """The (cached) flow fact base for one module context."""
    cached = getattr(ctx, "_flow", None)
    if cached is None:
        cached = ModuleFlow(ctx)
        ctx._flow = cached  # type: ignore[attr-defined]
    return cached


# ---------------------------------------------------------------------------
# Register table
# ---------------------------------------------------------------------------


def _register_table(ctx: ModuleContext) -> Dict[str, RegisterDecl]:
    """Creation sites: attribute/variable name -> leaf name declaration."""
    annotated_lines = ctx.single_writer_lines
    table: Dict[str, RegisterDecl] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        creator = terminal_name(node.value.func)
        if creator not in _CREATOR_NAMES:
            continue
        kind = "array" if creator.lower() == "array" else "register"
        leaf: Optional[str] = None
        if node.value.args:
            first = node.value.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                leaf = first.value
        for target in node.targets:
            attr = terminal_name(target)
            if attr is None:
                continue
            table[attr] = RegisterDecl(
                attr=attr,
                leaf=leaf if leaf is not None else attr,
                kind=kind,
                lineno=node.lineno,
                annotated=node.lineno in annotated_lines,
            )
    return table


# ---------------------------------------------------------------------------
# Per-program analysis
# ---------------------------------------------------------------------------


def _analyze_program(
    program: ProgramInfo, registers: Dict[str, RegisterDecl]
) -> ProgramFacts:
    cfg = build_cfg(program)
    params = tuple(
        a.arg for a in program.node.args.args if a.arg not in ("self", "cls")
    )
    facts = ProgramFacts(program=program, cfg=cfg, params=params)
    facts.aliases = _alias_map(program, set(params), registers)
    reachable_sites = cfg.op_sites(reachable_only=True)
    for site in reachable_sites:
        facts.reachable_kinds.add(site.kind)
        if site.kind == cfg_mod.OP_DELEGATE:
            facts.delegations.append(site)
        elif site.kind in _SHARED_KINDS:
            for target in _resolve_targets(site, facts, registers):
                facts.accesses.append((site, target))
            _note_pid_indexed_write(site, facts, registers)
    facts.loops = _loop_facts(cfg, facts, registers)
    _taint(program, cfg, facts, reachable_sites)
    return facts


def _alias_map(
    program: ProgramInfo,
    params: Set[str],
    registers: Dict[str, RegisterDecl],
) -> Dict[str, Set[str]]:
    """Local name -> parameter/register-attr base names it may alias.

    Tracks the handle-threading idiom (``my_flag = flag0 if side == 0
    else flag1``) one level deep, to a fixpoint so alias-of-alias chains
    resolve too.
    """
    seeds: Dict[str, Set[str]] = {}
    for stmt in program.own_statements():
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        bases = _handle_bases(stmt.value, params, registers)
        if bases:
            seeds.setdefault(target.id, set()).update(bases)
    # Fixpoint: replace alias references by their own bases.
    changed = True
    while changed:
        changed = False
        for name, bases in seeds.items():
            extra: Set[str] = set()
            for base in bases:
                if base in seeds and base != name:
                    extra |= seeds[base] - bases
            if extra:
                bases |= extra
                changed = True
    return seeds


def _handle_bases(
    expr: ast.expr, params: Set[str], registers: Dict[str, RegisterDecl]
) -> Set[str]:
    """Parameter/register-attr names a handle-valued expression refers to."""
    if isinstance(expr, ast.IfExp):
        return _handle_bases(expr.body, params, registers) | _handle_bases(
            expr.orelse, params, registers
        )
    if isinstance(expr, ast.Subscript):
        return _handle_bases(expr.value, params, registers)
    if isinstance(expr, ast.Name):
        if expr.id in params or expr.id in registers:
            return {expr.id}
        return set()
    if isinstance(expr, ast.Attribute):
        if expr.attr in registers:
            return {expr.attr}
        return set()
    return set()


def _resolve_targets(
    site: OpSite, facts: ProgramFacts, registers: Dict[str, RegisterDecl]
) -> List[AccessTarget]:
    """Resolve one shared-memory op site to access targets."""
    handle = site.register
    if handle is None:
        return [AccessTarget(site.kind, OPAQUE, "?")]
    base = handle.value if isinstance(handle, ast.Subscript) else handle
    name = terminal_name(base)
    if name is None:
        return [AccessTarget(site.kind, OPAQUE, "?")]
    if name in registers:
        return [AccessTarget(site.kind, LEAF, registers[name].leaf)]
    if name in facts.params:
        return [AccessTarget(site.kind, PARAM, name)]
    if name in facts.aliases:
        out: List[AccessTarget] = []
        for alias in sorted(facts.aliases[name]):
            if alias in registers:
                out.append(AccessTarget(site.kind, LEAF, registers[alias].leaf))
            elif alias in facts.params:
                out.append(AccessTarget(site.kind, PARAM, alias))
        if out:
            return out
    return [AccessTarget(site.kind, OPAQUE, name)]


def _note_pid_indexed_write(
    site: OpSite, facts: ProgramFacts, registers: Dict[str, RegisterDecl]
) -> None:
    """Record param-indexed array writes (annotated attrs and param handles)."""
    if site.kind not in (cfg_mod.OP_WRITE, cfg_mod.OP_RMW):
        return
    handle = site.register
    if not isinstance(handle, ast.Subscript):
        return
    attr = terminal_name(handle.value)
    if attr is None:
        return
    if not (isinstance(site.index, ast.Name) and site.index.id in facts.params):
        return
    decl = registers.get(attr)
    if decl is not None and decl.annotated and decl.kind == "array":
        facts.pid_indexed_writes.append((attr, site.index.id))
    elif attr in facts.params:
        facts.param_indexed_writes.append((attr, site.index.id))


# ---------------------------------------------------------------------------
# Loop facts
# ---------------------------------------------------------------------------

_MUTATOR_METHODS = {
    "add", "append", "extend", "update", "pop", "remove", "discard",
    "insert", "clear", "setdefault",
}


def _loop_facts(
    cfg: Cfg, facts: ProgramFacts, registers: Dict[str, RegisterDecl]
) -> List[LoopFacts]:
    out: List[LoopFacts] = []
    reachable = cfg.reachable()
    for info in cfg.loops:
        if info.header not in reachable:
            continue
        body_nodes = [cfg.nodes[i] for i in sorted(info.body | {info.header})]
        ops = [op for node in body_nodes for op in node.ops]
        if not any(
            op.kind != cfg_mod.OP_UNKNOWN or op.node is not None for op in ops
        ) and not ops:
            continue
        exit_conditions: List[ast.expr] = []
        for guard_chain in info.exit_guards:
            exit_conditions.extend(guard_chain)
        if info.test_falsifiable and info.test is not None:
            exit_conditions.append(info.test)
        read_bound: Dict[str, Set[AccessTarget]] = {}
        mutated: Set[str] = set()
        for node in body_nodes:
            stmt = node.stmt
            if stmt is not None:
                _collect_mutations(stmt, mutated)
            for op in node.ops:
                if op.kind == cfg_mod.OP_READ and op.bound_to:
                    targets = {
                        t
                        for t in _resolve_targets(op, facts, registers)
                    }
                    read_bound.setdefault(op.bound_to, set()).update(targets)
        mutated -= set(read_bound)
        out.append(
            LoopFacts(
                info=info,
                ops=ops,
                exit_conditions=exit_conditions,
                read_bound=read_bound,
                mutated=mutated,
            )
        )
    return out


def _collect_mutations(stmt: ast.stmt, mutated: Set[str]) -> None:
    """Names ``stmt`` may rebind or mutate through non-read channels."""
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            stmt.targets
            if isinstance(stmt, ast.Assign)
            else [stmt.target]
        )
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    mutated.add(sub.id)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for sub in ast.walk(stmt.target):
            if isinstance(sub, ast.Name):
                mutated.add(sub.id)
    # Receiver of a mutating method call: `acks.add(...)`, `out.append(...)`.
    for expr in _expr_children(stmt):
        for sub in ast.walk(expr):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATOR_METHODS
                and isinstance(sub.func.value, ast.Name)
            ):
                mutated.add(sub.func.value.id)


def _expr_children(stmt: ast.stmt) -> List[ast.expr]:
    out: List[ast.expr] = []
    for _name, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            out.append(value)
        elif isinstance(value, list) and value and isinstance(value[0], ast.expr):
            out.extend(value)
    return out


# ---------------------------------------------------------------------------
# Δ-taint
# ---------------------------------------------------------------------------


def _is_delta_name(name: str) -> bool:
    return bool(_DELTA_NAME.search(name))


def _expr_tainted(expr: ast.expr, tainted: Set[str]) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and (
            sub.id in tainted or _is_delta_name(sub.id)
        ):
            return True
        if isinstance(sub, ast.Attribute) and _is_delta_name(sub.attr):
            return True
    return False


def _taint(
    program: ProgramInfo,
    cfg: Cfg,
    facts: ProgramFacts,
    reachable_sites: List[OpSite],
) -> None:
    """Propagate Δ-taint to a fixpoint, then record sink sites."""
    tainted: Set[str] = {p for p in facts.params if _is_delta_name(p)}
    statements = program.own_statements()
    changed = True
    while changed:
        changed = False
        for stmt in statements:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = stmt.value
                if value is None or not _expr_tainted(value, tainted):
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name) and sub.id not in tainted:
                            tainted.add(sub.id)
                            changed = True
    facts.tainted_locals = tainted
    sites: List[TaintSite] = []
    for stmt in statements:
        test = getattr(stmt, "test", None)
        if (
            isinstance(stmt, (ast.If, ast.While))
            and test is not None
            and _expr_tainted(test, tainted)
        ):
            sites.append(
                TaintSite(
                    "branch", stmt.lineno, stmt.col_offset, ast.unparse(test)
                )
            )
    for site in reachable_sites:
        if site.kind != cfg_mod.OP_DELAY or site.argument is None:
            continue
        if _expr_tainted(site.argument, facts.tainted_locals):
            sites.append(
                TaintSite(
                    "delay",
                    site.lineno,
                    site.col,
                    ast.unparse(site.argument),
                )
            )
    facts.taint_sites = sites


# ---------------------------------------------------------------------------
# Call-site parameter substitution
# ---------------------------------------------------------------------------


def _substitute_param(
    flow: ModuleFlow,
    caller: ProgramFacts,
    site: OpSite,
    callee: ProgramFacts,
    target: AccessTarget,
) -> AccessTarget:
    """Map a callee's parameter-relative access through one call site."""
    call = site.call
    if call is None:
        return AccessTarget(target.kind, OPAQUE, target.name)
    arg = _argument_for(call, callee, target.name)
    if arg is None:
        return AccessTarget(target.kind, OPAQUE, target.name)
    base = arg.value if isinstance(arg, ast.Subscript) else arg
    name = terminal_name(base)
    if name is None:
        return AccessTarget(target.kind, OPAQUE, target.name)
    if name in flow.registers:
        return AccessTarget(target.kind, LEAF, flow.registers[name].leaf)
    if name in caller.params:
        return AccessTarget(target.kind, PARAM, name)
    if name in caller.aliases:
        for alias in sorted(caller.aliases[name]):
            if alias in flow.registers:
                return AccessTarget(
                    target.kind, LEAF, flow.registers[alias].leaf
                )
    return AccessTarget(target.kind, OPAQUE, name)


def _argument_for(
    call: ast.Call, callee: ProgramFacts, param: str
) -> Optional[ast.expr]:
    """The argument expression bound to ``param`` at ``call``."""
    for kw in call.keywords:
        if kw.arg == param:
            return kw.value
    arg_names = [a.arg for a in callee.program.node.args.args]
    if arg_names and arg_names[0] in ("self", "cls"):
        arg_names = arg_names[1:]
    try:
        pos = arg_names.index(param)
    except ValueError:
        return None
    if pos < len(call.args):
        candidate = call.args[pos]
        if isinstance(candidate, ast.Starred):
            return None
        return candidate
    return None
