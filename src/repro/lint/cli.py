"""Command-line front end: ``python -m repro.lint <paths>``.

Exit codes: 0 clean, 1 findings reported, 2 usage error.  ``--format
json`` emits a machine-readable document for CI annotation; ``--select``
and ``--ignore`` narrow the rule set by code; ``--flow`` enables the
CFG-based flow rules (TMF101...); ``--output`` writes the report to a
file so CI can upload it as an artifact.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from . import iter_python_files, lint_file
from .findings import Finding
from .registry import all_rules, resolve_codes
from .report import render_json, render_text

__all__ = ["main", "build_parser"]

_EPILOG = """\
exit codes:
  0  clean — no findings
  1  findings reported (any severity)
  2  usage error (bad paths, unknown rule codes, unreadable files)
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static model-conformance analyzer for timing-based "
            "shared-memory algorithm programs (rules TMF001...)."
        ),
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories are walked for .py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. TMF001,TMF004)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "enable the CFG-based flow rules (TMF101...); they build "
            "interprocedural facts per module and are opt-in for speed"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout (CI artifacts)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code} [{rule.severity.value}] {rule.name}")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    try:
        select = resolve_codes(args.select) if args.select else None
        ignore = resolve_codes(args.ignore) if args.ignore else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    findings: List[Finding] = []
    files_checked = 0
    for filename in iter_python_files(args.paths):
        files_checked += 1
        try:
            findings.extend(
                lint_file(
                    filename, select=select, ignore=ignore, flow=args.flow
                )
            )
        except OSError as exc:
            print(f"error: cannot read {filename}: {exc}", file=sys.stderr)
            return 2
    if files_checked == 0:
        print("error: no Python files found under the given paths", file=sys.stderr)
        return 2
    if args.format == "json":
        report = render_json(findings, files_checked)
    else:
        report = render_text(findings, files_checked)
    if args.output:
        try:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
    else:
        print(report)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
