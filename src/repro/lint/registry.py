"""Rule framework: base class, registration, lookup.

Rules self-register at import time via :func:`register`; the package's
``rules/__init__.py`` imports every rule module, so importing
:mod:`repro.lint` is enough to populate the registry.  Codes must be
unique and stable — they are the contract with suppression comments and
CI logs.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Type

from .context import ModuleContext
from .findings import Finding, Severity

__all__ = ["Rule", "register", "all_rules", "rules_by_code", "resolve_codes"]

_CODE_FORMAT = re.compile(r"^TMF\d{3}$")

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """One conformance check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings (use :meth:`finding` so code/severity/rule name are
    filled in consistently).  Rules are instantiated fresh per lint run
    and invoked once per module; they must not keep cross-module state
    except through attributes they document (the single-writer rule is
    per-module by design — register names are namespaced per algorithm).
    """

    code: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Flow rules (TMF1xx) build CFGs and interprocedural facts; they run
    #: only under ``--flow`` or when named explicitly via ``--select``.
    requires_flow: bool = False

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, line: int, column: int, message: str
    ) -> Finding:
        # ``column`` is a 0-based AST col_offset; Finding stores 1-based.
        return Finding(
            code=self.code,
            message=message,
            path=ctx.path,
            line=line,
            column=column + 1,
            severity=self.severity,
            rule=self.name,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the global registry."""
    if not _CODE_FORMAT.match(cls.code):
        raise ValueError(f"rule {cls.__name__} has malformed code {cls.code!r}")
    if cls.code in _REGISTRY:
        raise ValueError(
            f"duplicate rule code {cls.code}: {cls.__name__} vs "
            f"{_REGISTRY[cls.code].__name__}"
        )
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} must set a name")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    from . import rules as _rules  # noqa: F401  (side-effect: registration)

    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rules_by_code() -> Dict[str, Type[Rule]]:
    from . import rules as _rules  # noqa: F401

    return dict(_REGISTRY)


def resolve_codes(spec: str) -> List[str]:
    """Parse a ``--select``/``--ignore`` comma list, validating codes."""
    known = rules_by_code()
    codes = [c.strip() for c in spec.split(",") if c.strip()]
    for code in codes:
        if code not in known:
            raise ValueError(
                f"unknown rule code {code!r} (known: {', '.join(sorted(known))})"
            )
    return codes
