"""Rendering lint results for terminals and machines."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import Finding, Severity

__all__ = ["render_text", "render_json", "summarize"]


def summarize(findings: Sequence[Finding], files_checked: int) -> str:
    """The one-line trailer of the text report."""
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if not findings:
        return f"{files_checked} file(s) checked: clean"
    return (
        f"{files_checked} file(s) checked: {errors} error(s), "
        f"{warnings} warning(s)"
    )


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """One finding per line, sorted by location, plus a summary trailer."""
    lines: List[str] = [f.render() for f in sorted(findings, key=lambda f: f.sort_key)]
    lines.append(summarize(findings, files_checked))
    return "\n".join(lines)


#: Version of the JSON findings document.  Bump when a field changes
#: meaning or shape; additive fields do not require a bump.  History:
#: 1 — initial schema: schema/files_checked/errors/warnings/findings,
#:     with 1-based line *and* column (flake8 convention).
JSON_SCHEMA_VERSION = 1


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """A stable, versioned JSON document (CI uploads this as an artifact).

    ``findings`` is sorted as in the text form; every location is
    1-based (line and column), matching :meth:`Finding.render`.
    """
    doc: Dict[str, object] = {
        "schema": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
        "warnings": sum(1 for f in findings if f.severity is Severity.WARNING),
        "findings": [
            f.to_dict() for f in sorted(findings, key=lambda f: f.sort_key)
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
