"""``repro.lint`` — static model-conformance analysis for algorithm programs.

Every algorithm in this repo is a Python generator that must obey the
paper's model: shared memory is touched only through yielded atomic-
register ops, time only through ``delay``/``local_work``, determinism is
absolute, and modules claiming the paper's registers-only results must
not smuggle in stronger primitives.  Nothing about Python enforces any
of that — this package does, from source, before a single schedule runs.

Programmatic use::

    from repro import lint
    findings = lint.lint_paths(["src/repro/algorithms", "examples"])

Command line::

    python -m repro.lint src examples
    python -m repro.lint --format json src/repro/core

Suppressions (see :mod:`repro.lint.context` for the full syntax)::

    value = yield  # repro-lint: disable=TMF001
    # repro-lint: disable-file=TMF005

The rule set lives in :mod:`repro.lint.rules`; codes are stable
(``TMF001``…).  ``docs/TESTING.md`` documents every rule.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

from .context import ModuleContext, build_context
from .findings import Finding, Severity
from .registry import Rule, all_rules, resolve_codes

__all__ = [
    "Finding",
    "Severity",
    "Rule",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
]

#: Directory names never descended into when walking paths.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".pytest_cache",
    ".mypy_cache",
    "build",
    "dist",
}


def _selected_rules(
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
    flow: bool = False,
) -> List[Rule]:
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.code in wanted]
    elif not flow:
        # Flow rules are opt-in (--flow) unless named explicitly.
        rules = [r for r in rules if not r.requires_flow]
    if ignore:
        unwanted = set(ignore)
        rules = [r for r in rules if r.code not in unwanted]
    return rules


def _apply_suppressions(
    ctx: ModuleContext, findings: Iterable[Finding]
) -> List[Finding]:
    per_line = ctx.line_suppressions()
    per_file = ctx.file_suppressions()
    kept: List[Finding] = []
    for finding in findings:
        if "all" in per_file or finding.code in per_file:
            continue
        on_line = per_line.get(finding.line, ())
        if "all" in on_line or finding.code in on_line:
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> List[Finding]:
    """Lint one module given as text; returns sorted findings.

    A file that fails to parse produces a single ``TMF000`` syntax
    finding rather than raising — the analyzer must be runnable over a
    broken tree (that is when it is most needed).
    """
    try:
        ctx = build_context(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                code="TMF000",
                message=f"file does not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                column=exc.offset or 1,
                severity=Severity.ERROR,
                rule="syntax",
            )
        ]
    findings: List[Finding] = []
    for rule in _selected_rules(select, ignore, flow=flow):
        findings.extend(rule.check(ctx))
    return sorted(_apply_suppressions(ctx, findings), key=lambda f: f.sort_key)


def lint_file(
    path: str,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> List[Finding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, select=select, ignore=ignore, flow=flow)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in _SKIP_DIRS and not d.endswith(".egg-info")
            )
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                if full not in seen:
                    seen.add(full)
                    yield full


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; the main programmatic API."""
    findings: List[Finding] = []
    for filename in iter_python_files(paths):
        findings.extend(
            lint_file(filename, select=select, ignore=ignore, flow=flow)
        )
    return sorted(findings, key=lambda f: f.sort_key)
