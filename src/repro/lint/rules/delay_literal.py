"""TMF005 — ``delay(...)`` takes an expression in Δ, not a magic number.

Every ``delay`` in the paper is written in terms of the timing bound
(``delay(Δ)``, and derived bounds like ``delay(2Δ)`` in related work);
the reproduction keeps that parameterization by threading ``delta``
through algorithm constructors.  A numeric literal (``delay(1.0)``)
hard-wires one timing regime: the algorithm silently stops scaling when
an experiment sweeps Δ, which is precisely the knob the paper's
experiments turn.

``local_work`` and ``Label`` durations are workload modelling, not model
parameters, and may be literal.  ``Delay(0)`` is also flagged — a
zero-duration delay is a no-op the engine still schedules; drop it or
write it in Δ.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..programs import terminal_name
from ..registry import Rule, register

__all__ = ["DelayLiteralRule"]

_DELAY_NAMES = {"delay", "Delay"}


@register
class DelayLiteralRule(Rule):
    code = "TMF005"
    name = "delay-literal"
    severity = Severity.WARNING
    description = (
        "delay(...) must be parameterized by the model's Δ (an expression "
        "such as self.delta or 2 * delta), never a bare numeric literal."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if terminal_name(node.func) not in _DELAY_NAMES:
                continue
            if not node.args:
                continue
            duration = node.args[0]
            if isinstance(duration, ast.Constant) and isinstance(
                duration.value, (int, float)
            ):
                yield self.finding(
                    ctx,
                    duration.lineno,
                    duration.col_offset,
                    f"literal duration {duration.value!r} passed to delay(); "
                    "express the bound in the model's Δ parameter (e.g. "
                    "self.delta) so experiments can sweep it",
                )
            elif isinstance(duration, ast.UnaryOp) and isinstance(
                duration.operand, ast.Constant
            ):
                yield self.finding(
                    ctx,
                    duration.lineno,
                    duration.col_offset,
                    "literal duration passed to delay(); express the bound "
                    "in the model's Δ parameter (e.g. self.delta)",
                )
