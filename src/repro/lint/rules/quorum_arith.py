"""TMF103 — quorum arithmetic: reply thresholds that can miss majority.

The message-passing substrate (:mod:`repro.net`) emulates atomic
registers the ABD way: every operation waits for acknowledgements from a
*majority* of replicas, ``n // 2 + 1``, so any two quorums intersect.
The classic off-by-one — waiting for ``n // 2`` replies — silently
breaks the intersection property for every even ``n``, and nothing at
runtime notices: the protocol still terminates, still returns values,
and only loses linearizability under the right interleaving.

In ``# repro-lint: messages-only`` modules this rule flags:

1. assignments to quorum-ish names (containing ``majority``, ``quorum``
   or ``threshold``) whose value is a bare floor-half (``E // 2`` or
   ``E / 2``) with no ``+ 1``;
2. reply-count waits — a ``while len(acks) < T`` loop whose body yields
   a ``recv`` — where ``T`` is inline bare floor-half arithmetic;
3. with a declared replica count (``# repro-lint: quorum-n=K``), waits
   whose constant threshold is below ``K // 2 + 1``.

Requires ``--flow``.  Suppress with ``# repro-lint: disable=TMF103``
(e.g. a deliberate sub-majority read in a protocol that compensates
elsewhere), keeping the deviation greppable.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..programs import terminal_name
from ..registry import Rule, register
from ..flow import cfg as cfg_mod
from ..flow.facts import module_flow

__all__ = ["QuorumArithmeticRule"]

_QUORUM_NAMES = ("majority", "quorum", "threshold")


def _is_quorum_name(name: Optional[str]) -> bool:
    return name is not None and any(q in name.lower() for q in _QUORUM_NAMES)


def _is_floor_half(expr: ast.expr) -> bool:
    """``E // 2`` (or ``E / 2``) — half with no majority correction."""
    return (
        isinstance(expr, ast.BinOp)
        and isinstance(expr.op, (ast.FloorDiv, ast.Div))
        and isinstance(expr.right, ast.Constant)
        and expr.right.value == 2
    )


def _is_majority(expr: ast.expr) -> bool:
    """``E // 2 + 1`` in either operand order."""
    if not isinstance(expr, ast.BinOp) or not isinstance(expr.op, ast.Add):
        return False
    left, right = expr.left, expr.right
    if isinstance(right, ast.Constant) and right.value == 1:
        return _is_floor_half(left)
    if isinstance(left, ast.Constant) and left.value == 1:
        return _is_floor_half(right)
    return False


@register
class QuorumArithmeticRule(Rule):
    code = "TMF103"
    name = "quorum-arithmetic"
    severity = Severity.ERROR
    requires_flow = True
    description = (
        "In messages-only modules, quorum thresholds must be proper "
        "majorities: `n // 2` waits miss quorum intersection for even n. "
        "Declare n with `# repro-lint: quorum-n=K` to check constants."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.messages_only:
            return
        yield from self._check_assignments(ctx)
        yield from self._check_waits(ctx)

    def _check_assignments(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None or not _is_floor_half(value):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                name = terminal_name(target)
                if _is_quorum_name(name):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"quorum threshold {name!r} is a bare floor-half "
                        f"(`{ast.unparse(value)}`): below majority for "
                        "every even replica count — use `// 2 + 1`",
                    )
                    break

    def _check_waits(self, ctx: ModuleContext) -> Iterable[Finding]:
        declared_n = ctx.quorum_n
        flow = module_flow(ctx)
        for facts in flow.programs.values():
            for loop in facts.loops:
                if not any(op.kind == cfg_mod.OP_RECV for op in loop.ops):
                    continue
                threshold = self._wait_threshold(loop.info.test)
                if threshold is None:
                    continue
                op, bound = threshold
                if _is_floor_half(bound):
                    yield self.finding(
                        ctx,
                        loop.info.lineno,
                        loop.info.stmt.col_offset,
                        "reply-count wait exits at a bare floor-half "
                        f"threshold (`{ast.unparse(bound)}`): below "
                        "majority for every even replica count",
                    )
                elif (
                    declared_n is not None
                    and isinstance(bound, ast.Constant)
                    and isinstance(bound.value, int)
                ):
                    # `< c` waits for c replies; `<= c` waits for c + 1.
                    waits_for = bound.value + (1 if isinstance(op, ast.LtE) else 0)
                    majority = declared_n // 2 + 1
                    if waits_for < majority:
                        yield self.finding(
                            ctx,
                            loop.info.lineno,
                            loop.info.stmt.col_offset,
                            f"reply-count wait collects {waits_for} "
                            f"replies but majority for declared n="
                            f"{declared_n} is {majority}",
                        )

    @staticmethod
    def _wait_threshold(test: Optional[ast.expr]):
        """Match ``len(X) < T`` / ``len(X) <= T``; return (op, T)."""
        if (
            not isinstance(test, ast.Compare)
            or len(test.ops) != 1
            or not isinstance(test.ops[0], (ast.Lt, ast.LtE))
            or not isinstance(test.left, ast.Call)
            or terminal_name(test.left.func) != "len"
        ):
            return None
        return test.ops[0], test.comparators[0]
