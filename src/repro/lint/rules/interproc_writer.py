"""TMF104 — interprocedural single-writer: delegation-aware ownership.

TMF006 checks the single-writer annotation per program *body*: annotated
array cells must be indexed by the writing program's own pid, annotated
scalars written from at most one body.  Both checks go blind the moment
a write moves behind ``yield from``: a helper that writes ``A[i]`` for
its parameter ``i`` is innocent in isolation, and a caller that passes
``j`` (someone else's pid) into it never touches the array syntactically.

The flow facts close that hole.  Over the module's resolved delegation
graph:

1. **pid-sensitive parameters** are computed to a fixpoint — a parameter
   is pid-sensitive when the callee writes an annotated array indexed by
   it, or forwards it into another pid-sensitive parameter.  Every
   delegation site must then bind each pid-sensitive parameter to the
   caller's *own* pid (its ``pid`` parameter, ``self.pid``, or a
   parameter it forwards, which propagates the obligation outward).
   Anything else — a constant, an arithmetic expression, another
   process's id — is a delegated write outside the owner's cell.
2. **scalar reach**: an annotated scalar written by more than one root
   program (entry points of the resolved delegation graph) is flagged at
   the delegation sites that smuggle in the extra writers — the
   configurations TMF006's per-body count cannot see.

Requires ``--flow``.  Suppress with ``# repro-lint: disable=TMF104`` on
the delegation line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..registry import Rule, register
from ..flow import cfg as cfg_mod
from ..flow.facts import (
    LEAF,
    PARAM,
    ModuleFlow,
    ProgramFacts,
    _argument_for,
    _substitute_param,
    module_flow,
)

__all__ = ["InterprocSingleWriterRule"]


def _own_pid_arg(arg: ast.expr, caller: ProgramFacts) -> bool:
    """True when ``arg`` is the caller's own process id."""
    pid_param = caller.program.pid_param
    if isinstance(arg, ast.Name):
        return pid_param is not None and arg.id == pid_param
    if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
        return arg.value.id == "self" and arg.attr == "pid"
    return False


@register
class InterprocSingleWriterRule(Rule):
    code = "TMF104"
    name = "interprocedural-single-writer"
    severity = Severity.ERROR
    requires_flow = True
    description = (
        "Single-writer discipline must survive `yield from`: delegation "
        "sites must bind pid-sensitive helper parameters to the caller's "
        "own pid, and annotated scalars must not gain extra writing "
        "programs through delegation."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        flow = module_flow(ctx)
        annotated_scalars = {
            decl.leaf
            for decl in flow.registers.values()
            if decl.annotated and decl.kind == "register"
        }
        sensitive, param_indexed = self._pid_sensitive_params(flow)
        yield from self._check_delegation_args(
            ctx, flow, sensitive, param_indexed
        )
        if annotated_scalars:
            yield from self._check_scalar_reach(ctx, flow, annotated_scalars)

    # -- part 1: pid-sensitive parameter binding ---------------------------

    @staticmethod
    def _annotated_array_arg(
        flow: ModuleFlow, facts: ProgramFacts, arg: ast.expr
    ) -> bool:
        """True when ``arg`` is a handle to an annotated array."""
        from ..programs import terminal_name

        name = terminal_name(arg)
        if name is None:
            return False
        names = {name} | facts.aliases.get(name, set())
        for candidate in names:
            decl = flow.registers.get(candidate)
            if decl is not None and decl.annotated and decl.kind == "array":
                return True
        return False

    def _pid_sensitive_params(
        self, flow: ModuleFlow
    ) -> Tuple[Dict[str, Set[str]], Dict[str, Set[Tuple[str, str]]]]:
        """Fixpoint over the delegation graph.

        Returns ``(sensitive, param_indexed)``: per qualname, the
        parameters that must receive the caller's own pid, and the
        (array-param, index-param) pairs whose obligation depends on
        what the call site binds to the array parameter.
        """
        sensitive: Dict[str, Set[str]] = {
            q: {param for _attr, param in f.pid_indexed_writes}
            for q, f in flow.programs.items()
        }
        param_indexed: Dict[str, Set[Tuple[str, str]]] = {
            q: set(f.param_indexed_writes) for q, f in flow.programs.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname, facts in flow.programs.items():
                for site in facts.delegations:
                    resolved = flow.resolve_callee(facts, site)
                    if resolved is None or site.call is None:
                        continue
                    _cflow, callee = resolved
                    for param in sorted(sensitive.get(callee.qualname, ())):
                        arg = _argument_for(site.call, callee, param)
                        if (
                            isinstance(arg, ast.Name)
                            and arg.id in facts.params
                            and arg.id not in sensitive[qualname]
                        ):
                            sensitive[qualname].add(arg.id)
                            changed = True
                    for pa, pi in sorted(
                        param_indexed.get(callee.qualname, ())
                    ):
                        arg_a = _argument_for(site.call, callee, pa)
                        arg_i = _argument_for(site.call, callee, pi)
                        if arg_a is None or arg_i is None:
                            continue
                        both_params = (
                            isinstance(arg_a, ast.Name)
                            and arg_a.id in facts.params
                            and isinstance(arg_i, ast.Name)
                            and arg_i.id in facts.params
                        )
                        if both_params:
                            pair = (arg_a.id, arg_i.id)
                            if pair not in param_indexed[qualname]:
                                param_indexed[qualname].add(pair)
                                changed = True
                        elif self._annotated_array_arg(flow, facts, arg_a):
                            # The helper writes an annotated array here;
                            # a param-bound index passes the obligation
                            # to our own callers.
                            if (
                                isinstance(arg_i, ast.Name)
                                and arg_i.id in facts.params
                                and arg_i.id not in sensitive[qualname]
                            ):
                                sensitive[qualname].add(arg_i.id)
                                changed = True
        return sensitive, param_indexed

    def _check_delegation_args(
        self,
        ctx: ModuleContext,
        flow: ModuleFlow,
        sensitive: Dict[str, Set[str]],
        param_indexed: Dict[str, Set[Tuple[str, str]]],
    ) -> Iterable[Finding]:
        for facts in flow.programs.values():
            for site in facts.delegations:
                resolved = flow.resolve_callee(facts, site)
                if resolved is None or site.call is None:
                    continue
                _cflow, callee = resolved
                for param in sorted(sensitive.get(callee.qualname, ())):
                    arg = _argument_for(site.call, callee, param)
                    if arg is None:
                        continue
                    if _own_pid_arg(arg, facts):
                        continue
                    if isinstance(arg, ast.Name) and arg.id in facts.params:
                        continue  # obligation propagated to our callers
                    yield self.finding(
                        ctx,
                        site.lineno,
                        site.col,
                        f"delegation binds pid-sensitive parameter "
                        f"{param!r} of {callee.qualname!r} to "
                        f"`{ast.unparse(arg)}`, which is not the "
                        "caller's own pid: the helper will write an "
                        "annotated single-writer cell it does not own",
                    )
                for pa, pi in sorted(param_indexed.get(callee.qualname, ())):
                    arg_a = _argument_for(site.call, callee, pa)
                    arg_i = _argument_for(site.call, callee, pi)
                    if arg_a is None or arg_i is None:
                        continue
                    if not self._annotated_array_arg(flow, facts, arg_a):
                        continue
                    if _own_pid_arg(arg_i, facts):
                        continue
                    if isinstance(arg_i, ast.Name) and arg_i.id in facts.params:
                        continue  # propagated via the sensitivity fixpoint
                    yield self.finding(
                        ctx,
                        site.lineno,
                        site.col,
                        f"delegation passes annotated single-writer array "
                        f"`{ast.unparse(arg_a)}` into {callee.qualname!r}, "
                        f"which writes the cell indexed by its parameter "
                        f"{pi!r}, bound here to `{ast.unparse(arg_i)}` — "
                        "not the caller's own pid",
                    )

    # -- part 2: scalar writers gained through delegation ------------------

    def _check_scalar_reach(
        self,
        ctx: ModuleContext,
        flow: ModuleFlow,
        annotated_scalars: Set[str],
    ) -> Iterable[Finding]:
        delegated_to = {
            callee.qualname
            for facts in flow.programs.values()
            for site in facts.delegations
            for resolved in [flow.resolve_callee(facts, site)]
            if resolved is not None and resolved[0] is flow
            for callee in [resolved[1]]
        }
        roots = [
            f
            for q, f in flow.programs.items()
            if f.program.is_program and q not in delegated_to
        ]
        for leaf in sorted(annotated_scalars):
            direct: Set[str] = set()
            via_delegation: List[Tuple[ProgramFacts, object]] = []
            for facts in roots:
                if self._writes_directly(facts, leaf):
                    direct.add(facts.qualname)
                for site in facts.delegations:
                    resolved = flow.resolve_callee(facts, site)
                    if resolved is None:
                        continue
                    cflow, callee = resolved
                    targets, _ok = cflow.closure_accesses(callee.qualname)
                    substituted = (
                        _substitute_param(flow, facts, site, callee, t)
                        if t.cls == PARAM
                        else t
                        for t in targets
                    )
                    if any(
                        t.cls == LEAF
                        and t.name == leaf
                        and t.kind in (cfg_mod.OP_WRITE, cfg_mod.OP_RMW)
                        for t in substituted
                    ):
                        via_delegation.append((facts, site))
            writers = direct | {f.qualname for f, _ in via_delegation}
            if len(writers) <= 1:
                continue
            for facts, site in via_delegation:
                others = sorted(writers - {facts.qualname})
                yield self.finding(
                    ctx,
                    site.lineno,
                    site.col,
                    f"single-writer register {leaf!r} is written by "
                    f"multiple root programs once delegation is "
                    f"followed ({facts.qualname!r} and "
                    f"{', '.join(repr(o) for o in others)})",
                )

    @staticmethod
    def _writes_directly(facts: ProgramFacts, leaf: str) -> bool:
        return any(
            target.cls == LEAF
            and target.name == leaf
            and target.kind in (cfg_mod.OP_WRITE, cfg_mod.OP_RMW)
            for _site, target in facts.accesses
        )
