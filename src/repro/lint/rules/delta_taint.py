"""TMF102 — Δ-taint leak: timing-derived control flow in tolerant code.

The paper's central divide is between constructions that *consume* the
known step-time bound Δ (Fischer's lock delays for it; the timed
consensus protocols count it) and constructions whose correctness is
claimed **independent** of timing — the failure-tolerant results.  A
module declares itself on the tolerant side of that line with::

    # repro-lint: failure-tolerant

inside which *no* value derived from a timing parameter may control a
branch or feed a delay.  The flow facts track a two-point may-taint
lattice per program: any identifier matching the timing-parameter
naming convention (``delta`` in the name, any case) is a source, taint
propagates through assignments to a fixpoint, and the sinks are branch
tests (``if``/``while``) and ``delay`` durations.  A tainted sink in a
failure-tolerant module means the tolerance claim silently depends on
Δ after all — exactly the dependency the annotation promises away.

Requires ``--flow``.  Suppress with ``# repro-lint: disable=TMF102`` on
the sink's line (e.g. a delay that is a pure performance hint, not a
correctness condition).
"""

from __future__ import annotations

from typing import Iterable

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..registry import Rule, register
from ..flow.facts import module_flow

__all__ = ["DeltaTaintRule"]


@register
class DeltaTaintRule(Rule):
    code = "TMF102"
    name = "delta-taint-leak"
    severity = Severity.ERROR
    requires_flow = True
    description = (
        "In a `# repro-lint: failure-tolerant` module, no branch test or "
        "delay duration may derive from a timing parameter (Δ): the "
        "module's tolerance claim is exactly that it never relies on one."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.failure_tolerant:
            return
        flow = module_flow(ctx)
        for facts in flow.programs.values():
            for site in facts.taint_sites:
                what = (
                    "controls a branch"
                    if site.kind == "branch"
                    else "feeds a delay duration"
                )
                yield self.finding(
                    ctx,
                    site.lineno,
                    site.col,
                    f"Δ-derived value {what} (`{site.detail}`) in a "
                    "module declared failure-tolerant: the claim is that "
                    "correctness never depends on timing parameters",
                )
