"""TMF002 — substrate discipline: registers-only vs messages-only.

The paper's headline results (Theorems 2.1–3.3) are proved from *atomic
read/write registers alone*; stronger primitives are explicitly deferred
to the Discussion section and live in :mod:`repro.algorithms.rmw`.  A
``compare_and_swap`` smuggled into Algorithm 1 would still pass every
behavioural test while silently changing what the reproduction claims.

Modules state their substrate with a directive (the declaration is
itself part of the reproduction's statement of assumptions):

* ``# repro-lint: registers-only`` — the shared-memory model.  The rule
  flags any reference to :data:`~repro.lint.programs.RMW_NAMES` (as a
  call, an import or a bare name) **and** any use of the message
  primitives (``ops.send``/``ops.recv``/``ops.broadcast``, the
  ``Send``/``Recv``/``Broadcast`` classes, or their imports from the ops
  module) — a registers-only algorithm that quietly talks to the network
  is no longer running in the model its theorems assume.
* ``# repro-lint: messages-only`` — the :mod:`repro.net` substrate.  The
  rule flags RMW references just the same, plus anything that *creates*
  register machinery: calls to ``register``/``array`` constructors and
  (non-``TYPE_CHECKING``) imports of ``Register``/``Array``/
  ``RegisterNamespace``.  Plain attribute access such as ``op.register``
  stays legal — the quorum emulation must inspect intercepted register
  ops without ever owning a register.

Declaring both directives in one module is itself a finding: a module
cannot claim both substrates at once.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..programs import (
    MESSAGE_CLASSES,
    MESSAGE_HELPERS,
    RMW_NAMES,
    terminal_name,
)
from ..registry import Rule, register

__all__ = ["PrimitiveDisciplineRule"]

#: Callables that create register machinery (module helpers, namespace
#: methods and the raw classes share these names).
_REGISTER_CREATORS = {"register", "array", "Register", "Array", "RegisterNamespace"}

#: Import sources that make a lowercase ``send``/``recv``/``broadcast``
#: unambiguously the message helpers (vs. e.g. a socket wrapper).
_OPS_MODULE_PARTS = {"ops", "sim"}


def _from_ops_module(node: ast.ImportFrom) -> bool:
    parts = set((node.module or "").split("."))
    return bool(parts & _OPS_MODULE_PARTS)


def _type_checking_import_lines(tree: ast.Module) -> Set[int]:
    """Lines of imports guarded by ``if TYPE_CHECKING:`` (type-only)."""
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and terminal_name(node.test) == "TYPE_CHECKING":
            for sub in node.body:
                for inner in ast.walk(sub):
                    if isinstance(inner, (ast.Import, ast.ImportFrom)):
                        lines.add(inner.lineno)
    return lines


@register
class PrimitiveDisciplineRule(Rule):
    code = "TMF002"
    name = "primitive-discipline"
    severity = Severity.ERROR
    description = (
        "Modules declare their substrate: `# repro-lint: registers-only` "
        "bans RMW primitives and message ops (the paper's results assume "
        "atomic registers alone); `# repro-lint: messages-only` bans RMW "
        "and register creation (the net substrate owns no shared memory)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.registers_only and ctx.messages_only:
            line = max(
                ctx.directive_lines("registers-only")
                + ctx.directive_lines("messages-only")
            )
            yield self.finding(
                ctx,
                line,
                0,
                "module declares both `registers-only` and `messages-only`; "
                "a module runs on exactly one substrate — drop one directive",
            )
            return
        if ctx.registers_only:
            yield from self._check_registers_only(ctx)
        elif ctx.messages_only:
            yield from self._check_messages_only(ctx)

    # -- registers-only: no RMW, no message primitives ----------------------

    def _check_registers_only(self, ctx: ModuleContext) -> Iterable[Finding]:
        message_imports: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    leaf = alias.name.split(".")[-1]
                    if leaf in RMW_NAMES:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"registers-only module imports RMW primitive "
                            f"{alias.name!r}",
                        )
                    elif leaf in MESSAGE_CLASSES or (
                        leaf in MESSAGE_HELPERS
                        and isinstance(node, ast.ImportFrom)
                        and _from_ops_module(node)
                    ):
                        message_imports.add(alias.asname or leaf)
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"registers-only module imports message primitive "
                            f"{alias.name!r}; shared-memory algorithms must "
                            "not touch the network substrate",
                        )
            elif isinstance(node, (ast.Name, ast.Attribute)):
                name = terminal_name(node)
                if name in RMW_NAMES:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"registers-only module references RMW primitive "
                        f"{name!r}; the paper's model here is atomic "
                        "read/write registers only",
                    )
                elif name in MESSAGE_CLASSES:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"registers-only module references message op class "
                        f"{name!r}",
                    )
            elif isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name in MESSAGE_HELPERS and self._is_message_call(
                    node, message_imports
                ):
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"registers-only module calls message helper "
                        f"{name!r}; shared-memory algorithms must not "
                        "touch the network substrate",
                    )

    @staticmethod
    def _is_message_call(node: ast.Call, message_imports: Set[str]) -> bool:
        """Is this call unambiguously a message-op construction?

        ``ops.send(...)`` and a ``send`` imported from the ops module
        count; ``transport.send(...)`` or a generator's ``.send()`` do
        not — method calls named ``send`` are everywhere in Python.
        """
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in message_imports
        if isinstance(func, ast.Attribute):
            return terminal_name(func.value) == "ops"
        return False

    # -- messages-only: no RMW, no register creation ------------------------

    def _check_messages_only(self, ctx: ModuleContext) -> Iterable[Finding]:
        type_only = _type_checking_import_lines(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                if node.lineno in type_only:
                    continue  # type-only imports create nothing at runtime
                for alias in node.names:
                    leaf = alias.name.split(".")[-1]
                    if leaf in RMW_NAMES:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"messages-only module imports RMW primitive "
                            f"{alias.name!r}",
                        )
                    elif leaf in {"Register", "Array", "RegisterNamespace"}:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"messages-only module imports register machinery "
                            f"{alias.name!r}; the net substrate owns no "
                            "shared memory (emulate it over messages instead)",
                        )
            elif isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name in _REGISTER_CREATORS:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"messages-only module creates register machinery via "
                        f"{name!r}(...); the net substrate owns no shared "
                        "memory",
                    )
            elif isinstance(node, (ast.Name, ast.Attribute)):
                name = terminal_name(node)
                if name in RMW_NAMES:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"messages-only module references RMW primitive "
                        f"{name!r}",
                    )
