"""TMF002 — no read-modify-write primitives in registers-only modules.

The paper's headline results (Theorems 2.1–3.3) are proved from *atomic
read/write registers alone*; stronger primitives are explicitly deferred
to the Discussion section and live in :mod:`repro.algorithms.rmw`.  A
``compare_and_swap`` smuggled into Algorithm 1 would still pass every
behavioural test while silently changing what the reproduction claims.

Modules opt in by declaring ``# repro-lint: registers-only`` (the
declaration is itself part of the reproduction's statement of
assumptions); this rule then flags any reference to
:data:`~repro.lint.programs.RMW_NAMES` — as a call, an import or a bare
name — anywhere in the module.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..programs import RMW_NAMES, terminal_name
from ..registry import Rule, register

__all__ = ["PrimitiveDisciplineRule"]


@register
class PrimitiveDisciplineRule(Rule):
    code = "TMF002"
    name = "primitive-discipline"
    severity = Severity.ERROR
    description = (
        "Modules declared `# repro-lint: registers-only` must not reference "
        "read-modify-write primitives (ReadModifyWrite, compare_and_swap, "
        "fetch_and_add, get_and_set) — the paper's results assume atomic "
        "registers alone."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.registers_only:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name.split(".")[-1] in RMW_NAMES:
                        yield self.finding(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"registers-only module imports RMW primitive "
                            f"{alias.name!r}",
                        )
            elif isinstance(node, (ast.Name, ast.Attribute)):
                name = terminal_name(node)
                if name in RMW_NAMES:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"registers-only module references RMW primitive "
                        f"{name!r}; the paper's model here is atomic "
                        "read/write registers only",
                    )
