"""TMF001 — every yield in a program must yield an op.

The engine's contract (:mod:`repro.sim.engine`) is that a program
communicates with its executor *only* by yielding
:class:`~repro.sim.ops.Op` objects; a bare ``yield`` or a yield of any
other value is interpreted as "non-operation" and raises at runtime —
but only on the paths a test happens to drive.  This rule finds such
yields statically, in every branch.

Accepted yield values are the op-construction idioms catalogued in
:mod:`repro.lint.programs` (register-handle ``.read()``/``.write()``
calls, the ``ops`` helpers, raw ``Op`` constructors, locals bound to
one of those, and conditionals between two accepted forms).
``yield from`` delegates to a sub-program and is accepted whenever its
operand is a call, name or attribute.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..programs import is_op_expression
from ..registry import Rule, register

__all__ = ["YieldDisciplineRule"]


@register
class YieldDisciplineRule(Rule):
    code = "TMF001"
    name = "yield-discipline"
    severity = Severity.ERROR
    description = (
        "Programs may only yield Op constructions (register .read()/.write(), "
        "ops.* helpers, Op classes); bare yields and non-op values break the "
        "executor contract."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for program in ctx.programs:
            if not program.is_program:
                continue
            for node in program.yields:
                if node.value is None:
                    yield self.finding(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"bare `yield` in program {program.qualname!r}: every "
                        "yield must produce an Op for the executor",
                    )
                elif not is_op_expression(node.value, program.op_locals):
                    yield self.finding(
                        ctx,
                        node.value.lineno,
                        node.value.col_offset,
                        f"program {program.qualname!r} yields a non-op "
                        f"expression `{ast.unparse(node.value)}`; yield an Op "
                        "construction (reg.read()/reg.write(...), ops.delay, "
                        "ops.label, ...)",
                    )
            for node in program.yield_froms:
                if not isinstance(
                    node.value, (ast.Call, ast.Name, ast.Attribute, ast.Await)
                ):
                    yield self.finding(
                        ctx,
                        node.value.lineno,
                        node.value.col_offset,
                        f"program {program.qualname!r} delegates via `yield "
                        f"from {ast.unparse(node.value)}`; delegate to a "
                        "sub-program call or name",
                    )
