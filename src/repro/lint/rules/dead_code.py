"""TMF007 — unreachable statements after return/raise in generators.

In an ordinary function dead code is untidy; in an algorithm program it
is usually a *transcription error* from the paper's pseudocode — an exit
label or register reset placed after the ``return`` that ends the entry
protocol never executes, and the specification checkers only notice on
the schedules that needed it.  The rule reports the first statement in
any block that follows a ``return``, ``raise``, ``break`` or
``continue`` in the same block, for every generator function (programs
or not — the helper generators feed the same traces).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..registry import Rule, register

__all__ = ["DeadCodeRule"]

_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


def _blocks(node: ast.AST) -> Iterable[List[ast.stmt]]:
    """Every statement list lexically inside ``node``, this scope only."""
    stack: List[ast.AST] = [node]
    first = True
    while stack:
        current = stack.pop()
        if not first and isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue  # nested scope
        first = False
        for name in ("body", "orelse", "finalbody"):
            block = getattr(current, name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
                stack.extend(block)
        for handler in getattr(current, "handlers", []):
            yield handler.body
            stack.extend(handler.body)
        for case in getattr(current, "cases", []):  # Python >= 3.10 match
            yield case.body
            stack.extend(case.body)


@register
class DeadCodeRule(Rule):
    code = "TMF007"
    name = "dead-code-after-return"
    severity = Severity.WARNING
    description = (
        "Statements after return/raise/break/continue in a generator never "
        "run — usually a pseudocode transcription slip (e.g. an exit-label "
        "or register reset that silently disappears from the trace)."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for program in ctx.programs:
            for block in _blocks(program.node):
                for prev, stmt in zip(block, block[1:]):
                    if isinstance(prev, _TERMINATORS):
                        kind = type(prev).__name__.lower()
                        yield self.finding(
                            ctx,
                            stmt.lineno,
                            stmt.col_offset,
                            f"unreachable statement in generator "
                            f"{program.qualname!r}: follows `{kind}` at line "
                            f"{prev.lineno}",
                        )
                        break  # one report per block is enough
