"""TMF101 — unbounded busy-wait: a spin loop no other process can release.

The paper's timing-based algorithms spin: Fischer's lock reads ``x``
until it is FREE, the filter lock reads ``victim`` until it moves.  Such
loops are fine *because some program in the module writes the register
being watched* — another process's step is what releases the spinner.
The pathological shape is a yield-bearing loop that reads a register and
exits **only** on conditions derived from that read, when the flow facts
prove no program anywhere in the module ever writes it.  Under a timing
failure (or at all), the read can never change: the loop is a wedge, the
exact pattern Δ-violation windows turn into livelock.

Two shapes are flagged, per program, per reachable loop containing a
shared read:

1. the loop has **no exit at all** (``while True`` with no break or
   return), or
2. every exit is *register-gated* — each break/return guard chain (and a
   falsifiable ``while`` test) references a read-bound local and no
   body-mutated one — and every register those locals were read from
   resolves to a creation-site leaf that **no** program in the module
   writes (interprocedural closure, delegation included).

Anything the analysis cannot prove stays silent: unresolved handles,
incomplete writer sets, exits through locally-mutated counters, and
``for`` loops (their iterator exhausts) all disqualify the loop.

Requires ``--flow``.  Suppress with ``# repro-lint: disable=TMF101`` on
the loop's header line.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..registry import Rule, register
from ..flow import cfg as cfg_mod
from ..flow.facts import LEAF, LoopFacts, module_flow

__all__ = ["BusyWaitRule"]


def _names_in(expr: ast.expr) -> Set[str]:
    return {n.id for n in ast.walk(expr) if isinstance(n, ast.Name)}


@register
class BusyWaitRule(Rule):
    code = "TMF101"
    name = "unbounded-busy-wait"
    severity = Severity.ERROR
    requires_flow = True
    description = (
        "A yield-bearing read loop must have an exit some process can "
        "trigger: either a register-independent escape, or an exit "
        "condition over a register that some program in the module "
        "writes.  A spin on a never-written register can never change."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        flow = module_flow(ctx)
        written, written_complete = flow.written_leafs()
        for facts in flow.programs.values():
            if not facts.program.is_program:
                continue
            for loop in facts.loops:
                finding = self._check_loop(
                    ctx, loop, written, written_complete
                )
                if finding is not None:
                    yield finding

    def _check_loop(
        self,
        ctx: ModuleContext,
        loop: LoopFacts,
        written: Set[str],
        written_complete: bool,
    ) -> Finding | None:
        reads = [op for op in loop.ops if op.kind == cfg_mod.OP_READ]
        if not reads:
            return None
        info = loop.info
        if info.is_for:
            return None
        if not info.has_exit:
            return self.finding(
                ctx,
                info.lineno,
                info.stmt.col_offset,
                "busy-wait loop has no exit: it yields shared reads "
                "forever with no break, return, or falsifiable test",
            )
        # Per-exit analysis: one free escape clears the loop.
        chains: List[List[ast.expr]] = list(info.exit_guards)
        if info.test_falsifiable and info.test is not None:
            chains.append([info.test])
        if not chains:
            # has_exit without recorded guard chains (e.g. unreachable
            # break pruned) — not provably wedged, stay silent.
            return None
        spin_leafs: Set[str] = set()
        for chain in chains:
            if not chain:
                return None  # unconditional break: free escape
            names = set()
            for cond in chain:
                names |= _names_in(cond)
            if names & loop.mutated:
                return None  # exit via a locally-advanced value
            bound = names & set(loop.read_bound)
            if not bound:
                return None  # exit independent of in-loop reads
            for var in bound:
                for target in loop.read_bound[var]:
                    if target.cls != LEAF:
                        return None  # unresolvable source: no claim
                    spin_leafs.add(target.name)
        if not spin_leafs or not written_complete:
            return None
        if spin_leafs & written:
            return None
        leafs = ", ".join(repr(l) for l in sorted(spin_leafs))
        return self.finding(
            ctx,
            info.lineno,
            info.stmt.col_offset,
            f"busy-wait loop spins on register(s) {leafs} that no "
            "program in this module ever writes: every exit condition "
            "is gated on a read that can never change",
        )
