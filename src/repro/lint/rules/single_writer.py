"""TMF006 — single-writer registers are written only by their owner.

Several algorithms' proofs lean on registers being *single-writer*: in
Lamport's fast lock, ``b[i]`` is written by process ``i`` alone, which is
what makes its reads by others meaningful.  The codebase annotates such
registers at their creation site::

    self.b = ns.array("b", False)  # repro-lint: single-writer

For an annotated **array**, every ``.write(...)`` on a cell must index
the cell with the writing program's own process id — the parameter named
``pid`` or the conventional ``self.pid`` — so ``self.b[j].write(...)``
(writing someone else's cell) is flagged.  For an annotated **scalar**
register, writes may appear in at most one program body in the module;
a second writing program is reported at its write site.  Reads are
always free.

In a ``# repro-lint: messages-only`` module (the :mod:`repro.net`
substrate) no register creation can exist, so any ``single-writer``
annotation is dead text — it claims an ownership discipline the module
has nothing to apply it to.  Such dangling annotations are flagged at
the directive's line.

The analysis is per-module: register names are namespaced per algorithm
instance (:class:`~repro.sim.registers.RegisterNamespace`), so cross-
module aliasing cannot occur without also being visible here.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..programs import ProgramInfo, terminal_name
from ..registry import Rule, register

__all__ = ["SingleWriterRule"]

_CREATOR_NAMES = {"register", "array", "Register", "Array"}


def _annotated_registers(ctx: ModuleContext) -> Dict[str, str]:
    """Map attribute/variable name -> 'array' | 'register'.

    A register is annotated when its creation assignment starts on a line
    carrying the ``single-writer`` directive.  Creation sites look like
    ``self.b = ns.array(...)`` or ``turn = ns.register(...)``.
    """
    lines = ctx.single_writer_lines
    if not lines:
        return {}
    out: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign) or node.lineno not in lines:
            continue
        if not isinstance(node.value, ast.Call):
            continue
        creator = terminal_name(node.value.func)
        if creator not in _CREATOR_NAMES:
            continue
        kind = "array" if creator.lower() == "array" else "register"
        for target in node.targets:
            name = terminal_name(target)
            if name is not None:
                out[name] = kind
    return out


def _own_pid_expr(node: ast.expr, pid_param: Optional[str]) -> bool:
    """True when ``node`` is the writing process's own id (``pid``/``self.pid``)."""
    if isinstance(node, ast.Name):
        return pid_param is not None and node.id == pid_param
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id == "self" and node.attr == "pid"
    return False


def _write_calls(
    program: ProgramInfo,
) -> Iterable[ast.Call]:
    for node in program.own_nodes():
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "write"
        ):
            yield node


@register
class SingleWriterRule(Rule):
    code = "TMF006"
    name = "single-writer-discipline"
    severity = Severity.ERROR
    description = (
        "Registers annotated `# repro-lint: single-writer` may only be "
        "written by their owning process: array cells indexed by the "
        "writer's own pid, scalars written from a single program body; in "
        "messages-only modules every single-writer annotation is dangling."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.messages_only:
            for line in sorted(ctx.single_writer_lines):
                yield self.finding(
                    ctx,
                    line,
                    0,
                    "dangling `single-writer` annotation in a messages-only "
                    "module: the net substrate owns no registers, so there "
                    "is nothing for the annotation to protect",
                )
            return
        annotated = _annotated_registers(ctx)
        if not annotated:
            return
        scalar_writers: Dict[str, Set[str]] = {}
        ordered: List[Tuple[ProgramInfo, ast.Call, str, str]] = []
        for program in ctx.programs:
            if not program.is_program:
                continue
            for call in _write_calls(program):
                target = call.func.value  # the handle expression
                reg_name, kind = self._match(target, annotated)
                if reg_name is None:
                    continue
                if kind == "array":
                    index = target.slice if isinstance(target, ast.Subscript) else None
                    if index is None or not _own_pid_expr(
                        index, program.pid_param
                    ):
                        yield self.finding(
                            ctx,
                            call.lineno,
                            call.col_offset,
                            f"single-writer array {reg_name!r} written at "
                            f"index `{ast.unparse(index) if index else '?'}` "
                            f"in {program.qualname!r}; only the owning "
                            "process may write its own cell (index by pid)",
                        )
                else:
                    scalar_writers.setdefault(reg_name, set()).add(
                        program.qualname
                    )
                    ordered.append((program, call, reg_name, kind))
        for program, call, reg_name, _ in ordered:
            writers = scalar_writers.get(reg_name, set())
            if len(writers) > 1:
                others = sorted(writers - {program.qualname})
                yield self.finding(
                    ctx,
                    call.lineno,
                    call.col_offset,
                    f"single-writer register {reg_name!r} written from "
                    f"multiple program bodies ({program.qualname!r} and "
                    f"{', '.join(repr(o) for o in others)})",
                )

    @staticmethod
    def _match(
        target: ast.expr, annotated: Dict[str, str]
    ) -> Tuple[Optional[str], str]:
        """Resolve the written handle to an annotated register, if any.

        ``self.b[pid].write`` -> handle ``self.b[pid]``, matched by the
        subscripted value's terminal name ``b``; ``self.turn.write`` ->
        matched by ``turn`` directly.
        """
        base = target.value if isinstance(target, ast.Subscript) else target
        name = terminal_name(base)
        if name is not None and name in annotated:
            return name, annotated[name]
        return None, ""
