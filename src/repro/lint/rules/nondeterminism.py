"""TMF004 — no wall-clock or entropy sources inside program bodies.

The engine replays programs deterministically: the model checker
re-executes a program many times along different interleavings, traces
are expected to be bit-for-bit reproducible from a seed, and the paper's
``delay(d)`` is *simulated* time, never wall time.  A program body that
consults ``time``, ``random``, ``datetime``, ``os.urandom``, ``secrets``
or ``uuid`` produces runs that cannot be replayed or minimized.

Randomized *workloads* remain fine: seeding happens outside program
bodies (:mod:`repro.workloads.generators` draws from ``random.Random(seed)``
at build time and bakes the choices into the program's arguments), which
is exactly the discipline this rule enforces.

Detection tracks both module references (``import time`` … ``time.time()``)
and direct imports (``from random import random``), including aliases.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Set

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..registry import Rule, register

__all__ = ["NondeterminismRule"]

#: Modules any reference to which is nondeterministic inside a program.
_BANNED_MODULES: Set[str] = {"time", "random", "datetime", "secrets", "uuid"}

#: Per-module function names that are banned when imported directly
#: (``from os import urandom``); for the modules above every attribute
#: is banned, for ``os`` only ``urandom`` is.
_BANNED_FROM_IMPORTS: Dict[str, Set[str]] = {
    "time": {"time", "monotonic", "perf_counter", "sleep", "time_ns", "monotonic_ns"},
    "random": {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "expovariate",
        "gauss",
        "Random",
    },
    "datetime": {"datetime", "date", "time"},
    "os": {"urandom", "getrandom"},
    "secrets": {"token_bytes", "token_hex", "token_urlsafe", "randbelow", "choice"},
    "uuid": {"uuid1", "uuid4"},
}


def _banned_names(tree: ast.Module) -> Dict[str, str]:
    """Map local name -> reason, from the module's imports.

    ``import random as rnd`` maps ``rnd``; ``from time import monotonic
    as clock`` maps ``clock``.  ``import os`` maps ``os`` with the
    attribute restriction handled at the use site.
    """
    banned: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".")[0]
                if top in _BANNED_MODULES:
                    banned[alias.asname or top] = f"module {top!r}"
                elif top == "os":
                    banned[alias.asname or "os"] = "module 'os' (urandom)"
        elif isinstance(node, ast.ImportFrom) and node.module:
            top = node.module.split(".")[0]
            names = _BANNED_FROM_IMPORTS.get(top)
            if names is None:
                continue
            for alias in node.names:
                if alias.name in names or top in _BANNED_MODULES:
                    banned[alias.asname or alias.name] = (
                        f"{top}.{alias.name}"
                    )
    return banned


@register
class NondeterminismRule(Rule):
    code = "TMF004"
    name = "nondeterminism"
    severity = Severity.ERROR
    description = (
        "Program bodies must not consult wall clocks or entropy (time, "
        "random, datetime, os.urandom, secrets, uuid); runs must replay "
        "bit-for-bit from a seed."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        banned = _banned_names(ctx.tree)
        if not banned:
            return
        for program in ctx.programs:
            if not program.is_program:
                continue
            nodes = program.own_nodes()
            for node in nodes:
                if not isinstance(node, ast.Name) or node.id not in banned:
                    continue
                if not isinstance(node.ctx, ast.Load):
                    continue  # a local rebinding shadows the import
                reason = banned[node.id]
                if reason == "module 'os' (urandom)" and not self._is_urandom(
                    node, nodes
                ):
                    continue
                yield self.finding(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"program {program.qualname!r} references "
                    f"nondeterministic source {reason} (via "
                    f"`{node.id}`): breaks seeded bit-for-bit replay",
                )

    @staticmethod
    def _is_urandom(name: ast.Name, nodes: Iterable[ast.AST]) -> bool:
        """True when this ``os`` reference is an ``os.urandom`` access."""
        for node in nodes:
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _BANNED_FROM_IMPORTS["os"]
                and node.value is name
            ):
                return True
        return False
