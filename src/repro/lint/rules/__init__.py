"""The initial rule set — importing this package registers every rule.

Each module holds one rule; the docstring of each module is the rule's
rationale in terms of the paper's model.  Add a rule by dropping a new
module here, decorating the class with
:func:`repro.lint.registry.register`, and importing it below.
"""

from __future__ import annotations

from . import (  # noqa: F401
    busy_wait,
    closures,
    dead_code,
    delay_literal,
    delta_taint,
    interproc_writer,
    nondeterminism,
    primitives,
    quorum_arith,
    single_writer,
    yield_discipline,
)

__all__ = [
    "busy_wait",
    "closures",
    "dead_code",
    "delay_literal",
    "delta_taint",
    "interproc_writer",
    "nondeterminism",
    "primitives",
    "quorum_arith",
    "single_writer",
    "yield_discipline",
]
