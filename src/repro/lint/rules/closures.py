"""TMF003 — programs must not smuggle shared state past the registers.

Every inter-process interaction in the model must go through yielded
register ops, where the executor can time it, trace it, and subject it
to timing failures.  A program that mutates state reachable by *other*
processes — an attribute on the shared algorithm object, a module
global, a mutable default argument (one object shared by every call), or
a captured mutable — creates a covert channel with zero latency and no
linearization point, quietly strengthening the model the theorems were
proved in.

Flagged inside program bodies:

* mutable default arguments (``def entry(self, pid, seen=[])``);
* ``global`` / ``nonlocal`` declarations;
* assignment or augmented assignment to ``self.<attr>``;
* mutating method calls (``append``, ``update``, ``add``, …) and
  subscript assignment on names that are not local bindings of the
  program.

Purely local mutation is the paper's "local computation" and is fine.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..context import ModuleContext
from ..findings import Finding, Severity
from ..programs import ProgramInfo, root_name
from ..registry import Rule, register

__all__ = ["SharedMutableClosureRule"]

#: Method names that mutate their receiver in place.
_MUTATORS: Set[str] = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "remove",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "add",
    "discard",
    "update",
    "setdefault",
    "sort",
    "reverse",
}

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)

_MUTABLE_CONSTRUCTORS: Set[str] = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "Counter",
    "OrderedDict",
}


def _local_bindings(program: ProgramInfo) -> Set[str]:
    """Names bound inside the program's own scope (params included)."""
    args = program.node.args
    names: Set[str] = {a.arg for a in args.args + args.kwonlyargs}
    names.update(a.arg for a in getattr(args, "posonlyargs", []))
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for stmt in program.own_statements():
        targets: list = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            targets = [i.optional_vars for i in stmt.items if i.optional_vars]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
        for node in ast.walk(stmt):
            if isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
    return names


def _is_self_attribute(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


@register
class SharedMutableClosureRule(Rule):
    code = "TMF003"
    name = "shared-mutable-closure"
    severity = Severity.ERROR
    description = (
        "Program bodies must not mutate state shared across processes "
        "(self attributes, globals, mutable defaults, captured mutables); "
        "all sharing goes through yielded register ops."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for program in ctx.programs:
            if not program.is_program:
                continue
            yield from self._check_defaults(ctx, program)
            local = _local_bindings(program)
            for stmt in program.own_statements():
                yield from self._check_statement(ctx, program, stmt, local)

    def _check_defaults(
        self, ctx: ModuleContext, program: ProgramInfo
    ) -> Iterable[Finding]:
        args = program.node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                yield self.finding(
                    ctx,
                    default.lineno,
                    default.col_offset,
                    f"program {program.qualname!r} has a mutable default "
                    "argument: one object is shared by every process "
                    "running this program",
                )

    def _check_statement(
        self,
        ctx: ModuleContext,
        program: ProgramInfo,
        stmt: ast.stmt,
        local: Set[str],
    ) -> Iterable[Finding]:
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            kind = "global" if isinstance(stmt, ast.Global) else "nonlocal"
            yield self.finding(
                ctx,
                stmt.lineno,
                stmt.col_offset,
                f"program {program.qualname!r} declares `{kind} "
                f"{', '.join(stmt.names)}`: module/closure state bypasses "
                "the shared-memory abstraction",
            )
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if _is_self_attribute(target):
                    yield self.finding(
                        ctx,
                        target.lineno,
                        target.col_offset,
                        f"program {program.qualname!r} assigns "
                        f"`self.{target.attr}`: instance attributes are "
                        "shared by every process using this algorithm "
                        "object — use a register",
                    )
                elif isinstance(target, ast.Subscript):
                    root = root_name(target.value)
                    if _is_self_attribute(target.value) or (
                        root is not None and root not in local and root != "self"
                    ):
                        yield self.finding(
                            ctx,
                            target.lineno,
                            target.col_offset,
                            f"program {program.qualname!r} writes into "
                            f"captured container `{ast.unparse(target.value)}`"
                            ": mutation of non-local state bypasses the "
                            "memory abstraction",
                        )
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                receiver = func.value
                root = root_name(receiver)
                if _is_self_attribute(receiver) or (
                    root is not None and root not in local and root != "self"
                ):
                    yield self.finding(
                        ctx,
                        call.lineno,
                        call.col_offset,
                        f"program {program.qualname!r} calls mutating method "
                        f"`.{func.attr}()` on captured object "
                        f"`{ast.unparse(receiver)}`: shared mutation must go "
                        "through register ops",
                    )
