"""Entry point for ``python -m repro.lint``."""

from __future__ import annotations

import os
import sys

from .cli import main

try:
    code = main()
    sys.stdout.flush()
except BrokenPipeError:
    # Output piped into a pager/head that closed early; exit quietly
    # (devnull swap stops the interpreter's shutdown-flush complaint).
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    code = 0
sys.exit(code)
