"""Per-module analysis context shared by every rule.

One :class:`ModuleContext` is built per linted file: the parsed AST, the
source lines, the ``# repro-lint:`` directives found by a proper token
scan (so directives inside string literals are ignored), and the program
table from :mod:`repro.lint.programs`.  Rules receive the context and
emit findings; suppression filtering happens centrally afterwards, so
rules never need to know about disable comments.

Directive syntax (all as comments, anywhere on the relevant line)::

    # repro-lint: disable=TMF001          suppress code(s) on this line
    # repro-lint: disable=TMF001,TMF004   several codes
    # repro-lint: disable=all             everything on this line
    # repro-lint: disable-file=TMF002     suppress code(s) in whole file
    # repro-lint: registers-only          declare module registers-only
    # repro-lint: messages-only           declare module messages-only
    # repro-lint: single-writer           annotate a register creation
    # repro-lint: failure-tolerant        declare module Δ-independent
    # repro-lint: quorum-n=K              declare the replica count

Prose may follow a bare directive after two or more spaces or an em
dash, so pragmas can carry their justification inline.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .programs import ProgramInfo, find_programs

__all__ = ["Directive", "ModuleContext", "build_context"]

_DIRECTIVE_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>[^#]*)")

# A directive body is the first whitespace/dash-delimited token; anything
# after "  " or an em/double dash is human justification, not syntax.
_BODY_SPLIT_RE = re.compile(r"\s{2,}|\s+[—–-]{1,2}\s+")

@dataclass(frozen=True)
class Directive:
    """One parsed ``# repro-lint:`` comment."""

    name: str  # "disable", "disable-file", "registers-only", "single-writer"
    codes: Tuple[str, ...]  # for disable forms; empty otherwise
    line: int  # 1-based line the comment sits on


def _parse_directive(comment: str, line: int) -> Optional[Directive]:
    match = _DIRECTIVE_RE.search(comment)
    if match is None:
        return None
    body = _BODY_SPLIT_RE.split(match.group("body").strip())[0].strip()
    if not body:
        return None
    if "=" in body:
        name, _, raw = body.partition("=")
        codes = tuple(c.strip() for c in raw.split(",") if c.strip())
        return Directive(name=name.strip(), codes=codes, line=line)
    return Directive(name=body, codes=(), line=line)


def scan_directives(source: str) -> List[Directive]:
    """Token-scan ``source`` for ``# repro-lint:`` comments.

    Uses :mod:`tokenize` rather than a per-line regex so that directive
    look-alikes inside string literals are never misread.  A file that
    fails to tokenize yields no directives (the caller will already have
    failed to parse it).
    """
    directives: List[Directive] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                directive = _parse_directive(tok.string, tok.start[0])
                if directive is not None:
                    directives.append(directive)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    return directives


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    directives: List[Directive] = field(default_factory=list)
    programs: List[ProgramInfo] = field(default_factory=list)

    # -- directive queries -------------------------------------------------

    @property
    def registers_only(self) -> bool:
        """True when the module declares itself registers-only."""
        return any(d.name == "registers-only" for d in self.directives)

    @property
    def messages_only(self) -> bool:
        """True when the module declares itself messages-only.

        Messages-only modules (the :mod:`repro.net` substrate) speak raw
        ``send``/``recv``/``broadcast`` and must not create or own shared
        registers — the converse of ``registers-only``.
        """
        return any(d.name == "messages-only" for d in self.directives)

    @property
    def failure_tolerant(self) -> bool:
        """True when the module claims independence from timing bounds.

        A ``# repro-lint: failure-tolerant`` module implements one of the
        paper's wait-free / timing-failure-tolerant results, so nothing
        in it may branch or delay on a Δ-derived value (rule TMF102).
        """
        return any(d.name == "failure-tolerant" for d in self.directives)

    @property
    def quorum_n(self) -> Optional[int]:
        """Declared replica count from ``# repro-lint: quorum-n=K``."""
        for d in self.directives:
            if d.name == "quorum-n" and d.codes:
                try:
                    return int(d.codes[0])
                except ValueError:
                    return None
        return None

    def directive_lines(self, name: str) -> List[int]:
        """Lines carrying the named directive, in file order."""
        return [d.line for d in self.directives if d.name == name]

    @property
    def single_writer_lines(self) -> Set[int]:
        """Lines carrying a ``single-writer`` register annotation."""
        return {d.line for d in self.directives if d.name == "single-writer"}

    def line_suppressions(self) -> Dict[int, Set[str]]:
        """Map line -> codes suppressed on that line ('all' wildcard)."""
        out: Dict[int, Set[str]] = {}
        for d in self.directives:
            if d.name == "disable":
                out.setdefault(d.line, set()).update(d.codes or {"all"})
        return out

    def file_suppressions(self) -> Set[str]:
        """Codes suppressed for the entire file."""
        out: Set[str] = set()
        for d in self.directives:
            if d.name == "disable-file":
                out.update(d.codes or {"all"})
        return out

    def snippet(self, line: int, limit: int = 60) -> str:
        """The stripped source line (for finding messages)."""
        if 1 <= line <= len(self.lines):
            text = self.lines[line - 1].strip()
            return text if len(text) <= limit else text[: limit - 3] + "..."
        return ""


def build_context(path: str, source: str) -> ModuleContext:
    """Parse ``source`` and assemble the rule-facing context.

    Raises :class:`SyntaxError` when the file does not parse; the lint
    driver converts that into a finding rather than crashing the run.
    """
    tree = ast.parse(source, filename=path)
    return ModuleContext(
        path=path,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        directives=scan_directives(source),
        programs=find_programs(tree),
    )
