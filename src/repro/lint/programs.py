"""Recognizing algorithm *programs* and the paper's op vocabulary in source.

A program, throughout this repo, is a Python generator that yields
:class:`repro.sim.ops.Op` objects — the only channel through which an
algorithm may touch shared memory or consume time.  The analyzer must
decide, from syntax alone, (a) which generator functions are programs
(``mutex_session``, ``entry``, ``propose``, …) as opposed to ordinary
Python generators (``registers_in`` yields register names, not ops), and
(b) which yielded expressions construct ops.

A generator counts as a program when either

* its return annotation mentions ``Program`` (the repo-wide convention,
  :data:`repro.sim.process.Program`), or
* at least one of its own ``yield`` values is a recognizable op
  construction (see :func:`is_op_expression`).

Recognized op constructions mirror the idioms the codebase actually
uses::

    yield self.x.read()                  # Register.read / Register.write
    yield self.x[r, v].write(1)          # Array cells
    yield ops.delay(self.delta)          # module helpers
    yield ops.label(ops.DECIDED, d)
    yield compare_and_swap(reg, a, b)    # RMW helpers (TMF002 polices where)
    yield Write(reg, v)                  # raw Op constructors
    op = reg.read(); yield op            # op bound to a local first
    yield a.read() if fast else b.read() # conditional between ops

``yield from`` always delegates to a sub-program and is accepted
whenever its operand is a call or a name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Set, Union

__all__ = [
    "OP_HELPERS",
    "OP_CLASSES",
    "RMW_NAMES",
    "MESSAGE_HELPERS",
    "MESSAGE_CLASSES",
    "MESSAGE_NAMES",
    "ProgramInfo",
    "find_programs",
    "terminal_name",
    "is_op_expression",
]

#: Message-op constructor helpers from :mod:`repro.sim.ops` (the
#: :mod:`repro.net` substrate's vocabulary; TMF002 polices where they
#: may appear).
MESSAGE_HELPERS: Set[str] = {
    "send",
    "recv",
    "broadcast",
}

#: The raw message Op dataclasses.
MESSAGE_CLASSES: Set[str] = {
    "Send",
    "Recv",
    "Broadcast",
}

#: Every message-primitive name, helper or class.
MESSAGE_NAMES: Set[str] = MESSAGE_HELPERS | MESSAGE_CLASSES

#: Lower-case op constructor helpers from :mod:`repro.sim.ops` (plus the
#: ``Register.read`` / ``Register.write`` handle methods, matched by the
#: same names as attribute calls).
OP_HELPERS: Set[str] = {
    "read",
    "write",
    "delay",
    "local_work",
    "label",
    "compare_and_swap",
    "fetch_and_add",
    "get_and_set",
} | MESSAGE_HELPERS

#: The raw Op dataclasses, accepted when constructed directly.
OP_CLASSES: Set[str] = {
    "Read",
    "Write",
    "Delay",
    "LocalWork",
    "Label",
    "ReadModifyWrite",
} | MESSAGE_CLASSES

#: Names whose presence TMF002 flags in registers-only modules.
RMW_NAMES: Set[str] = {
    "ReadModifyWrite",
    "compare_and_swap",
    "fetch_and_add",
    "get_and_set",
}

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name/attribute chain.

    ``ops.delay`` -> ``"delay"``; ``self.x.read`` -> ``"read"``;
    ``delay`` -> ``"delay"``; anything else -> ``None``.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost identifier of a name/attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.value if not isinstance(node, ast.Call) else node.func
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_op_expression(node: ast.AST, local_op_names: Optional[Set[str]] = None) -> bool:
    """True when ``node`` syntactically constructs an op (see module doc)."""
    if isinstance(node, ast.IfExp):
        return is_op_expression(node.body, local_op_names) and is_op_expression(
            node.orelse, local_op_names
        )
    if isinstance(node, ast.Name):
        return local_op_names is not None and node.id in local_op_names
    if not isinstance(node, ast.Call):
        return False
    name = terminal_name(node.func)
    if name is None:
        return False
    return name in OP_HELPERS or name in OP_CLASSES


@dataclass
class ProgramInfo:
    """One generator function, with its own-scope yields precollected.

    ``yields``/``yield_froms`` exclude anything inside nested functions or
    lambdas — those are separate scopes with their own classification.
    ``op_locals`` holds local names bound directly to op constructions
    (``op = reg.read()``), which yield-discipline accepts when yielded.
    """

    node: FunctionNode
    qualname: str
    is_program: bool = False
    yields: List[ast.Yield] = field(default_factory=list)
    yield_froms: List[ast.YieldFrom] = field(default_factory=list)
    op_locals: Set[str] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def pid_param(self) -> Optional[str]:
        """The parameter naming the process id, when the convention holds.

        Programs in this repo pass the process id as a parameter literally
        named ``pid`` (``entry(self, pid)``, ``propose(self, pid, value)``);
        the single-writer rule keys on it.
        """
        for arg in self.node.args.args:
            if arg.arg == "pid":
                return arg.arg
        return None

    def own_statements(self) -> List[ast.stmt]:
        """Every statement in this function, excluding nested scopes."""
        out: List[ast.stmt] = []
        stack: List[ast.stmt] = list(self.node.body)
        while stack:
            stmt = stack.pop()
            out.append(stmt)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.extend(_child_statements(stmt))
        return out

    def own_nodes(self) -> List[ast.AST]:
        """Every AST node in this function, excluding nested scopes.

        Unlike iterating :meth:`own_statements` and ``ast.walk``-ing each
        (which would visit a nested statement's expressions twice — once
        under its parent, once under itself), each node appears exactly
        once.
        """
        out: List[ast.AST] = []
        stack: List[ast.AST] = list(self.node.body)
        while stack:
            node = stack.pop()
            out.append(node)
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return out


def _child_statements(stmt: ast.stmt) -> List[ast.stmt]:
    """Direct child statements of ``stmt``, crossing handler/case wrappers.

    ``ExceptHandler`` and ``match_case`` are not themselves statements, so
    a plain ``iter_child_nodes`` filter would skip the statements inside
    ``except:`` blocks and ``case:`` arms; expressions can never contain
    statements, so nothing else needs unwrapping.
    """
    out: List[ast.stmt] = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            out.append(child)
        elif isinstance(child, ast.excepthandler):
            out.extend(child.body)
        elif child.__class__.__name__ == "match_case":  # Python >= 3.10
            out.extend(child.body)  # type: ignore[attr-defined]
    return out


class _YieldCollector(ast.NodeVisitor):
    """Collects yields belonging to one function scope only."""

    def __init__(self) -> None:
        self.yields: List[ast.Yield] = []
        self.yield_froms: List[ast.YieldFrom] = []
        self.op_locals: Set[str] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope: do not descend

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Yield(self, node: ast.Yield) -> None:
        self.yields.append(node)
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.yield_froms.append(node)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._bind(target, node.value)
        self.generic_visit(node)

    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        """Record op-valued bindings, through tuple unpacking too.

        ``a, b = reg.read(), reg.write(1)`` binds both names to ops when
        target and value are same-length tuples, matched pairwise.
        """
        if isinstance(target, ast.Name):
            if is_op_expression(value):
                self.op_locals.add(target.id)
        elif (
            isinstance(target, (ast.Tuple, ast.List))
            and isinstance(value, (ast.Tuple, ast.List))
            and len(target.elts) == len(value.elts)
        ):
            for sub_target, sub_value in zip(target.elts, value.elts):
                self._bind(sub_target, sub_value)


def _annotation_mentions_program(node: FunctionNode) -> bool:
    returns = node.returns
    if returns is None:
        return False
    if isinstance(returns, ast.Constant) and isinstance(returns.value, str):
        return "Program" in returns.value
    for sub in ast.walk(returns):
        if terminal_name(sub) == "Program":
            return True
    return False


def find_programs(tree: ast.Module) -> List[ProgramInfo]:
    """Every generator function in ``tree``, classified program-or-not.

    The result covers *all* generators (the dead-code rule applies to any
    generator); rules that only make sense for model programs filter on
    :attr:`ProgramInfo.is_program`.
    """
    programs: List[ProgramInfo] = []
    parents: List[str] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                collector = _YieldCollector()
                for stmt in child.body:
                    collector.visit(stmt)
                qualname = ".".join(parents + [child.name])
                if collector.yields or collector.yield_froms:
                    info = ProgramInfo(
                        node=child,
                        qualname=qualname,
                        yields=collector.yields,
                        yield_froms=collector.yield_froms,
                        op_locals=collector.op_locals,
                    )
                    info.is_program = _annotation_mentions_program(child) or any(
                        y.value is not None and is_op_expression(y.value)
                        for y in collector.yields
                    )
                    programs.append(info)
                parents.append(child.name)
                visit(child)
                parents.pop()
            elif isinstance(child, ast.ClassDef):
                parents.append(child.name)
                visit(child)
                parents.pop()
            else:
                visit(child)

    visit(tree)
    return programs
