"""Diagnostics emitted by the model-conformance analyzer.

A :class:`Finding` is one rule violation at one source location.  Codes
are stable (``TMF001``…) so suppression comments, CI grep lines and the
docs never drift when rules are renamed or reordered; ``TMF`` stands for
*timing-model failure*, the class of bug the paper's proofs assume away
and this analyzer guards against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings invalidate the reproduction's claims outright (a
    forbidden primitive in a registers-only proof, nondeterminism inside a
    program body).  ``WARNING`` findings are conventions whose violation
    is suspicious but occasionally intended (a literal ``delay`` bound).
    Both fail the CLI; the distinction is for readers and reports.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``line`` and ``column`` are both 1-based, matching flake8 and every
    editor's ``file:line:col`` convention — the rendered text and the
    JSON document agree.  (AST ``col_offset`` values are 0-based;
    :meth:`repro.lint.registry.Rule.finding` does the conversion, so
    rules keep passing raw node coordinates.)
    """

    code: str
    message: str
    path: str
    line: int
    column: int = 1
    severity: Severity = Severity.ERROR
    rule: str = ""

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.column, self.code)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity.value,
            "rule": self.rule,
        }

    def render(self) -> str:
        """The one-line human form: ``path:line:col: CODE message``."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.code} [{self.severity.value}] {self.message}"
        )
