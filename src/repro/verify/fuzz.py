"""Randomized schedule exploration (interleaving fuzzing).

Exhaustive exploration (:func:`repro.verify.explorer.explore`) is the
gold standard but tops out around two or three processes; this module
complements it with *schedule fuzzing*: run many executions, each driven
by a seeded random scheduler that picks an enabled process uniformly (or
with a configurable bias) at every step, checking the safety properties
at every state.  No soundness claim — only exhaustiveness finds the last
bug — but thousands of random interleavings of a 4-6 process
configuration catch what fixed timing models miss, and every violation
comes back with its replayable schedule, exactly like the explorer's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .explorer import Violation
from .properties import SafetyProperty
from .sandbox import ProgramFactory, Sandbox

__all__ = ["FuzzResult", "fuzz"]


@dataclass
class FuzzResult:
    """Outcome of a fuzzing campaign."""

    schedules_run: int
    steps_taken: int
    violations: List[Violation] = field(default_factory=list)
    completed_runs: int = 0  # runs where every process finished

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"FuzzResult({status}, schedules={self.schedules_run}, "
            f"steps={self.steps_taken}, completed={self.completed_runs})"
        )


def fuzz(
    factories: Dict[int, ProgramFactory],
    properties: Sequence[SafetyProperty],
    schedules: int = 200,
    max_ops: int = 200,
    seed: int = 0,
    bias: Optional[Dict[int, float]] = None,
    stop_at_first_violation: bool = True,
) -> FuzzResult:
    """Run ``schedules`` random interleavings, checking safety throughout.

    Parameters
    ----------
    factories / properties / max_ops:
        As in :func:`repro.verify.explorer.explore`.
    schedules:
        Number of random executions.
    seed:
        Campaign seed; run ``i`` uses ``random.Random((seed, i))``.
    bias:
        Optional pid -> weight map; heavier pids are scheduled more often
        (an easy way to emulate fast/slow process mixes in the untimed
        semantics).
    """
    if schedules < 0:
        raise ValueError(f"schedules must be >= 0, got {schedules}")
    result = FuzzResult(schedules_run=0, steps_taken=0)
    for i in range(schedules):
        rng = random.Random(f"{seed}:{i}")
        sandbox = Sandbox(factories, max_ops=max_ops)
        schedule: List[int] = []
        while True:
            enabled = sandbox.enabled()
            if not enabled:
                break
            if bias:
                weights = [bias.get(pid, 1.0) for pid in enabled]
                pid = rng.choices(enabled, weights=weights, k=1)[0]
            else:
                pid = rng.choice(enabled)
            sandbox.step(pid)
            schedule.append(pid)
            result.steps_taken += 1
            for prop in properties:
                message = prop.check(sandbox)
                if message is not None:
                    result.violations.append(
                        Violation(prop.name, message, tuple(schedule))
                    )
                    if stop_at_first_violation:
                        result.schedules_run = i + 1
                        return result
        result.schedules_run += 1
        if all(sandbox.done(pid) for pid in factories):
            result.completed_runs += 1
    return result
