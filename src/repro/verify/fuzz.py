"""Randomized schedule exploration (interleaving fuzzing).

Exhaustive exploration (:func:`repro.verify.explorer.explore`) is the
gold standard but tops out around two or three processes; this module
complements it with *schedule fuzzing*: run many executions, each driven
by a seeded random scheduler that picks an enabled process uniformly (or
with a configurable bias) at every step, checking the safety properties
at every state.  No soundness claim — only exhaustiveness finds the last
bug — but thousands of random interleavings of a 4-6 process
configuration catch what fixed timing models miss, and every violation
comes back with its replayable schedule, exactly like the explorer's.

The module is also runnable — the nightly CI workflow drives the
standard campaigns with a rotating (date-derived) seed, so every night
hammers fresh schedules::

    python -m repro.verify.fuzz --seed 20260805 --schedules 500

Campaigns: Fischer n=3 (a violation MUST be found), Algorithm 3 n=4 and
Algorithm 1 n=4 (no violation may exist).  Exit 0 when every expectation
holds, 1 otherwise.  ``--substrate net`` fuzzes the networked
quorum-register emulation instead (see :mod:`repro.net.fuzz`): random
workloads under rotating fault plans, checked against the atomic-register
linearizability spec.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .explorer import Violation
from .properties import SafetyProperty
from .sandbox import ProgramFactory, Sandbox

__all__ = ["FuzzFailure", "FuzzResult", "fuzz", "main"]


@dataclass(frozen=True)
class FuzzFailure:
    """One violation plus everything needed to replay it.

    ``seed_key`` is the exact string the failing run's scheduler was
    seeded with (``random.Random(seed_key)``), so a reader can rerun the
    schedule without reconstructing the campaign's seeding convention —
    and the violation's recorded schedule replays it deterministically
    through :func:`repro.verify.explorer.replay_schedule` regardless.
    """

    run_index: int
    seed_key: str
    violation: Violation

    def replay_hint(self) -> str:
        schedule = ",".join(str(pid) for pid in self.violation.schedule)
        return (
            f"replay: run {self.run_index} (Random({self.seed_key!r})) "
            f"schedule=[{schedule}]"
        )


@dataclass
class FuzzResult:
    """Outcome of a fuzzing campaign."""

    schedules_run: int
    steps_taken: int
    failures: List[FuzzFailure] = field(default_factory=list)
    completed_runs: int = 0  # runs where every process finished

    @property
    def violations(self) -> List[Violation]:
        """The bare violations (compatibility view over ``failures``)."""
        return [failure.violation for failure in self.failures]

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"FuzzResult({status}, schedules={self.schedules_run}, "
            f"steps={self.steps_taken}, completed={self.completed_runs})"
        )


def fuzz(
    factories: Dict[int, ProgramFactory],
    properties: Sequence[SafetyProperty],
    schedules: int = 200,
    max_ops: int = 200,
    seed: int = 0,
    bias: Optional[Dict[int, float]] = None,
    stop_at_first_violation: bool = True,
) -> FuzzResult:
    """Run ``schedules`` random interleavings, checking safety throughout.

    Parameters
    ----------
    factories / properties / max_ops:
        As in :func:`repro.verify.explorer.explore`.
    schedules:
        Number of random executions.
    seed:
        Campaign seed; run ``i`` uses ``random.Random((seed, i))``.
    bias:
        Optional pid -> weight map; heavier pids are scheduled more often
        (an easy way to emulate fast/slow process mixes in the untimed
        semantics).
    """
    if schedules < 0:
        raise ValueError(f"schedules must be >= 0, got {schedules}")
    result = FuzzResult(schedules_run=0, steps_taken=0)
    for i in range(schedules):
        seed_key = f"{seed}:{i}"
        rng = random.Random(seed_key)
        sandbox = Sandbox(factories, max_ops=max_ops)
        schedule: List[int] = []
        fired: set = set()  # properties already reported for THIS run
        while True:
            enabled = sandbox.enabled()
            if not enabled:
                break
            if bias:
                weights = [bias.get(pid, 1.0) for pid in enabled]
                pid = rng.choices(enabled, weights=weights, k=1)[0]
            else:
                pid = rng.choice(enabled)
            sandbox.step(pid)
            schedule.append(pid)
            result.steps_taken += 1
            for prop in properties:
                if prop.name in fired:
                    continue  # a broken state persists; report it once per run
                message = prop.check(sandbox)
                if message is not None:
                    fired.add(prop.name)
                    result.failures.append(
                        FuzzFailure(
                            run_index=i,
                            seed_key=seed_key,
                            violation=Violation(prop.name, message,
                                                tuple(schedule)),
                        )
                    )
                    if stop_at_first_violation:
                        result.schedules_run = i + 1
                        return result
        result.schedules_run += 1
        if all(sandbox.done(pid) for pid in factories):
            result.completed_runs += 1
    return result


def _standard_campaigns(seed: int, schedules: int):
    """(name, factories, properties, kwargs, expect_violation) tuples.

    Imports live here to keep :mod:`repro.verify` free of an import cycle
    with the algorithm packages.
    """
    from ..algorithms import FischerLock, mutex_session
    from ..core.consensus import TimeResilientConsensus, labeled_decision
    from ..core.mutex import default_time_resilient_mutex
    from .properties import (
        AgreementProperty,
        MutualExclusionProperty,
        ValidityProperty,
    )

    fischer = FischerLock(delta=1.0)
    alg3 = default_time_resilient_mutex(4, delta=1.0)
    consensus = TimeResilientConsensus(delta=1.0, max_rounds=3)
    inputs = {pid: pid % 2 for pid in range(4)}
    return [
        (
            "fischer_n3",
            {pid: (lambda p: mutex_session(fischer, p, sessions=1,
                                           cs_duration=1.0))
             for pid in range(3)},
            [MutualExclusionProperty()],
            {"schedules": schedules, "max_ops": 40, "seed": seed},
            True,
        ),
        (
            "alg3_n4",
            {pid: (lambda p: mutex_session(alg3, p, sessions=1,
                                           cs_duration=1.0))
             for pid in range(4)},
            [MutualExclusionProperty()],
            {"schedules": schedules, "max_ops": 120, "seed": seed + 1},
            False,
        ),
        (
            "consensus_n4",
            {pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
             for pid in inputs},
            [AgreementProperty(), ValidityProperty(inputs)],
            {"schedules": schedules, "max_ops": 80, "seed": seed + 2},
            False,
        ),
    ]


def _net_campaign(seed: int, schedules: int) -> int:
    """Fuzz the networked substrate: quorum registers vs. linearizability.

    Drives :func:`repro.net.fuzz.fuzz_quorum_register` — random client
    workloads over the ABD emulation under the rotating fault plans
    (crash-minority, delay spikes, healing partitions, loss, client
    crashes) — and fails when any schedule's history is not explainable
    as an atomic register.
    """
    from ..net.fuzz import fuzz_quorum_register

    report = fuzz_quorum_register(schedules=schedules, seed=seed)
    print(report.summary())
    for outcome in report.violations[:3]:
        print(f"     {outcome!r}")
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI driver for the standard fuzzing campaigns (see module doc)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz",
        description="Run the standard schedule-fuzzing campaigns.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (rotate it nightly)")
    parser.add_argument("--schedules", type=int, default=500,
                        help="random schedules per campaign (default: 500)")
    parser.add_argument("--substrate", choices=("registers", "net"),
                        default="registers",
                        help="fuzz shared-memory interleavings (default) or "
                             "the networked quorum-register emulation")
    args = parser.parse_args(argv)

    if args.substrate == "net":
        return _net_campaign(args.seed, args.schedules)

    failures = 0
    for name, factories, properties, kwargs, expect_violation in (
            _standard_campaigns(args.seed, args.schedules)):
        # Collect EVERY violation, not just the first: a nightly failure
        # must be actionable from the log alone.
        result = fuzz(factories, properties,
                      stop_at_first_violation=False, **kwargs)
        if expect_violation:
            ok = not result.ok
            expectation = "violation expected"
        else:
            ok = result.ok
            expectation = "must stay safe"
        print(f"{'ok  ' if ok else 'FAIL'} {name:<14} ({expectation}): {result!r}")
        shown = result.failures[:5]
        if not ok:
            failures += 1
        elif expect_violation:
            shown = result.failures[:1]  # confirm the expected find is real
        if not ok or expect_violation:
            for failure in shown:
                print(f"     {failure.violation!r}")
                print(f"     {failure.replay_hint()}")
            remaining = len(result.failures) - len(shown)
            if remaining > 0:
                print(f"     ... and {remaining} more violation(s)")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
