"""Randomized schedule exploration (interleaving fuzzing).

Exhaustive exploration (:func:`repro.verify.explorer.explore`) is the
gold standard but tops out around two or three processes; this module
complements it with *schedule fuzzing*: run many executions, each driven
by a seeded random scheduler that picks an enabled process uniformly (or
with a configurable bias) at every step, checking the safety properties
at every state.  No soundness claim — only exhaustiveness finds the last
bug — but thousands of random interleavings of a 4-6 process
configuration catch what fixed timing models miss, and every violation
comes back with its replayable schedule, exactly like the explorer's.

The module is also runnable — the nightly CI workflow drives the
standard campaigns with a rotating (date-derived) seed, so every night
hammers fresh schedules::

    python -m repro.verify.fuzz --seed 20260805 --schedules 500 --workers 4

Campaigns: Fischer n=3 (a violation MUST be found), Algorithm 3 n=4 and
Algorithm 1 n=4 (no violation may exist).  Exit 0 when every expectation
holds, 1 otherwise, 2 on usage errors (an empty campaign —
``--schedules 0`` — is a usage error, not a vacuous pass).  ``--substrate
net`` fuzzes the networked quorum-register emulation instead (see
:mod:`repro.net.fuzz`): random workloads under rotating fault plans,
checked against the atomic-register linearizability spec.

``--workers N`` shards each campaign's schedule range over N processes
via :mod:`repro.parallel`.  Because every run is seeded by its global
index, the merged output — violation lists, summary JSON, exit code —
is bit-identical to ``--workers 1`` on the same seed; only the
per-worker wall/throughput telemetry (``--timing-json``) differs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.tracer import Tracer, active_tracer

from .explorer import Violation
from .properties import SafetyProperty
from .sandbox import ProgramFactory, Sandbox, op_kind, op_register

__all__ = ["FuzzFailure", "FuzzResult", "fuzz", "main"]


@dataclass(frozen=True)
class FuzzFailure:
    """One violation plus everything needed to replay it.

    ``seed_key`` is the exact string the failing run's scheduler was
    seeded with (``random.Random(seed_key)``), so a reader can rerun the
    schedule without reconstructing the campaign's seeding convention —
    and the violation's recorded schedule replays it deterministically
    through :func:`repro.verify.explorer.replay_schedule` regardless.
    """

    run_index: int
    seed_key: str
    violation: Violation

    def replay_hint(self) -> str:
        schedule = ",".join(str(pid) for pid in self.violation.schedule)
        return (
            f"replay: run {self.run_index} (Random({self.seed_key!r})) "
            f"schedule=[{schedule}]"
        )


@dataclass
class FuzzResult:
    """Outcome of a fuzzing campaign."""

    schedules_run: int
    steps_taken: int
    failures: List[FuzzFailure] = field(default_factory=list)
    completed_runs: int = 0  # runs where every process finished
    # Per-run trace chunks, ``(global run index, records)`` — populated
    # only under ``fuzz(..., trace=True)``.  Keyed by the global index so
    # :func:`repro.parallel.merge.merge_fuzz_results` can reassemble the
    # sequential trace byte-identically from shard slices.
    trace_chunks: List[Tuple[int, List[Dict[str, Any]]]] = field(
        default_factory=list
    )

    @property
    def violations(self) -> List[Violation]:
        """The bare violations (compatibility view over ``failures``)."""
        return [failure.violation for failure in self.failures]

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"FuzzResult({status}, schedules={self.schedules_run}, "
            f"steps={self.steps_taken}, completed={self.completed_runs})"
        )


def fuzz(
    factories: Dict[int, ProgramFactory],
    properties: Sequence[SafetyProperty],
    schedules: int = 200,
    max_ops: int = 200,
    seed: int = 0,
    bias: Optional[Dict[int, float]] = None,
    stop_at_first_violation: bool = True,
    first_index: int = 0,
    trace: bool = False,
) -> FuzzResult:
    """Run ``schedules`` random interleavings, checking safety throughout.

    Parameters
    ----------
    factories / properties / max_ops:
        As in :func:`repro.verify.explorer.explore`.
    schedules:
        Number of random executions.
    seed:
        Campaign seed; run ``i`` uses ``random.Random(f"{seed}:{i}")``.
    bias:
        Optional pid -> weight map; heavier pids are scheduled more often
        (an easy way to emulate fast/slow process mixes in the untimed
        semantics).
    first_index:
        Global index of the first run.  Run seeds and recorded
        ``run_index`` values are derived from ``first_index + i``, never
        from the local loop position, so a shard executing
        ``[first_index, first_index + schedules)`` produces exactly the
        sequential campaign's slice — the property
        :mod:`repro.parallel.merge` relies on.
    trace:
        Record every run as a ``repro.obs`` trace chunk in
        :attr:`FuzzResult.trace_chunks` (logical-clock substrate, same
        record vocabulary as the chaos runner).  Tracing is pure
        observation — RNG draws, scheduling and verdicts are identical
        with or without it.  With ``trace=False`` an *ambient* tracer
        (:func:`repro.obs.tracer.trace_scope`) still receives the same
        records, but chunking is skipped — the caller owns the buffer.
    """
    if schedules < 0:
        raise ValueError(f"schedules must be >= 0, got {schedules}")
    if first_index < 0:
        raise ValueError(f"first_index must be >= 0, got {first_index}")
    tracer = Tracer() if trace else active_tracer()
    result = FuzzResult(schedules_run=0, steps_taken=0)
    for local in range(schedules):
        i = first_index + local
        seed_key = f"{seed}:{i}"
        rng = random.Random(seed_key)
        sandbox = Sandbox(factories, max_ops=max_ops)
        if tracer is not None:
            tracer.run_marker(
                "steps",
                index=i,
                seed=seed,
                seed_key=seed_key,
                pids=sorted(factories),
            )
        schedule: List[int] = []
        fired: set = set()  # properties already reported for THIS run
        stopped = False
        while True:
            enabled = sandbox.enabled()
            if not enabled:
                break
            if bias:
                weights = [bias.get(pid, 1.0) for pid in enabled]
                pid = rng.choices(enabled, weights=weights, k=1)[0]
            else:
                pid = rng.choice(enabled)
            pending = sandbox.pending_op(pid) if tracer is not None else None
            sandbox.step(pid)
            schedule.append(pid)
            result.steps_taken += 1
            if tracer is not None:
                clock = len(schedule)
                tracer.op(op_kind(pending), pid, op_register(pending),
                          float(clock - 1), float(clock))
            for prop in properties:
                if prop.name in fired:
                    continue  # a broken state persists; report it once per run
                message = prop.check(sandbox)
                if message is not None:
                    fired.add(prop.name)
                    if tracer is not None:
                        tracer.violation(prop.name, float(len(schedule)))
                    result.failures.append(
                        FuzzFailure(
                            run_index=i,
                            seed_key=seed_key,
                            violation=Violation(prop.name, message,
                                                tuple(schedule)),
                        )
                    )
                    if stop_at_first_violation:
                        result.schedules_run = local + 1
                        stopped = True
                        break
            if stopped:
                break
        if tracer is not None:
            for pid in sorted(factories):
                if sandbox.done(pid):
                    tracer.done(pid, float(len(schedule)))
            if trace:
                result.trace_chunks.append((i, tracer.take()))
        if stopped:
            return result
        result.schedules_run += 1
        if all(sandbox.done(pid) for pid in factories):
            result.completed_runs += 1
    return result


def _standard_campaigns(seed: int, schedules: int):
    """(name, factories, properties, kwargs, expect_violation) tuples.

    Imports live here to keep :mod:`repro.verify` free of an import cycle
    with the algorithm packages.
    """
    from ..algorithms import FischerLock, mutex_session
    from ..core.consensus import TimeResilientConsensus, labeled_decision
    from ..core.mutex import default_time_resilient_mutex
    from .properties import (
        AgreementProperty,
        MutualExclusionProperty,
        ValidityProperty,
    )

    fischer = FischerLock(delta=1.0)
    alg3 = default_time_resilient_mutex(4, delta=1.0)
    consensus = TimeResilientConsensus(delta=1.0, max_rounds=3)
    inputs = {pid: pid % 2 for pid in range(4)}
    return [
        (
            "fischer_n3",
            {pid: (lambda p: mutex_session(fischer, p, sessions=1,
                                           cs_duration=1.0))
             for pid in range(3)},
            [MutualExclusionProperty()],
            {"schedules": schedules, "max_ops": 40, "seed": seed},
            True,
        ),
        (
            "alg3_n4",
            {pid: (lambda p: mutex_session(alg3, p, sessions=1,
                                           cs_duration=1.0))
             for pid in range(4)},
            [MutualExclusionProperty()],
            {"schedules": schedules, "max_ops": 120, "seed": seed + 1},
            False,
        ),
        (
            "consensus_n4",
            {pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
             for pid in inputs},
            [AgreementProperty(), ValidityProperty(inputs)],
            {"schedules": schedules, "max_ops": 80, "seed": seed + 2},
            False,
        ),
    ]


def _campaign_shard(shard, payload) -> FuzzResult:
    """Shard worker: one standard campaign's slice of the run-index range.

    Module-level (the spawn pool pickles it by reference) and rebuilt
    from the campaign *name* — program factories close over live lock
    objects and cannot cross a process boundary.  Every seed inside
    :func:`fuzz` derives from the global run index via ``first_index``,
    so the returned result is exactly the sequential campaign's slice.
    """
    name, seed, schedules, trace = payload
    for cname, factories, properties, kwargs, _expect in (
            _standard_campaigns(seed, schedules)):
        if cname == name:
            kwargs = dict(kwargs)
            kwargs["schedules"] = shard.count
            return fuzz(factories, properties,
                        stop_at_first_violation=False,
                        first_index=shard.start, trace=trace, **kwargs)
    raise KeyError(f"unknown standard campaign {name!r}")


def _net_shard(shard, payload):
    """Shard worker for the networked substrate (see :mod:`repro.net.fuzz`)."""
    from ..net.fuzz import fuzz_quorum_register

    seed, trace = payload
    return fuzz_quorum_register(
        schedules=shard.count, seed=seed, first_index=shard.start, trace=trace
    )


def _failure_dict(failure: FuzzFailure) -> dict:
    return {
        "run_index": failure.run_index,
        "seed_key": failure.seed_key,
        "property": failure.violation.property_name,
        "message": failure.violation.message,
        "schedule": list(failure.violation.schedule),
    }


def _write_trace(path, chunks) -> None:
    """Flatten merged ``(index, records)`` chunks into one JSONL file.

    The chunks arrive already sorted by global run index (the merge
    functions guarantee it), so concatenation reproduces the sequential
    single-worker trace byte-for-byte.
    """
    from repro.obs.export import write_jsonl

    path.parent.mkdir(parents=True, exist_ok=True)
    records = [record for _index, chunk in chunks for record in chunk]
    count = write_jsonl(records, str(path))
    print(f"trace: {count} record(s) -> {path}")


def _run_registers(args, pool, timing: list):
    """The three standard campaigns, sharded; returns (exit code, summary)."""
    from ..parallel import make_shards, merge_fuzz_results, timing_rows

    summary = {
        "substrate": "registers",
        "seed": args.seed,
        "schedules": args.schedules,
        "campaigns": [],
    }
    failures = 0
    trace_chunks: list = []
    for name, _factories, _properties, kwargs, expect_violation in (
            _standard_campaigns(args.seed, args.schedules)):
        shards = make_shards(args.schedules, args.workers,
                             master_seed=kwargs["seed"])
        results = pool.run(_campaign_shard, shards,
                           (name, args.seed, args.schedules,
                            args.trace is not None))
        timing.extend(timing_rows(results, campaign=name))
        # Every shard collects EVERY violation, not just the first: a
        # nightly failure must be actionable from the log alone.
        result = merge_fuzz_results([r.value for r in results])
        # Campaigns run in a fixed order, runs within one in index order,
        # so the concatenated trace is deterministic across --workers.
        trace_chunks.extend(result.trace_chunks)
        if expect_violation:
            ok = not result.ok
            expectation = "violation expected"
        else:
            ok = result.ok
            expectation = "must stay safe"
        print(f"{'ok  ' if ok else 'FAIL'} {name:<14} ({expectation}): {result!r}")
        shown = result.failures[:5]
        if not ok:
            failures += 1
        elif expect_violation:
            shown = result.failures[:1]  # confirm the expected find is real
        if not ok or expect_violation:
            for failure in shown:
                print(f"     {failure.violation!r}")
                print(f"     {failure.replay_hint()}")
            remaining = len(result.failures) - len(shown)
            if remaining > 0:
                print(f"     ... and {remaining} more violation(s)")
        summary["campaigns"].append({
            "name": name,
            "expectation": expectation,
            "ok": ok,
            "schedules_run": result.schedules_run,
            "steps_taken": result.steps_taken,
            "completed_runs": result.completed_runs,
            "failures": [_failure_dict(f) for f in result.failures],
        })
    summary["ok"] = failures == 0
    if args.trace is not None:
        _write_trace(args.trace, trace_chunks)
    return (0 if failures == 0 else 1), summary


def _run_net(args, pool, timing: list):
    """The networked quorum-register campaign, sharded.

    Random client workloads over the ABD emulation under the rotating
    fault plans (crash-minority, delay spikes, healing partitions, loss,
    client crashes); fails when any schedule's history is not
    explainable as an atomic register.
    """
    from ..parallel import make_shards, merge_net_reports, timing_rows

    shards = make_shards(args.schedules, args.workers, master_seed=args.seed)
    results = pool.run(_net_shard, shards,
                       (args.seed, args.trace is not None))
    timing.extend(timing_rows(results, campaign="net_quorum"))
    report = merge_net_reports([r.value for r in results])
    if args.trace is not None:
        _write_trace(args.trace, report.trace_chunks)
    print(report.summary())
    for outcome in report.violations[:3]:
        print(f"     {outcome!r}")
    summary = {
        "substrate": "net",
        "seed": args.seed,
        "schedules": args.schedules,
        "ok": report.ok,
        "by_plan": [
            {"plan": kind, "schedules": ran, "violations": bad}
            for kind, ran, bad in report.by_plan()
        ],
        "violations": [
            {
                "index": o.index,
                "plan": o.plan,
                "operations": o.operations,
                "pending": o.pending,
                "status": o.status,
            }
            for o in report.violations
        ],
    }
    return (0 if report.ok else 1), summary


def _report_timing(args, timing: list) -> None:
    """Aggregate per-worker wall/throughput; optionally persist the rows.

    Telemetry only — wall times are machine-dependent, so none of this
    ever enters the deterministic ``--json`` summary that the CI
    ``parallel-determinism`` job byte-compares across worker counts.
    """
    import json

    if not timing:
        return
    per_worker: dict = {}
    for row in timing:
        agg = per_worker.setdefault(
            row["worker_pid"], {"shards": 0, "items": 0, "wall": 0.0}
        )
        agg["shards"] += 1
        agg["items"] += row["items"]
        agg["wall"] += row["wall_s"]
    print(f"workers: {args.workers}, shards: {len(timing)}, "
          f"schedules: {sum(row['items'] for row in timing)}")
    for pid, agg in sorted(per_worker.items()):
        rate = agg["items"] / agg["wall"] if agg["wall"] > 0 else 0.0
        print(f"  worker {pid}: {agg['shards']} shard(s), "
              f"{agg['items']} schedules, {agg['wall']:.2f}s busy, "
              f"{rate:.1f} schedules/s")
    if args.timing_json is not None:
        payload = {
            "workers": args.workers,
            "substrate": args.substrate,
            "seed": args.seed,
            "schedules": args.schedules,
            "rows": timing,
        }
        args.timing_json.parent.mkdir(parents=True, exist_ok=True)
        args.timing_json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI driver for the standard fuzzing campaigns (see module doc)."""
    import argparse
    import json
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz",
        description="Run the standard schedule-fuzzing campaigns.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (rotate it nightly)")
    parser.add_argument("--schedules", type=int, default=500,
                        help="random schedules per campaign (default: 500)")
    parser.add_argument("--substrate", choices=("registers", "net"),
                        default="registers",
                        help="fuzz shared-memory interleavings (default) or "
                             "the networked quorum-register emulation")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="shard each campaign's schedule range over N "
                             "processes; output is bit-identical to "
                             "--workers 1 on the same seed (default: 1)")
    parser.add_argument("--json", type=Path, default=None, metavar="FILE",
                        help="write the deterministic campaign summary here")
    parser.add_argument("--trace", type=Path, default=None, metavar="FILE",
                        help="write the campaigns' structured trace "
                             "(repro.obs JSONL) here; byte-identical for a "
                             "fixed seed regardless of --workers")
    parser.add_argument("--timing-json", type=Path, default=None,
                        metavar="FILE",
                        help="write per-shard wall/throughput telemetry here")
    args = parser.parse_args(argv)

    if args.schedules <= 0:
        parser.error(
            f"an empty campaign explores nothing: --schedules must be "
            f"positive, got {args.schedules}"
        )
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    from ..parallel import WorkerPool

    timing: list = []
    with WorkerPool(args.workers) as pool:
        if args.substrate == "net":
            exit_code, summary = _run_net(args, pool, timing)
        else:
            exit_code, summary = _run_registers(args, pool, timing)
    _report_timing(args, timing)
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
