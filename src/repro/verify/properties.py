"""Safety properties checked at every explored state.

A property inspects a :class:`~repro.verify.sandbox.Sandbox` and returns
``None`` (fine) or a violation message.  The properties below cover the
paper's safety claims:

* :class:`MutualExclusionProperty` — at most one process in its critical
  section (Algorithm 3's stabilization; Fischer's famous failure);
* :class:`AgreementProperty` — no conflicting decisions (Theorem 2.3);
* :class:`ValidityProperty` — decisions are proposals (Theorem 2.2);
* :class:`InvariantProperty` — arbitrary user predicates over memory.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from .sandbox import Sandbox

__all__ = [
    "SafetyProperty",
    "MutualExclusionProperty",
    "AgreementProperty",
    "ValidityProperty",
    "InvariantProperty",
]


class SafetyProperty:
    """Base class: override :meth:`check`."""

    name = "property"

    def check(self, sandbox: Sandbox) -> Optional[str]:
        raise NotImplementedError


class MutualExclusionProperty(SafetyProperty):
    """No two processes simultaneously inside their critical sections."""

    name = "mutual_exclusion"

    def check(self, sandbox: Sandbox) -> Optional[str]:
        if len(sandbox.in_cs) > 1:
            return f"processes {sorted(sandbox.in_cs)} are in the CS together"
        return None


class AgreementProperty(SafetyProperty):
    """All decisions (``DECIDED`` labels) carry the same value."""

    name = "agreement"

    def check(self, sandbox: Sandbox) -> Optional[str]:
        values = set(sandbox.decisions.values())
        if len(values) > 1:
            return f"conflicting decisions: {dict(sorted(sandbox.decisions.items()))}"
        return None


class ValidityProperty(SafetyProperty):
    """Every decision is one of the declared inputs."""

    name = "validity"

    def __init__(self, inputs: Dict[int, Any]) -> None:
        self.legal = set(inputs.values())
        self.inputs = dict(inputs)

    def check(self, sandbox: Sandbox) -> Optional[str]:
        for pid, value in sandbox.decisions.items():
            if value not in self.legal:
                return (
                    f"pid {pid} decided {value!r}, not among inputs "
                    f"{self.inputs!r}"
                )
        return None


class InvariantProperty(SafetyProperty):
    """A user predicate over the sandbox; message returned on failure."""

    def __init__(
        self,
        predicate: Callable[[Sandbox], bool],
        name: str = "invariant",
        message: str = "invariant violated",
    ) -> None:
        self.predicate = predicate
        self.name = name
        self.message = message

    def check(self, sandbox: Sandbox) -> Optional[str]:
        if not self.predicate(sandbox):
            return self.message
        return None
