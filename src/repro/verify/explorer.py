"""Explicit-state exploration of all interleavings.

The paper's safety theorems quantify over every execution, including ones
where timing failures strike at the worst instants.  Under the sandbox's
asynchronous semantics (delays provide nothing), *every interleaving of
shared steps* is exactly that quantifier — so exhaustively exploring
interleavings of small configurations machine-checks Theorems 2.2/2.3 and
Algorithm 3's mutual exclusion, and machine-*finds* Fischer's violation.

Exploration is depth-first over schedules (sequences of pids).  Python
generators cannot be forked, so each visited node re-executes the
programs from scratch along its schedule prefix — O(depth) per node —
with two prunings that keep small configurations tractable:

* **fingerprint memoization** — sound, see
  :meth:`repro.verify.sandbox.Sandbox.fingerprint`;
* a per-process operation bound (``max_ops``) — necessary because e.g.
  consensus under adversarial asynchrony legitimately runs forever (FLP);
  bounded exploration checks safety of every execution prefix up to the
  bound.

:func:`explore` returns statistics plus every violation found, each with
the exact schedule that produced it (replayable with
:func:`replay_schedule` for debugging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .properties import SafetyProperty
from .sandbox import ProgramFactory, Sandbox

__all__ = ["Violation", "ExplorationResult", "explore", "replay_schedule"]


@dataclass(frozen=True)
class Violation:
    """A safety violation and the schedule that produced it."""

    property_name: str
    message: str
    schedule: Tuple[int, ...]

    def __repr__(self) -> str:
        return (
            f"Violation({self.property_name}: {self.message}; "
            f"schedule={list(self.schedule)})"
        )


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive exploration."""

    states: int
    transitions: int
    max_depth: int
    violations: List[Violation] = field(default_factory=list)
    complete: bool = True  # False when state/violation limits stopped it
    terminal_states: int = 0  # states where no process could step

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"ExplorationResult({status}, states={self.states}, "
            f"transitions={self.transitions}, max_depth={self.max_depth}, "
            f"complete={self.complete})"
        )


def replay_schedule(
    factories: Dict[int, ProgramFactory], schedule: Sequence[int], max_ops: int
) -> Sandbox:
    """Re-execute a schedule (e.g. one attached to a violation)."""
    sandbox = Sandbox(factories, max_ops=max_ops)
    for pid in schedule:
        sandbox.step(pid)
    return sandbox


def explore(
    factories: Dict[int, ProgramFactory],
    properties: Sequence[SafetyProperty],
    max_ops: int = 60,
    max_states: int = 500_000,
    stop_at_first_violation: bool = True,
    on_terminal: Optional[Callable[[Sandbox], Optional[str]]] = None,
) -> ExplorationResult:
    """Exhaustively explore all interleavings of the given programs.

    Parameters
    ----------
    factories:
        pid -> factory producing a *fresh* program for that pid.
    properties:
        Safety properties checked at every reached state.
    max_ops:
        Per-process shared-step bound (processes park there).
    max_states:
        Hard cap on distinct states; exceeding it marks the result
        incomplete rather than raising.
    stop_at_first_violation:
        Stop early (with ``complete=False``) once any violation is found.
    on_terminal:
        Optional extra check invoked at quiescent states (all processes
        done or parked) — e.g. "all processes decided" for termination
        claims under bounded schedules.
    """
    result = ExplorationResult(states=0, transitions=0, max_depth=0)
    seen: Set[Hashable] = set()

    def visit(schedule: List[int]) -> bool:
        """DFS; returns False to abort the whole search."""
        sandbox = Sandbox(factories, max_ops=max_ops)
        for pid in schedule:
            sandbox.step(pid)
        fingerprint = sandbox.fingerprint()
        if fingerprint in seen:
            return True
        seen.add(fingerprint)
        result.states += 1
        result.max_depth = max(result.max_depth, len(schedule))
        if result.states > max_states:
            result.complete = False
            return False

        for prop in properties:
            message = prop.check(sandbox)
            if message is not None:
                result.violations.append(
                    Violation(prop.name, message, tuple(schedule))
                )
                if stop_at_first_violation:
                    result.complete = False
                    return False

        enabled = sandbox.enabled()
        if not enabled:
            result.terminal_states += 1
            if on_terminal is not None:
                message = on_terminal(sandbox)
                if message is not None:
                    result.violations.append(
                        Violation("terminal", message, tuple(schedule))
                    )
                    if stop_at_first_violation:
                        result.complete = False
                        return False
            return True
        for pid in enabled:
            result.transitions += 1
            if not visit(schedule + [pid]):
                return False
        return True

    import sys

    old_limit = sys.getrecursionlimit()
    # Depth can reach n_processes * max_ops; give the recursion room.
    sys.setrecursionlimit(max(old_limit, 10_000))
    try:
        visit([])
    finally:
        sys.setrecursionlimit(old_limit)
    return result
