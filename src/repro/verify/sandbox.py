"""Replayable asynchronous semantics for generator programs.

The model checker explores *arbitrary interleavings of shared-memory
steps* — the fully asynchronous semantics in which timing failures may
strike at any moment.  Accordingly:

* ``Read``/``Write`` are the scheduling points (one transition each);
* ``delay(d)`` is a no-op: under timing failures a delay provides no
  synchronization guarantee whatsoever, which is exactly what makes
  checking this semantics equivalent to checking "safety during timing
  failures";
* ``LocalWork`` with positive duration is a *pause point*: the process
  parks there for one transition.  This makes critical-section occupancy
  (which is bracketed by labels around a ``LocalWork`` body) an
  observable state — a zero-duration CS would otherwise be entered and
  left within a single advance and no interleaving could ever witness two
  processes inside.  Zero-duration local work is skipped;
* ``Label`` updates the observer state (critical-section occupancy,
  decisions) without consuming a transition.

Python generators cannot be forked, so exploration re-executes programs
from scratch along each schedule prefix (see
:mod:`repro.verify.explorer`).  A :class:`Sandbox` is one such execution:
feed it pids with :meth:`step` and inspect the resulting state.

Soundness of fingerprint memoization: a deterministic program's future
behaviour is a function of the sequence of values its reads returned, so
``(memory contents, per-process read histories, per-process liveness)``
fully determines the reachable futures.  :meth:`fingerprint` returns
exactly that.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Set, Tuple

from ..sim import ops as op_defs
from ..sim.ops import Delay, Label, LocalWork, Op, Read, ReadModifyWrite, Write
from ..sim.registers import Memory, _freeze

__all__ = ["Sandbox", "ProgramFactory", "op_kind", "op_register"]

# A factory producing a fresh program for a pid (replays need fresh
# generators every time).
ProgramFactory = Callable[[int], Any]

# How many consecutive non-shared operations a program may execute before
# the sandbox declares it livelocked (labels/delays in a tight loop).
_MAX_NONSHARED_RUN = 10_000

# Read-history marker recording a crash-recovery restart.  No real read
# value can equal it (``_freeze`` never produces this tuple), so restarted
# histories stay distinct from unrestarted ones — fingerprint soundness.
_RESTART_MARK = ("__restart__",)


def op_kind(op: Optional[Op]) -> str:
    """Trace-op name for a pending op (see :meth:`Sandbox.pending_op`).

    Shared vocabulary for the harnesses that trace logical-clock steps
    (:mod:`repro.chaos.runner`, :mod:`repro.verify.fuzz`): the returned
    string is the ``op`` field of a ``repro.obs`` op record.
    """
    if isinstance(op, Read):
        return "read"
    if isinstance(op, Write):
        return "write"
    if isinstance(op, ReadModifyWrite):
        return "rmw"
    if isinstance(op, LocalWork):
        return "local"
    return "step"


def op_register(op: Optional[Op]) -> Optional[str]:
    """Register name a pending op touches, or ``None`` (pause points)."""
    register = getattr(op, "register", None)
    return register.name if register is not None else None


class Sandbox:
    """One asynchronous execution, driven step by step."""

    def __init__(self, factories: Dict[int, ProgramFactory], max_ops: int) -> None:
        if max_ops < 1:
            raise ValueError(f"max_ops must be >= 1, got {max_ops}")
        self.memory = Memory()
        self.max_ops = max_ops
        self._programs: Dict[int, Any] = {}
        self._pending: Dict[int, Optional[Op]] = {}
        self._read_history: Dict[int, List[Hashable]] = {}
        self._op_count: Dict[int, int] = {}
        self._done: Dict[int, bool] = {}
        self._results: Dict[int, Any] = {}
        self.in_cs: Set[int] = set()
        self.decisions: Dict[int, Any] = {}
        self.labels_seen: List[Tuple[int, str, Any]] = []
        for pid, factory in factories.items():
            self._programs[pid] = factory(pid)
            self._pending[pid] = None
            self._read_history[pid] = []
            self._op_count[pid] = 0
            self._done[pid] = False
            self._advance(pid, None)

    # -- driving -----------------------------------------------------------

    def enabled(self) -> List[int]:
        """Pids that can take a shared step right now."""
        return sorted(
            pid
            for pid, op in self._pending.items()
            if op is not None and self._op_count[pid] < self.max_ops
        )

    def suspended(self) -> List[int]:
        """Pids stopped only by the per-process op bound."""
        return sorted(
            pid
            for pid, op in self._pending.items()
            if op is not None and self._op_count[pid] >= self.max_ops
        )

    def step(self, pid: int) -> None:
        """Execute ``pid``'s pending shared step (its linearization)."""
        op = self._pending.get(pid)
        if op is None:
            raise ValueError(f"pid {pid} has no pending step (done or unknown)")
        if self._op_count[pid] >= self.max_ops:
            raise ValueError(f"pid {pid} is suspended at the op bound")
        self._op_count[pid] += 1
        if isinstance(op, Read):
            value = self.memory.read(op.register)
            self._read_history[pid].append(_freeze(value))
            self._advance(pid, value)
        elif isinstance(op, Write):
            self.memory.write(op.register, op.value)
            self._advance(pid, None)
        elif isinstance(op, ReadModifyWrite):
            result = self.memory.rmw(op.register, op.transform)
            # An RMW's result re-enters the program like a read's value, so
            # it must join the read history for fingerprint soundness.
            self._read_history[pid].append(_freeze(result))
            self._advance(pid, result)
        elif isinstance(op, LocalWork):
            self._advance(pid, None)  # the pause ends; no memory effect
        else:  # pragma: no cover - _advance parks only Read/Write/LocalWork
            raise AssertionError(f"pending op must be steppable, got {op!r}")

    def _advance(self, pid: int, send_value: Any) -> None:
        """Run ``pid`` forward to its next shared op (or to completion)."""
        program = self._programs[pid]
        for _ in range(_MAX_NONSHARED_RUN):
            try:
                op = program.send(send_value)
            except StopIteration as stop:
                self._pending[pid] = None
                self._done[pid] = True
                self._results[pid] = stop.value
                return
            if isinstance(op, (Read, Write, ReadModifyWrite)):
                self._pending[pid] = op
                return
            if isinstance(op, LocalWork) and op.duration > 0:
                self._pending[pid] = op  # pause point (e.g. the CS body)
                return
            if isinstance(op, Label):
                self._observe_label(pid, op)
            elif isinstance(op, (Delay, LocalWork)):
                pass  # no guarantee under asynchrony: skip
            else:
                raise TypeError(f"pid {pid} yielded a non-operation: {op!r}")
            send_value = None
        raise RuntimeError(
            f"pid {pid} executed {_MAX_NONSHARED_RUN} consecutive non-shared "
            f"operations: livelock in local code"
        )

    def _observe_label(self, pid: int, label: Label) -> None:
        self.labels_seen.append((pid, label.kind, label.payload))
        if label.kind == op_defs.CS_ENTER:
            if pid in self.in_cs:
                raise RuntimeError(f"pid {pid} entered CS twice without exiting")
            self.in_cs.add(pid)
        elif label.kind == op_defs.CS_EXIT:
            self.in_cs.discard(pid)
        elif label.kind == op_defs.DECIDED:
            self.decisions.setdefault(pid, label.payload)

    def restart(self, pid: int, factory: ProgramFactory) -> None:
        """Crash-recovery restart: fresh program instance, persistent memory.

        Volatile state vanishes — the generator is rebuilt from scratch and
        the per-incarnation op budget resets.  Observer state follows crash
        semantics: the dead incarnation's critical-section occupancy ended
        with it (the *registers* may still claim the lock; whether the
        algorithm copes is exactly what a recover campaign measures), while
        decisions persist — a decision, once announced, stays announced.
        """
        if pid not in self._programs:
            raise ValueError(f"unknown pid {pid}")
        self._programs[pid].close()
        self._programs[pid] = factory(pid)
        self._pending[pid] = None
        self._done[pid] = False
        self._results.pop(pid, None)
        self._op_count[pid] = 0
        self.in_cs.discard(pid)
        # The restart must stay visible to the fingerprint: two states that
        # differ only in "pid was restarted" have different futures.
        self._read_history[pid].append(_RESTART_MARK)
        self._advance(pid, None)

    # -- inspection ----------------------------------------------------------

    def pending_op(self, pid: int) -> Optional[Op]:
        """The shared op ``pid`` would execute on its next :meth:`step`.

        Observation only (tracing harnesses record the op kind/register
        before stepping); ``None`` when the process is done or unknown.
        """
        return self._pending.get(pid)

    def done(self, pid: int) -> bool:
        return self._done[pid]

    def all_quiescent(self) -> bool:
        """True when no process can take another step (done or suspended)."""
        return not self.enabled()

    def result(self, pid: int) -> Any:
        return self._results.get(pid)

    @property
    def results(self) -> Dict[int, Any]:
        return dict(self._results)

    def op_count(self, pid: int) -> int:
        return self._op_count[pid]

    def fingerprint(self) -> Hashable:
        """A sound digest: equal fingerprints have identical futures.

        A deterministic program's position is a function of the values its
        reads returned *and* the number of transitions it consumed (pause
        points advance the position without touching memory, so the op
        count is not derivable from the read history alone).
        """
        procs = tuple(
            (
                pid,
                self._done[pid],
                self._op_count[pid],
                tuple(self._read_history[pid]),
            )
            for pid in sorted(self._programs)
        )
        return (self.memory.fingerprint(), procs)

    def __repr__(self) -> str:
        return (
            f"Sandbox(enabled={self.enabled()}, done="
            f"{sorted(p for p, d in self._done.items() if d)})"
        )
