"""Explicit-state model checking of the algorithms under full asynchrony.

Safety under arbitrary asynchrony *is* safety under timing failures —
this package machine-checks the paper's safety theorems on small
configurations and machine-finds Fischer's violation (experiments E6 and
E13).
"""

from .explorer import ExplorationResult, Violation, explore, replay_schedule
from .fuzz import FuzzFailure, FuzzResult, fuzz
from .properties import (
    AgreementProperty,
    InvariantProperty,
    MutualExclusionProperty,
    SafetyProperty,
    ValidityProperty,
)
from .sandbox import ProgramFactory, Sandbox
from .stabilization import (
    SelfStabilizationProperty,
    StabilizationReport,
    dg_ring_property,
)

__all__ = [
    "Sandbox",
    "ProgramFactory",
    "explore",
    "replay_schedule",
    "ExplorationResult",
    "Violation",
    "FuzzFailure",
    "FuzzResult",
    "fuzz",
    "SafetyProperty",
    "MutualExclusionProperty",
    "AgreementProperty",
    "ValidityProperty",
    "InvariantProperty",
    "SelfStabilizationProperty",
    "StabilizationReport",
    "dg_ring_property",
]
