"""Machine-checking self-stabilization: transient faults, finite recovery.

Dijkstra's definition, as revisited by Dubois–Guerraoui (arXiv:1302.2217):
an algorithm self-stabilizes when, started from an **arbitrary**
configuration of its shared state, every execution reaches a *legal*
configuration in finitely many steps (**convergence**) and legal
configurations only lead to legal configurations (**closure**).  Their
*speculative* refinement adds a fast path: under the common synchronous
schedule, convergence happens within a declared step bound.

:class:`SelfStabilizationProperty` checks all three claims on the
asynchronous sandbox semantics:

* **convergence** — seeded random corruptions of the shared state,
  driven by seeded random schedules, must each reach legality within a
  step budget;
* **closure** — after the budget the run must stay legal for a clean
  observation tail.  Strict per-*state* closure is deliberately not
  asserted: under read/write atomicity a process may complete a move
  from a privilege observation taken before convergence, transiently
  re-creating a second privilege — a configuration in this model
  includes in-flight reads, which memory-only legality cannot see.
  What stabilization guarantees (and what is checked) is that such
  residue drains: every illegal state precedes the budget;
* **speculation** — under the synchronous round-robin schedule the same
  corrupted starts must settle within the algorithm's declared bound.

Unlike the per-state :class:`~repro.verify.properties.SafetyProperty`
classes this is a property of the *algorithm*, so it is checked by
running executions, not by inspecting one state.  The companion
crash-recovery clause of this PR lives in the timed world:
:func:`repro.core.resilience.check_resilience` starts its convergence
clock at ``trace.last_restart_time`` when crashes recover.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .sandbox import ProgramFactory, Sandbox

__all__ = [
    "StabilizationReport",
    "SelfStabilizationProperty",
    "dg_ring_property",
]

# A corruptor scrambles the transient shared state in place.
Corruptor = Callable[[Sandbox, random.Random], None]
Legality = Callable[[Sandbox], bool]
Build = Callable[[], Dict[int, ProgramFactory]]


@dataclass
class StabilizationReport:
    """What the trials established (and any counterexample found)."""

    trials: int = 0
    converged: int = 0
    max_steps_to_legal: int = 0  # worst convergence time observed
    speculative_trials: int = 0
    speculative_ok: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"StabilizationReport({status}, converged "
            f"{self.converged}/{self.trials}, worst {self.max_steps_to_legal} "
            f"step(s), speculative {self.speculative_ok}/"
            f"{self.speculative_trials})"
        )


class SelfStabilizationProperty:
    """Convergence + closure + speculation, checked by seeded execution.

    Parameters
    ----------
    build:
        Returns fresh per-pid program factories (generators cannot be
        rewound).  Programs should run indefinitely — the sandbox's op
        bound is the horizon — so convergence is observed *during* the
        run, not inferred from termination.
    corrupt:
        Scrambles the shared state in place from an RNG: the "arbitrary
        configuration" sampler.
    legal:
        The legality predicate over sandbox state.
    speculative_bound:
        Declared convergence bound (in shared steps) under the
        synchronous round-robin schedule.
    max_ops:
        Per-process op budget per trial; the asynchronous convergence
        budget is the total step count this allows.
    tail:
        Observation window run *past* each budget: every state inside it
        must be legal, or the trial records a violation.  Without a tail
        "converged at the last step" would be vacuous.
    """

    name = "self_stabilization"

    def __init__(
        self,
        build: Build,
        corrupt: Corruptor,
        legal: Legality,
        speculative_bound: int,
        max_ops: int = 400,
        tail: int = 100,
    ) -> None:
        if speculative_bound < 1:
            raise ValueError(
                f"speculative_bound must be >= 1, got {speculative_bound}"
            )
        if tail < 1:
            raise ValueError(f"tail must be >= 1, got {tail}")
        self.build = build
        self.corrupt = corrupt
        self.legal = legal
        self.speculative_bound = speculative_bound
        self.max_ops = max_ops
        self.tail = tail

    # -- one trial -----------------------------------------------------------

    def _run_trial(
        self,
        rng: random.Random,
        schedule_rng: Optional[random.Random],
        budget: int,
        report: StabilizationReport,
        label: str,
    ) -> Optional[int]:
        """One corrupted start driven ``budget`` steps plus the tail.

        Returns the settle time — one past the last illegal state seen —
        or ``None`` with a violation recorded.  Settle time, not
        first-legality, is the honest measure here: stale in-flight
        privilege observations from the corrupted prefix can briefly
        re-create an illegal state after the first legal one (see the
        module docstring), and all of that residue must land before the
        budget.  ``schedule_rng=None`` selects the synchronous
        round-robin schedule (the speculation contract's schedule).
        """
        factories = self.build()
        sandbox = Sandbox(factories, max_ops=self.max_ops)
        self.corrupt(sandbox, rng)
        pids = sorted(factories)
        last_illegal = 0 if not self.legal(sandbox) else -1
        rr_index = 0
        for step in range(budget + self.tail):
            enabled = sandbox.enabled()
            if not enabled:
                break
            if schedule_rng is None:
                while pids[rr_index % len(pids)] not in enabled:
                    rr_index += 1
                pid = pids[rr_index % len(pids)]
                rr_index += 1
            else:
                pid = schedule_rng.choice(enabled)
            sandbox.step(pid)
            if not self.legal(sandbox):
                last_illegal = step + 1
        if last_illegal >= budget:
            report.violations.append(
                f"{label}: illegal state at step {last_illegal}, past the "
                f"{budget}-step budget"
            )
            return None
        return last_illegal + 1

    # -- the three clauses ---------------------------------------------------

    def check_convergence(
        self, seed: str = "stabilize", trials: int = 20
    ) -> StabilizationReport:
        """Random corrupted starts under random schedules must converge."""
        report = StabilizationReport()
        budget = self.max_ops  # generous asynchronous horizon
        for trial in range(trials):
            rng = random.Random(f"{seed}:corrupt:{trial}")
            schedule_rng = random.Random(f"{seed}:schedule:{trial}")
            report.trials += 1
            settled = self._run_trial(
                rng, schedule_rng, budget, report, f"trial {trial}"
            )
            if settled is not None:
                report.converged += 1
                report.max_steps_to_legal = max(
                    report.max_steps_to_legal, settled
                )
        return report

    def check_speculation(
        self, seed: str = "stabilize", trials: int = 20
    ) -> StabilizationReport:
        """Round-robin runs must converge within the declared bound."""
        report = StabilizationReport()
        for trial in range(trials):
            rng = random.Random(f"{seed}:corrupt:{trial}")
            report.speculative_trials += 1
            settled = self._run_trial(
                rng, None, self.speculative_bound, report,
                f"speculative trial {trial}",
            )
            if settled is not None:
                report.speculative_ok += 1
        return report

    def check(
        self, seed: str = "stabilize", trials: int = 20
    ) -> StabilizationReport:
        """Both clauses on the same corrupted starts; one merged report."""
        report = self.check_convergence(seed, trials)
        speculative = self.check_speculation(seed, trials)
        report.speculative_trials = speculative.speculative_trials
        report.speculative_ok = speculative.speculative_ok
        report.violations.extend(speculative.violations)
        return report


def dg_ring_property(
    n: int, k: Optional[int] = None, max_ops: int = 400
) -> SelfStabilizationProperty:
    """The property instance for Dijkstra's K-state ring (DG's exemplar).

    Programs circulate the privilege forever (privilege test + move, no
    critical section), corruption pokes every token cell with an
    arbitrary value — including junk outside ``[0, K)``, which the
    equality-only protocol must drain — and legality is the single-
    privilege predicate computed directly from memory.
    """
    from ..algorithms.dg_mutex import DGTokenMutex, speculative_bound

    lock = DGTokenMutex(n, k=k)

    def circulate(pid: int):
        while True:
            if (yield from lock.privileged(pid)):
                yield from lock.exit(pid)

    def build() -> Dict[int, ProgramFactory]:
        # Same persistent lock across trials: the corruptor overwrites
        # every cell anyway, so each trial's start is fully determined
        # by its own corruption draw.
        return {pid: (lambda p: circulate(p)) for pid in range(n)}

    def corrupt(sandbox: Sandbox, rng: random.Random) -> None:
        for cell in lock.cells:
            sandbox.memory.poke(cell, rng.randrange(0, 2 * lock.k))

    def privileges(sandbox: Sandbox) -> int:
        values = [sandbox.memory.peek(cell) for cell in lock.cells]
        count = 1 if values[0] == values[-1] else 0
        count += sum(
            1 for i in range(1, n) if values[i] != values[i - 1]
        )
        return count

    return SelfStabilizationProperty(
        build=build,
        corrupt=corrupt,
        legal=lambda sandbox: privileges(sandbox) == 1,
        speculative_bound=speculative_bound(n, k),
        max_ops=max_ops,
    )
