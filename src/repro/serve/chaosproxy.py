"""A fault-injecting proxy substrate: chaos against the live service.

:class:`FaultProxySubstrate` wraps any
:class:`~repro.serve.substrate.Substrate` and applies a
:class:`~repro.net.faults.NetFaultPlan` on each send — the same plan
vocabulary the sim transport consults, so a chaos campaign designed
against the simulated service drops onto the live one unchanged:

* **partitions / losses** — :meth:`NetFaultPlan.drops` decides the
  message's fate from the proxy's own seeded RNG (the inner substrate
  never sees it; its ``messages_dropped`` counter and a tracer ``drop``
  record do);
* **delay spikes** — :meth:`NetFaultPlan.delivery_delay` stretches a
  zero nominal delay into extra holding time.  On an asyncio event loop
  the forward is deferred with ``call_later``; without a running loop
  (e.g. a proxy wrapped around the sim transport for unit tests) the
  extra delay is added to ``now`` so the inner substrate's own delivery
  logic accounts for it.

Window times are expressed on the *driving clock*: run-relative seconds
for the live substrate, virtual time for a sim transport — ``now`` is
whatever the caller passes, exactly as everywhere else.

Determinism caveat, stated rather than hidden: on the live substrate the
*decisions* are seeded and reproducible, but wall-clock arrival of sends
inside a window is not — live chaos runs are for observing resilience
(zero violations, bounded p99 inflation), not for byte-identical replay.
That is what the sim substrate remains for.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, List, Optional, Tuple

from repro.net.faults import NetFaultPlan
from repro.net.transport import NetStats
from repro.obs.tracer import Tracer

from .substrate import Substrate

__all__ = ["FaultProxySubstrate"]


class FaultProxySubstrate:
    """Wrap ``inner`` and run every send through a fault plan.

    The proxy presents the full :class:`Substrate` surface by
    delegation: ``n``, ``bound``, ``stats``, ``tracer``, ``peers`` and
    ``collect`` are the inner substrate's own (one stats block, one
    trace — the proxy is a network condition, not a second network).
    """

    def __init__(
        self,
        inner: Substrate,
        plan: NetFaultPlan,
        seed: Any = 0,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = random.Random(seed)
        self.dropped = 0
        self.delayed = 0

    # -- delegated surface ---------------------------------------------------

    @property
    def n(self) -> int:
        return self.inner.n

    @property
    def bound(self) -> float:
        return self.inner.bound

    @property
    def stats(self) -> NetStats:
        return self.inner.stats

    @property
    def tracer(self) -> Optional[Tracer]:
        return self.inner.tracer

    @property
    def clock(self):
        # The live driver looks for a clock on its substrate; expose the
        # inner one when present so time stays single-sourced.
        return getattr(self.inner, "clock", None)

    def peers(self, pid: int) -> Tuple[int, ...]:
        return self.inner.peers(pid)

    def collect(self, dst: int, now: float) -> List[Tuple[int, Any]]:
        return self.inner.collect(dst, now)

    # -- the faulted send ----------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, now: float) -> None:
        if self.plan.drops(src, dst, now, self._rng):
            self.dropped += 1
            self.stats.messages_sent += 1
            self.stats.messages_dropped += 1
            if self.tracer is not None:
                self.tracer.msg_drop(src, dst, now)
            return
        extra = self.plan.delivery_delay(src, dst, now, 0.0)
        if extra <= 0:
            self.inner.send(src, dst, payload, now)
            return
        self.delayed += 1
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            loop = None
        if loop is not None:
            loop.call_later(extra, self.inner.send, src, dst, payload, now)
        else:
            # No event loop to defer on (sim inner): shift the send
            # instant so the inner delivery logic charges the spike.
            self.inner.send(src, dst, payload, now + extra)

    # -- live-only conveniences ---------------------------------------------

    async def wait_for_message(self, dst: int, timeout: float) -> bool:
        waiter = getattr(self.inner, "wait_for_message", None)
        if waiter is None:
            await asyncio.sleep(timeout)
            return False
        return await waiter(dst, timeout)

    def __repr__(self) -> str:
        return (
            f"FaultProxySubstrate({self.inner!r}, dropped={self.dropped}, "
            f"delayed={self.delayed})"
        )
