"""The live driver: run generator programs against real time and sockets.

Everything in this repo that computes — Algorithm 3's doorway, the ABD
quorum phases, the replica service loop — is a Python generator yielding
:mod:`repro.sim.ops` operations.  On the sim substrates those ops are
interpreted by the discrete-event engines; :class:`AsyncioDriver`
interprets the *same generators* against a live
:class:`~repro.serve.substrate.Substrate`:

* ``Send``/``Broadcast`` — synchronous substrate sends (real socket
  writes on the asyncio substrate), followed by a zero-sleep so the
  event loop stays fair;
* ``Recv`` — a non-blocking ``collect``, the same poll-don't-block
  contract the net engine gives;
* ``Delay(d)`` — ``asyncio.sleep(d · time_scale)``.  A delay is a *real*
  suspension of at least ``d`` scaled seconds: Algorithm 3's doorway
  delay must genuinely elapse, so the driver never shortcuts it.  As an
  efficiency valve only, a delay that immediately follows an *empty*
  recv may be interrupted early by message arrival
  (``eager_wakeup=True``, the default) — waking early from a polling
  nap is indistinguishable from having polled faster, and the engine's
  semantics promise nothing about poll granularity.  Doorway delays
  follow reads/writes, never an empty recv, so they are never shortened;
* ``LocalWork(d)`` — also a scaled sleep (think time is think time);
* ``Label`` — a tracer record, free;
* shared-memory ops (``Read``/``Write``/RMW) — rejected.  The live
  substrate has no shared memory; register programs must be wrapped by
  :meth:`repro.net.QuorumSystem.emulate_registers` first, exactly as on
  the net substrate.

This is the substrate-interface payoff: *no algorithm code changes*
between a simulated run and a live one — only the driver differs.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

from repro.obs.tracer import Tracer, active_tracer
from repro.sim import ops
from repro.sim.process import Program

from .substrate import Substrate

__all__ = ["AsyncioDriver"]


class AsyncioDriver:
    """Spawn and drive generator programs over a live substrate.

    Parameters
    ----------
    substrate:
        Any :class:`~repro.serve.substrate.Substrate`; the driver uses
        its clock when it is an :class:`AsyncioSubstrate` (or any object
        with a ``clock.now``), else a loop-relative clock of its own.
    time_scale:
        Real seconds per model time unit.  The sim substrates express
        delays in units of the delivery bound; live programs usually
        pass real-second durations directly (scale 1.0).
    eager_wakeup:
        Allow message arrival to cut short a delay that directly follows
        an empty recv (polling naps only; see module docstring).
    """

    def __init__(
        self,
        substrate: Substrate,
        time_scale: float = 1.0,
        tracer: Optional[Tracer] = None,
        eager_wakeup: bool = True,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.substrate = substrate
        self.time_scale = float(time_scale)
        self.tracer = tracer if tracer is not None else active_tracer()
        self.eager_wakeup = eager_wakeup
        self.tasks: Dict[int, "asyncio.Task"] = {}
        self.returns: Dict[int, Any] = {}
        self._clock = getattr(substrate, "clock", None)
        if self.tracer is not None and self._clock is not None:
            self.tracer.bind_clock(self._clock)

    def now(self) -> float:
        if self._clock is not None:
            return self._clock.now
        loop = asyncio.get_event_loop()
        return loop.time()

    # -- spawning ------------------------------------------------------------

    def spawn(self, program: Program, pid: int, name: Optional[str] = None) -> "asyncio.Task":
        """Create the asyncio task driving ``program`` as endpoint ``pid``."""
        if pid in self.tasks:
            raise ValueError(f"pid {pid} already spawned on this driver")
        task = asyncio.get_running_loop().create_task(
            self._drive(program, pid), name=name or f"p{pid}"
        )
        self.tasks[pid] = task
        return task

    async def wait(self) -> Dict[int, Any]:
        """Await every spawned program; return ``{pid: return value}``."""
        if self.tasks:
            await asyncio.gather(*self.tasks.values())
        return dict(self.returns)

    async def cancel(self) -> None:
        """Cancel every still-running program and swallow the cancellations."""
        for task in self.tasks.values():
            if not task.done():
                task.cancel()
        await asyncio.gather(*self.tasks.values(), return_exceptions=True)

    # -- the interpreter -----------------------------------------------------

    async def _drive(self, program: Program, pid: int) -> Any:
        substrate = self.substrate
        scale = self.time_scale
        tracer = self.tracer
        send_value: Any = None
        # True when the previous op was a Recv that came back empty —
        # the only state in which a following Delay is a polling nap.
        empty_poll = False
        while True:
            try:
                op = program.send(send_value)
            except StopIteration as stop:
                self.returns[pid] = stop.value
                if tracer is not None:
                    tracer.done(pid, self.now())
                return stop.value
            if isinstance(op, ops.Recv):
                send_value = substrate.collect(pid, self.now())
                empty_poll = not send_value
                await asyncio.sleep(0)
                continue
            if isinstance(op, ops.Broadcast):
                now = self.now()
                dests = op.dests if op.dests is not None else substrate.peers(pid)
                for dest in dests:
                    substrate.send(pid, dest, op.payload, now)
                send_value = None
                empty_poll = False
                await asyncio.sleep(0)
                continue
            if isinstance(op, ops.Send):
                substrate.send(pid, op.dest, op.payload, self.now())
                send_value = None
                empty_poll = False
                await asyncio.sleep(0)
                continue
            if isinstance(op, (ops.Delay, ops.LocalWork)):
                duration = op.duration * scale
                waiter = getattr(substrate, "wait_for_message", None)
                if (
                    self.eager_wakeup
                    and empty_poll
                    and isinstance(op, ops.Delay)
                    and waiter is not None
                ):
                    await waiter(pid, duration)
                elif duration > 0:
                    await asyncio.sleep(duration)
                else:
                    await asyncio.sleep(0)
                send_value = None
                empty_poll = False
                continue
            if isinstance(op, ops.Label):
                if tracer is not None:
                    tracer.label(pid, op.kind, self.now())
                send_value = None
                empty_poll = False
                continue
            if op.is_shared:
                raise TypeError(
                    f"the live driver has no shared memory — wrap register "
                    f"programs with QuorumSystem.emulate_registers (got {op!r})"
                )
            raise TypeError(f"live driver cannot interpret {op!r}")

    def __repr__(self) -> str:
        live = sum(1 for t in self.tasks.values() if not t.done())
        return f"AsyncioDriver({len(self.tasks)} programs, {live} running)"
