"""The substrate seam: one message-fabric interface, three backends.

Every networked layer in this repo ultimately speaks to four verbs —
how many endpoints exist, who a pid's peers are, ``send`` a payload at a
time, ``collect`` what has arrived by a time — plus a delivery ``bound``
(the networked ``Δ``), a :class:`~repro.net.transport.NetStats` counter
block, and an optional :class:`~repro.obs.tracer.Tracer`.  The
:class:`Substrate` protocol names exactly that surface.

Three implementations satisfy it:

* :class:`repro.net.Transport` — the deterministic in-simulation fabric
  (it predates the protocol and satisfies it structurally, which is the
  point: the quorum phases never needed more than this surface);
* :class:`AsyncioSubstrate` (here) — real asyncio TCP streams on
  loopback, one listening server per endpoint, used by
  :mod:`repro.serve` to run the very same generator programs against
  actual sockets and wall-clock time;
* :class:`repro.serve.chaosproxy.FaultProxySubstrate` — a proxy that
  wraps either of the above and applies a
  :class:`~repro.net.faults.NetFaultPlan` (drops, delay spikes,
  partitions) on the way through.

What the protocol does **not** promise: that the bound holds.  On the
sim substrate the bound is enforced by construction (faults aside); on
the live substrate it is an *assumption* about loopback — the paper's
Δ stance exactly — and :mod:`repro.obs.timeliness` mines the trace to
report whether reality honoured it.

The live substrate keeps the sim trace vocabulary: each delivered frame
emits a ``send`` record whose ``arrive - t`` is the *measured* wire
delay (sender stamps ``t`` into the frame, the receiver stamps arrival),
and each ``collect`` emits ``recv`` records — so the timeliness miner
and the metrics registry consume live traces unchanged.

Payload framing is :mod:`pickle` over a length prefix.  The substrate
only ever listens on the loopback interface and carries this process's
own traffic between its own endpoints; frames are trusted by design and
never cross a machine boundary.
"""

from __future__ import annotations

import asyncio
import itertools
import pickle
import struct
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

try:  # pragma: no cover - version guard, exercised implicitly
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 has no Protocol
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls

from repro.net.transport import NetStats
from repro.obs.tracer import Tracer, active_tracer

__all__ = ["Substrate", "AsyncioSubstrate", "SubstrateClock"]

# Frame layout: 4-byte big-endian payload length, then the header tuple
# (src pid, sequence number, send instant) and the payload, pickled
# together.  One connection carries one (src, dst) direction.
_LEN = struct.Struct("!I")


@runtime_checkable
class Substrate(Protocol):
    """The minimal message-fabric surface the quorum emulation needs.

    Implementations carry four data members —

    * ``n`` — endpoint count (pids ``0..n-1``);
    * ``bound`` — the per-link delivery bound, the substrate's ``Δ``;
    * ``stats`` — a :class:`~repro.net.transport.NetStats` block;
    * ``tracer`` — a :class:`~repro.obs.tracer.Tracer` or ``None``;

    — and three methods.  ``send``/``collect`` take ``now`` from the
    caller because time is *owned by the driver*: the discrete-event
    engine passes its virtual clock, the asyncio driver passes the run's
    wall clock.  A substrate never advances time on its own.
    """

    n: int
    bound: float
    stats: NetStats
    tracer: Optional[Tracer]

    def peers(self, pid: int) -> Tuple[int, ...]:
        """Every endpoint except ``pid`` (the broadcast audience)."""
        ...

    def send(self, src: int, dst: int, payload: Any, now: float) -> None:
        """Hand one message to the fabric at time ``now``."""
        ...

    def collect(self, dst: int, now: float) -> List[Tuple[int, Any]]:
        """Pop every ``(sender, payload)`` delivered to ``dst`` by ``now``."""
        ...


class SubstrateClock:
    """A run-relative wall clock with the engine clock's ``.now`` shape.

    :meth:`Tracer.bind_clock` expects an object exposing ``now`` as an
    attribute; the sim engines bind their virtual clock, the live layers
    bind one of these.  Time starts at zero when the substrate starts,
    so live traces line up with sim traces at the origin.
    """

    __slots__ = ("_origin", "_loop")

    def __init__(self) -> None:
        self._origin: Optional[float] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._origin = self._loop.time()

    @property
    def now(self) -> float:
        if self._origin is None or self._loop is None:
            return 0.0
        return self._loop.time() - self._origin


class AsyncioSubstrate:
    """Real loopback sockets behind the :class:`Substrate` surface.

    Each endpoint pid gets an asyncio TCP server on ``127.0.0.1`` (an
    OS-assigned port); :meth:`start` brings all servers up and
    pre-connects every ordered endpoint pair, so the synchronous
    :meth:`send` only ever writes to an established stream.  Incoming
    frames land in per-endpoint deques the moment the reader task parses
    them; :meth:`collect` drains the deque — the same poll-don't-block
    contract :class:`~repro.sim.ops.Recv` has on the sim substrate.

    Parameters
    ----------
    n:
        Endpoint count.  Connections are pre-opened for all ``n·(n-1)``
        ordered pairs; this substrate is meant for service topologies
        (keepers + replicas), not for one endpoint per end client.
    bound:
        The assumed delivery bound in *real seconds*.  Nothing enforces
        it — loopback is far faster — but every derived cost (poll
        granularity, ``Δ_net``) scales from it, and the timeliness miner
        judges the run against it.
    """

    def __init__(
        self,
        n: int,
        bound: float = 0.02,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"substrate needs at least one endpoint, got {n}")
        if bound <= 0:
            raise ValueError(f"delivery bound must be positive, got {bound}")
        self.n = n
        self.bound = float(bound)
        self.stats = NetStats()
        self.tracer = tracer if tracer is not None else active_tracer()
        self.clock = SubstrateClock()
        # Each entry is (src, payload, seq, arrive-instant).
        self._inboxes: List[Deque[Tuple[int, Any, int, float]]] = [
            deque() for _ in range(n)
        ]
        self._arrived: List[Optional[asyncio.Event]] = [None] * n
        self._servers: List[asyncio.AbstractServer] = []
        self._ports: List[Optional[int]] = [None] * n
        self._writers: dict = {}
        self._seq = itertools.count()
        self._started = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bring up one loopback server per endpoint and pre-connect pairs."""
        if self._started:
            raise RuntimeError("substrate already started")
        self._started = True
        self.clock.start()
        for pid in range(self.n):
            server = await asyncio.start_server(
                self._make_handler(pid), host="127.0.0.1", port=0
            )
            self._servers.append(server)
            self._ports[pid] = server.sockets[0].getsockname()[1]
            self._arrived[pid] = asyncio.Event()
        for src in range(self.n):
            for dst in range(self.n):
                if src == dst:
                    continue
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", self._ports[dst]
                )
                self._writers[(src, dst)] = writer

    async def close(self) -> None:
        """Tear down every stream and server (idempotent).

        Waits for each outgoing stream to actually close so every
        handler sees EOF and exits *before* the event loop goes away —
        otherwise loop shutdown cancels handlers mid-read and the
        streams machinery logs spurious ``CancelledError`` noise.
        """
        if self._closed:
            return
        self._closed = True
        for writer in self._writers.values():
            writer.close()
        for writer in self._writers.values():
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()

    def _make_handler(self, dst: int):
        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
            try:
                while True:
                    head = await reader.readexactly(_LEN.size)
                    (length,) = _LEN.unpack(head)
                    body = await reader.readexactly(length)
                    src, seq, sent_at, payload = pickle.loads(body)
                    arrive = self.clock.now
                    self._inboxes[dst].append((src, payload, seq, arrive))
                    event = self._arrived[dst]
                    if event is not None:
                        event.set()
                    if self.tracer is not None:
                        # The live "send" record is emitted at delivery,
                        # when arrive is known: arrive - t is the wire
                        # delay the timeliness miner judges against the
                        # bound, exactly as on the sim transport.
                        self.tracer.msg_send(seq, src, dst, sent_at, arrive)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                pass
            except asyncio.CancelledError:
                # Loop teardown cancelled a parked read; the connection
                # is dead either way and nobody awaits this leaf task.
                pass
            finally:
                writer.close()

        return handle

    # -- the Substrate surface ----------------------------------------------

    def peers(self, pid: int) -> Tuple[int, ...]:
        return tuple(p for p in range(self.n) if p != pid)

    def send(self, src: int, dst: int, payload: Any, now: float) -> None:
        if not 0 <= dst < self.n:
            raise ValueError(f"destination pid {dst} outside substrate 0..{self.n - 1}")
        if dst == src:
            raise ValueError(f"pid {src} sent a message to itself")
        writer = self._writers.get((src, dst))
        if writer is None:
            raise RuntimeError("substrate not started — call `await start()` first")
        self.stats.messages_sent += 1
        seq = next(self._seq)
        body = pickle.dumps((src, seq, now, payload), protocol=pickle.HIGHEST_PROTOCOL)
        writer.write(_LEN.pack(len(body)) + body)

    def collect(self, dst: int, now: float) -> List[Tuple[int, Any]]:
        inbox = self._inboxes[dst]
        tracer = self.tracer
        out: List[Tuple[int, Any]] = []
        while inbox:
            src, payload, seq, arrive = inbox.popleft()
            out.append((src, payload))
            if tracer is not None:
                tracer.msg_recv(seq, src, dst, now, arrive)
        event = self._arrived[dst]
        if event is not None:
            event.clear()
        self.stats.messages_delivered += len(out)
        return out

    # -- live-only conveniences ---------------------------------------------

    async def wait_for_message(self, dst: int, timeout: float) -> bool:
        """Park until something arrives for ``dst`` (or the timeout).

        Purely an efficiency valve for the live driver's polling loops;
        semantics are unchanged (a wake-up guarantees nothing beyond
        "collect may now return something").
        """
        if self._inboxes[dst]:
            return True
        event = self._arrived[dst]
        if event is None:
            raise RuntimeError("substrate not started — call `await start()` first")
        try:
            await asyncio.wait_for(event.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def __repr__(self) -> str:
        return f"AsyncioSubstrate(n={self.n}, bound={self.bound})"
