"""The lease service: Algorithm 3 + emulated registers, serving real clients.

Architecture — Chubby-shaped, paper-powered.  A lock service that took
one quorum round trip per client request would top out near
``1 / (quorum RTT)`` operations per second; instead the expensive
machinery runs at *shard* granularity and client requests are local:

* Each shard ``s`` owns a register namespace ``("serve", s)`` holding a
  :func:`~repro.core.mutex.default_time_resilient_mutex` (Algorithm 3:
  Fischer doorway around a fast starvation-free lock) and one ``hwm``
  register — the fencing-token high-water mark.  All of them live in the
  same ABD quorum emulation, so every shard survives a replica minority
  crashing and every timing failure leaves safety intact.
* A *keeper* process per shard reserves fencing tokens in blocks: lock
  the shard mutex, ``base = read(hwm)``, ``write(hwm, base + block)``,
  unlock, hand ``[base, base+block)`` to the local
  :class:`LeaseCore`.  Because reservations are serialized by Algorithm
  3 and ``hwm`` is an atomic register, blocks are disjoint and
  increasing — fencing tokens stay monotonic across keeper handoffs and
  service restarts *by construction*, and :class:`LeaseCore` checks the
  invariant anyway and records a violation if reality disagrees.
* Client ``acquire``/``release`` touch only the in-memory lease table:
  a grant is a dict insert stamped with the next token from the
  reserved block, a TTL, and the holder.  That is what lets one
  process serve 10⁵ open-loop clients while the quorum fabric idles.

The keeper's program is a plain generator over :mod:`repro.sim.ops` —
the *same* function runs under the discrete-event
:class:`~repro.net.engine.NetEngine` (see
:func:`repro.serve.workload.lease_churn_sim`) and under the live
:class:`~repro.serve.driver.AsyncioDriver`, which is the substrate
seam's whole argument.

Lease semantics, stated precisely:

* a lease on ``key`` is exclusive until released or expired; a grant
  over a still-valid lease returns ``None`` (busy);
* expiry is *lazy* (checked at the next grant on that key, plus a
  periodic sweep) — a stalled client's lease dies at its TTL without
  the client's cooperation;
* ``release`` requires the exact fencing token; a release with a stale
  token (expired and re-granted, or plain wrong) is *fenced*: refused
  and counted, never corrupting the current holder.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.mutex import default_time_resilient_mutex
from repro.net.faults import NetFaultPlan
from repro.net.quorum import QuorumSystem
from repro.obs.tracer import Tracer
from repro.sim import ops
from repro.sim.process import Program
from repro.sim.registers import Register, RegisterNamespace

from .chaosproxy import FaultProxySubstrate
from .driver import AsyncioDriver
from .substrate import AsyncioSubstrate

__all__ = [
    "Lease",
    "LeaseCore",
    "LeaseService",
    "TokensExhausted",
    "keeper_program",
    "shard_for",
    "verify_lease_events",
]


def shard_for(key: Hashable, shards: int) -> int:
    """Route ``key`` to a shard — stable across processes and restarts.

    Uses CRC-32 of the key's text, *not* :func:`hash`: Python string
    hashing is salted per process (``PYTHONHASHSEED``), and a lock
    service that re-routed keys on restart would hand two clients the
    same key on different shards.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    data = key if isinstance(key, bytes) else str(key).encode("utf-8")
    return zlib.crc32(data) % shards


class TokensExhausted(Exception):
    """The shard's reserved fencing-token block is empty.

    Not an error in the protocol — the keeper refills the pool through
    the quorum; callers wait for the refill (the service does this
    internally) rather than minting tokens locally, which would forfeit
    monotonicity.
    """


@dataclass
class Lease:
    """One granted lease: ``key`` held by ``holder`` until ``expires_at``."""

    key: Hashable
    holder: Optional[str]
    token: int
    granted_at: float
    expires_at: float

    def remaining(self, now: float) -> float:
        return self.expires_at - now


class LeaseCore:
    """The per-shard lease table: pure bookkeeping, injected clock.

    Deliberately free of asyncio so the same class backs the simulated
    churn workload (logical clock) and the live service (wall clock).
    All safety-relevant checks live here:

    * fencing tokens are only ever handed out from blocks delivered by
      :meth:`refill`; a block that *overlaps* already-reserved tokens is
      recorded in :attr:`violations` (it would mean the shard mutex or
      the ``hwm`` register atomicity failed);
    * a grant whose token is not strictly above the key's previous token
      is recorded as a violation (fencing monotonicity);
    * an expired lease is removed before any re-grant, and a release
      carrying a stale token is fenced off.

    When ``record_history`` is true every grant/release/expire lands in
    :attr:`events`, which :func:`verify_lease_events` audits
    independently — the checker trusts nothing this class believes.
    """

    def __init__(
        self,
        shard: int,
        clock: Callable[[], float],
        record_history: bool = True,
    ) -> None:
        self.shard = shard
        self._clock = clock
        self.leases: Dict[Hashable, Lease] = {}
        self.last_token: Dict[Hashable, int] = {}
        self._next_token = 0
        self._limit = 0
        self.granted = 0
        self.released = 0
        self.expired = 0
        self.busy = 0
        self.fenced = 0
        self.refills = 0
        self.stale_refills = 0
        self.violations: List[str] = []
        self.events: Optional[List[Tuple[str, Hashable, int, float, float]]] = (
            [] if record_history else None
        )

    # -- token pool ----------------------------------------------------------

    @property
    def tokens_available(self) -> int:
        return self._limit - self._next_token

    @property
    def tokens_reserved(self) -> int:
        """High-water mark of this core's reservations (== last block limit)."""
        return self._limit

    def refill(self, base: int, limit: int) -> None:
        """Accept the token block ``[base, limit)`` reserved by a keeper.

        Blocks may arrive out of order when keepers hand off (reserver A
        can be slow delivering after reserver B): a block entirely below
        the current limit is *stale* — superseded, dropped, its tokens
        wasted harmlessly as a gap.  A block that overlaps the reserved
        range is impossible under mutual exclusion + register atomicity,
        so it is recorded as a violation rather than silently merged.
        """
        if limit <= base:
            raise ValueError(f"empty token block [{base}, {limit})")
        if limit <= self._limit:
            self.stale_refills += 1
            return
        if base < self._limit:
            self.violations.append(
                f"shard {self.shard}: token block [{base}, {limit}) overlaps "
                f"already-reserved tokens below {self._limit} — mutex or "
                f"register atomicity failed"
            )
        self._next_token = max(self._next_token, base)
        self._limit = limit
        self.refills += 1

    # -- lease operations ----------------------------------------------------

    def grant(
        self,
        key: Hashable,
        ttl: float,
        holder: Optional[str] = None,
    ) -> Optional[Lease]:
        """Grant ``key`` for ``ttl`` seconds, or return ``None`` if held.

        Raises :class:`TokensExhausted` when the reserved block is empty
        — the caller must wait for a keeper refill, never mint locally.
        """
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        now = self._clock()
        current = self.leases.get(key)
        if current is not None:
            if current.expires_at > now:
                self.busy += 1
                return None
            self._expire(current, now)
        if self._next_token >= self._limit:
            raise TokensExhausted(
                f"shard {self.shard}: token pool empty at {self._limit}"
            )
        token = self._next_token
        self._next_token += 1
        last = self.last_token.get(key)
        if last is not None and token <= last:
            self.violations.append(
                f"shard {self.shard}: fencing token regressed on {key!r}: "
                f"granted {token} after {last}"
            )
        self.last_token[key] = token
        lease = Lease(key, holder, token, now, now + ttl)
        self.leases[key] = lease
        self.granted += 1
        if self.events is not None:
            self.events.append(("grant", key, token, now, lease.expires_at))
        return lease

    def release(self, key: Hashable, token: int) -> bool:
        """Release ``key`` if ``token`` is the *current* lease's token.

        A stale token — the lease expired (and was possibly re-granted),
        or the caller never held it — is fenced: counted, refused, and
        harmless to the actual holder.
        """
        now = self._clock()
        lease = self.leases.get(key)
        if lease is None or lease.token != token:
            self.fenced += 1
            return False
        if lease.expires_at <= now:
            self._expire(lease, now)
            self.fenced += 1
            return False
        del self.leases[key]
        self.released += 1
        if self.events is not None:
            self.events.append(("release", key, token, now, lease.expires_at))
        return True

    def sweep(self, now: Optional[float] = None) -> int:
        """Expire every lease past its TTL; return how many died.

        Grants already expire lazily per key; the sweep exists so leases
        on *quiet* keys do not linger in memory, and so waiters parked on
        a stalled client's key wake at the TTL, not at the next grant.
        """
        if now is None:
            now = self._clock()
        doomed = [lease for lease in self.leases.values() if lease.expires_at <= now]
        for lease in doomed:
            self._expire(lease, now)
        return len(doomed)

    def _expire(self, lease: Lease, now: float) -> None:
        del self.leases[lease.key]
        self.expired += 1
        if self.events is not None:
            self.events.append(
                ("expire", lease.key, lease.token, now, lease.expires_at)
            )

    def counters(self) -> Dict[str, int]:
        return {
            "granted": self.granted,
            "released": self.released,
            "expired": self.expired,
            "busy": self.busy,
            "fenced": self.fenced,
            "refills": self.refills,
            "stale_refills": self.stale_refills,
            "tokens_reserved": self._limit,
            "violations": len(self.violations),
        }

    def __repr__(self) -> str:
        return (
            f"LeaseCore(shard={self.shard}, active={len(self.leases)}, "
            f"tokens={self._next_token}/{self._limit})"
        )


def verify_lease_events(
    events: List[Tuple[str, Hashable, int, float, float]],
) -> List[str]:
    """Audit a lease event history; return every violation found.

    The independent checker behind the acceptance criterion's "zero
    mutual-exclusion/fencing violations": it replays the
    grant/release/expire stream and re-derives the two invariants from
    scratch —

    * **fencing monotonicity**: per key, grant tokens strictly increase;
    * **exclusion**: a key is never granted while a previous lease on it
      is still valid (not released, not expired, TTL not yet passed).
    """
    violations: List[str] = []
    last_token: Dict[Hashable, int] = {}
    active: Dict[Hashable, Tuple[int, float]] = {}
    for kind, key, token, at, expires_at in events:
        if kind == "grant":
            prev = last_token.get(key)
            if prev is not None and token <= prev:
                violations.append(
                    f"fencing token regressed on {key!r}: {token} after {prev}"
                )
            last_token[key] = token
            held = active.get(key)
            if held is not None and held[1] > at:
                violations.append(
                    f"overlapping leases on {key!r}: token {token} granted at "
                    f"{at:.6f} while token {held[0]} valid until {held[1]:.6f}"
                )
            active[key] = (token, expires_at)
        else:  # release / expire both end the key's current occupancy
            held = active.get(key)
            if held is not None and held[0] == token:
                del active[key]
    return violations


def keeper_program(
    lock: Any,
    hwm: Register,
    pid: int,
    shard: int,
    feed: Any,
    block: int,
    idle_poll: float,
) -> Program:
    """The shard keeper: reserve fencing-token blocks under Algorithm 3.

    A generator over :mod:`repro.sim.ops` — *identical* on the sim and
    live substrates; only the driver differs.  ``feed`` is the keeper's
    environment (duck-typed):

    * ``finished()`` — stop serving and retire;
    * ``wants_refill()`` — does the shard need more tokens?
    * ``deliver(base, limit)`` — hand a reserved block over (the live
      feed refills the shard's :class:`LeaseCore` and wakes waiters; the
      sim feed refills and immediately churns grants through the block).

    Two keepers of one shard may both decide to refill and serialize on
    the mutex — the loser reserves a block that may arrive stale at the
    core, which drops it (see :meth:`LeaseCore.refill`).  Correctness
    never depends on the demand check being mutual-exclusion-protected.

    The critical section is labelled with the standard ``CS_ENTER`` /
    ``CS_EXIT`` marks, so the mutual-exclusion spec checker audits
    keeper handoffs on the sim substrate exactly like any other mutex
    user (filter intervals per shard — distinct shards legitimately
    overlap).
    """
    refills = 0
    while not feed.finished():
        if not feed.wants_refill():
            yield ops.delay(idle_poll)
            continue
        yield from lock.entry(pid)
        yield ops.label(ops.CS_ENTER, shard)
        base = yield hwm.read()
        yield hwm.write(base + block)
        yield ops.label(ops.CS_EXIT, shard)
        yield from lock.exit(pid)
        feed.deliver(base, base + block)
        refills += 1
    return {"shard": shard, "pid": pid, "refills": refills}


class _LiveFeed:
    """The live keeper environment: demand-driven, wakes shard waiters."""

    def __init__(self, service: "LeaseService", state: "_ShardState") -> None:
        self.service = service
        self.state = state

    def finished(self) -> bool:
        return self.service._closing

    def wants_refill(self) -> bool:
        return self.state.core.tokens_available <= self.service.low_water

    def deliver(self, base: int, limit: int) -> None:
        self.state.core.refill(base, limit)
        self.service._notify(self.state)


class _ShardState:
    __slots__ = ("core", "lock", "hwm", "wake", "waiters")

    def __init__(self, core: LeaseCore, lock: Any, hwm: Register) -> None:
        self.core = core
        self.lock = lock
        self.hwm = hwm
        self.wake: Optional[asyncio.Event] = None
        self.waiters = 0


class LeaseService:
    """The asyncio front door: sharded leases over the live substrate.

    Construction wires the whole stack — ``AsyncioSubstrate`` (optionally
    wrapped in a :class:`~repro.serve.chaosproxy.FaultProxySubstrate`),
    a :class:`~repro.net.quorum.QuorumSystem` bound to it, one Algorithm
    3 mutex + ``hwm`` register + :class:`LeaseCore` per shard, and an
    :class:`~repro.serve.driver.AsyncioDriver` to run the keeper and
    replica generators.  Nothing runs until :meth:`start`.

    Parameters
    ----------
    shards:
        Lease namespaces served in parallel; keys route by
        :func:`shard_for`.
    keepers_per_shard:
        Keeper processes contending for each shard's mutex.  One is
        enough; more exercises Algorithm 3 handoffs under load.
    block / low_water:
        Fencing tokens reserved per quorum round trip, and the pool
        level that triggers a proactive refill (default ``block // 2``).
        Supply math worth doing out loud: one refill costs a mutex
        acquisition (including the Fischer doorway delay ≈ 6Δ) plus two
        quorum round trips — roughly a third of a second at the default
        20 ms bound — so a shard sustains about ``3 · block`` grants per
        second.  Size ``block`` for the offered load (the load CLI does
        this automatically); an undersized block does not break safety,
        it just queues acquirers on the refill.
    fault_plan:
        A :class:`~repro.net.faults.NetFaultPlan` injected between the
        service and the sockets — the chaos path.
    """

    def __init__(
        self,
        shards: int = 1,
        keepers_per_shard: int = 1,
        replicas: int = 3,
        bound: float = 0.02,
        seed: Any = 0,
        block: int = 1024,
        low_water: Optional[int] = None,
        default_ttl: float = 5.0,
        sweep_interval: float = 0.25,
        fault_plan: Optional[NetFaultPlan] = None,
        fault_seed: Any = 0,
        tracer: Optional[Tracer] = None,
        record_history: bool = True,
        time_scale: float = 1.0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if keepers_per_shard < 1:
            raise ValueError(
                f"need at least one keeper per shard, got {keepers_per_shard}"
            )
        if block < 1:
            raise ValueError(f"token block must be positive, got {block}")
        self.shards = shards
        self.keepers_per_shard = keepers_per_shard
        self.block = block
        self.low_water = max(1, block // 2) if low_water is None else low_water
        self.default_ttl = default_ttl
        self.sweep_interval = sweep_interval
        clients = shards * keepers_per_shard
        self.base = AsyncioSubstrate(clients + replicas, bound=bound, tracer=tracer)
        if fault_plan is not None:
            self.substrate: Any = FaultProxySubstrate(
                self.base, fault_plan, seed=fault_seed
            )
        else:
            self.substrate = self.base
        self.system = QuorumSystem(
            clients=clients, replicas=replicas, substrate=self.substrate, seed=seed
        )
        self.driver = AsyncioDriver(
            self.substrate, time_scale=time_scale, tracer=tracer
        )
        self.timeouts = 0
        self._closing = False
        self._started = False
        self._closed = False
        self._sweeper: Optional["asyncio.Task"] = None
        self.states: List[_ShardState] = []
        for shard in range(shards):
            ns = RegisterNamespace(("serve", shard))
            lock = default_time_resilient_mutex(
                clients, delta=self.system.delta, namespace=ns.child("lock")
            )
            hwm = ns.register("hwm", 0)
            core = LeaseCore(shard, clock=self._now, record_history=record_history)
            self.states.append(_ShardState(core, lock, hwm))

    def _now(self) -> float:
        return self.base.clock.now

    # -- lifecycle -----------------------------------------------------------

    async def start(self, warmup: bool = True, warmup_timeout: float = 30.0) -> None:
        """Open the sockets, spawn replicas and keepers, fill the pools.

        With ``warmup`` (default) this returns only once every shard has
        tokens to grant — the keepers' first mutex acquisition and
        quorum round trip are real work, and an un-warmed service would
        charge that startup cost to the first clients' latency.
        """
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        await self.base.start()
        for state in self.states:
            state.wake = asyncio.Event()
        for rpid in self.system.replica_pids:
            self.driver.spawn(
                self.system.replica(rpid), pid=rpid, name=f"replica{rpid}"
            )
        for shard, state in enumerate(self.states):
            for k in range(self.keepers_per_shard):
                pid = shard * self.keepers_per_shard + k
                program = keeper_program(
                    state.lock,
                    state.hwm,
                    pid,
                    shard,
                    _LiveFeed(self, state),
                    self.block,
                    self.system.poll,
                )
                self.driver.spawn(
                    self.system.emulate_registers(pid, program),
                    pid=pid,
                    name=f"keeper{shard}.{k}",
                )
        self._sweeper = asyncio.get_running_loop().create_task(self._sweep_loop())
        if warmup:
            deadline = self._now() + warmup_timeout
            while any(state.core.tokens_available == 0 for state in self.states):
                if self._now() > deadline:
                    raise RuntimeError(
                        "warmup timed out: keepers never filled the token pools"
                    )
                await asyncio.sleep(0.005)

    async def close(self, drain_timeout: float = 10.0) -> None:
        """Retire keepers (and with them the replicas), close the sockets.

        Keepers observe the closing flag at their next loop turn, return,
        and their register facades broadcast goodbyes; replicas retire
        once every client has said goodbye.  If the drain outlasts
        ``drain_timeout`` (a wedged program — not expected), the driver
        cancels outright rather than hang.
        """
        if not self._started or self._closed:
            self._closed = True
            return
        self._closed = True
        self._closing = True
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
        try:
            await asyncio.wait_for(self.driver.wait(), drain_timeout)
        except asyncio.TimeoutError:
            await self.driver.cancel()
        await self.base.close()

    async def _sweep_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.sweep_interval)
            for state in self.states:
                if state.core.sweep():
                    self._notify(state)

    def _notify(self, state: _ShardState) -> None:
        # Broadcast-and-replace: waiters hold a reference to the old
        # event, which fires exactly once; new waiters park on the fresh
        # one.  No wakeup is ever lost to a clear() race.  Skipping when
        # nobody waits keeps the uncontended release path allocation-free;
        # a waiter that registers a moment later re-checks within its
        # bounded pause anyway.
        if state.waiters == 0:
            return
        old = state.wake
        state.wake = asyncio.Event()
        if old is not None:
            old.set()

    # -- the client API ------------------------------------------------------

    async def acquire(
        self,
        key: Hashable,
        ttl: Optional[float] = None,
        timeout: Optional[float] = None,
        holder: Optional[str] = None,
    ) -> Optional[Lease]:
        """Acquire ``key``, waiting while it is held or tokens are out.

        Returns the :class:`Lease` (carry its ``token`` to every
        downstream resource — that is the fencing discipline), or
        ``None`` once ``timeout`` elapses without a grant.

        Waiters park on the shard's wake event, not on a poll loop: at
        10⁴+ arrivals per second a fixed retry cadence becomes a
        thundering herd that starves the event loop — including the
        keeper's own quorum round trips, which is exactly the death
        spiral (dry pool → herd → slower refill → drier pool).  The
        waiter registers *before* re-checking the grant, so a release or
        refill landing between the check and the park is never missed.
        """
        if ttl is None:
            ttl = self.default_ttl
        state = self.states[shard_for(key, self.shards)]
        deadline = None if timeout is None else self._now() + timeout
        while True:
            wake = state.wake
            assert wake is not None, "service not started"
            state.waiters += 1
            try:
                try:
                    lease = state.core.grant(key, ttl, holder)
                except TokensExhausted:
                    # Refill is in flight (or imminent: the keeper polls
                    # demand every few ms) — wake on pool refill.
                    wait_until = None
                else:
                    if lease is not None:
                        return lease
                    held = state.core.leases.get(key)
                    wait_until = held.expires_at if held is not None else None
                now = self._now()
                if deadline is not None and now >= deadline:
                    self.timeouts += 1
                    return None
                pause = None
                if wait_until is not None:
                    pause = wait_until - now
                if deadline is not None:
                    remaining = deadline - now
                    pause = remaining if pause is None else min(pause, remaining)
                try:
                    if pause is None:
                        await wake.wait()
                    else:
                        await asyncio.wait_for(wake.wait(), max(pause, 0.0005))
                except asyncio.TimeoutError:
                    pass
            finally:
                state.waiters -= 1

    def release(self, key: Hashable, token: int) -> bool:
        """Release ``key`` under ``token``; stale tokens are fenced off."""
        state = self.states[shard_for(key, self.shards)]
        ok = state.core.release(key, token)
        if ok:
            self._notify(state)
        return ok

    # -- observation ---------------------------------------------------------

    def verify(self) -> List[str]:
        """Every violation the cores recorded plus a full history audit."""
        found: List[str] = []
        for state in self.states:
            found.extend(state.core.violations)
            if state.core.events is not None:
                found.extend(verify_lease_events(state.core.events))
        return found

    def summary(self) -> Dict[str, Any]:
        cores = [state.core for state in self.states]
        totals: Dict[str, int] = {}
        for core in cores:
            for name, value in core.counters().items():
                totals[name] = totals.get(name, 0) + value
        return {
            "shards": self.shards,
            "keepers_per_shard": self.keepers_per_shard,
            "replicas": self.system.replicas,
            "bound": self.base.bound,
            "timeouts": self.timeouts,
            "counters": totals,
            "net": self.substrate.stats.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"LeaseService(shards={self.shards}, "
            f"keepers_per_shard={self.keepers_per_shard}, "
            f"replicas={self.system.replicas})"
        )
