"""CLI for the live lease service: ``python -m repro.serve <command>``.

Commands
--------

``demo``
    A narrated small run: start the service on loopback, push a burst of
    clients through it, print the lease ledger and the trace-mined
    metrics.  The live twin of ``examples/replicated_lock_service.py``.

``run``
    Start the service and let the keepers idle-serve for ``--duration``
    seconds (no generated load) — a lifecycle / warmup check.

``load``
    The acceptance workload: seeded open-loop Poisson load
    (``--clients`` sessions over ``--duration`` seconds) against a fresh
    service.  Prints a JSON document with the latency percentiles,
    throughput, lease counters, obs metrics registry and timeliness
    mining; exits non-zero if any mutual-exclusion / fencing violation
    was detected (always) or the p99 exceeds ``--max-p99`` (when given).

``sim``
    The identical keeper workload on the simulated substrate —
    deterministic counters, byte-equal across runs with one seed.

Results flow through :mod:`repro.obs`: the whole run executes inside a
``trace_scope``, and the report embeds ``compute_metrics`` over the live
trace records plus ``mine_timeliness`` over the measured wire delays.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, Optional

from repro.obs.metrics import compute_metrics
from repro.obs.timeliness import mine_timeliness
from repro.obs.tracer import Tracer, trace_scope

from .loadgen import LoadGenerator
from .service import LeaseService
from .workload import lease_churn_sim


def _service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--shards", type=int, default=4, help="lease namespaces")
    parser.add_argument(
        "--keepers", type=int, default=1, help="keeper processes per shard"
    )
    parser.add_argument("--replicas", type=int, default=3, help="register replicas")
    parser.add_argument(
        "--bound", type=float, default=0.02, help="assumed delivery bound (s)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--block",
        type=int,
        default=0,
        help="fencing tokens per refill (0 = size for the offered load)",
    )


def _auto_block(clients: int, duration: float, shards: int) -> int:
    # A shard refill costs ~0.35 s (doorway + two quorum round trips at
    # the default bound); keep a block worth ~0.7 s of this shard's
    # share of the offered rate so supply stays ahead of demand.
    rate = clients / duration
    return max(1024, int(0.7 * rate / shards) + 1)


async def _run_service(args: argparse.Namespace, tracer: Optional[Tracer]):
    block = args.block or _auto_block(
        getattr(args, "clients", 1000),
        getattr(args, "duration", 10.0),
        args.shards,
    )
    service = LeaseService(
        shards=args.shards,
        keepers_per_shard=args.keepers,
        replicas=args.replicas,
        bound=args.bound,
        seed=args.seed,
        block=block,
        tracer=tracer,
    )
    await service.start()
    return service


def _obs_report(tracer: Tracer, bound: float) -> Dict[str, Any]:
    records = tracer.take()
    return {
        "metrics": compute_metrics(records),
        "timeliness": mine_timeliness(records, substrate="net", delta=bound),
    }


def _emit(document: Dict[str, Any], path: Optional[str]) -> None:
    text = json.dumps(document, indent=2, sort_keys=True, default=str)
    print(text)
    if path:
        with open(path, "w") as handle:
            handle.write(text + "\n")


def _finish(document: Dict[str, Any], args: argparse.Namespace) -> int:
    _emit(document, getattr(args, "json", None))
    violations = document.get("violations", [])
    if violations:
        print(f"FAIL: {len(violations)} safety violations", file=sys.stderr)
        return 1
    max_p99 = getattr(args, "max_p99", None)
    p99 = document.get("load", {}).get("latency", {}).get("p99")
    if max_p99 is not None and p99 is not None and p99 > max_p99:
        print(f"FAIL: p99 {p99:.4f}s exceeds ceiling {max_p99}s", file=sys.stderr)
        return 1
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    tracer = Tracer()

    async def body() -> Dict[str, Any]:
        service = await _run_service(args, tracer)
        generator = LoadGenerator(
            service,
            clients=args.clients,
            duration=args.duration,
            seed=args.seed,
            keyspace=args.keyspace,
            ttl=args.ttl,
            hold=args.hold,
            timeout=args.timeout,
            workers=args.workers,
            max_inflight=args.max_inflight,
        )
        report = await generator.run()
        await service.close()
        return {
            "command": "load",
            "load": report,
            "service": service.summary(),
            "violations": service.verify(),
        }

    with trace_scope(tracer):
        document = asyncio.run(body())
    document["obs"] = _obs_report(tracer, args.bound)
    if args.baseline:
        latency = document["load"]["latency"]
        baseline = {
            "clients": args.clients,
            "duration": args.duration,
            "seed": args.seed,
            "granted": document["load"]["granted"],
            "throughput": document["load"]["throughput"],
            "p50": latency["p50"],
            "p95": latency["p95"],
            "p99": latency["p99"],
        }
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return _finish(document, args)


def cmd_run(args: argparse.Namespace) -> int:
    tracer = Tracer()

    async def body() -> Dict[str, Any]:
        service = await _run_service(args, tracer)
        await asyncio.sleep(args.duration)
        await service.close()
        return {
            "command": "run",
            "service": service.summary(),
            "violations": service.verify(),
        }

    with trace_scope(tracer):
        document = asyncio.run(body())
    document["obs"] = _obs_report(tracer, args.bound)
    return _finish(document, args)


def cmd_demo(args: argparse.Namespace) -> int:
    print("repro.serve demo — Algorithm 3 + ABD registers on live loopback")
    print(f"  {args.shards} shards x {args.keepers} keeper(s), "
          f"{args.replicas} replicas, bound {args.bound}s")
    tracer = Tracer()

    async def body() -> Dict[str, Any]:
        service = await _run_service(args, tracer)
        print("  service warm: token pools filled through the quorum")
        generator = LoadGenerator(
            service,
            clients=args.clients,
            duration=args.duration,
            seed=args.seed,
            keyspace=64,
        )
        report = await generator.run()
        await service.close()
        return {"load": report, "service": service.summary(),
                "violations": service.verify()}

    with trace_scope(tracer):
        document = asyncio.run(body())
    load = document["load"]
    latency = load["latency"]

    def fmt(value: Optional[float]) -> str:
        return "-" if value is None else f"{1000 * value:.1f}ms"

    print(f"  sessions: {load['granted']} granted, {load['timeouts']} timed out, "
          f"{load['released']} released")
    print(f"  latency: p50 {fmt(latency['p50'])}  p95 {fmt(latency['p95'])}  "
          f"p99 {fmt(latency['p99'])}")
    print(f"  throughput: {load['throughput']:.0f} leases/s")
    counters = document["service"]["counters"]
    print(f"  fencing tokens reserved: {counters['tokens_reserved']} "
          f"across {counters['refills']} quorum refills")
    violations = document["violations"]
    print(f"  safety violations: {len(violations)}")
    obs = _obs_report(tracer, args.bound)
    timely = obs["timeliness"].get("links", {})
    measured = [v["max_delay"] for v in timely.values() if v.get("max_delay")]
    if measured:
        print(f"  measured wire delay max: {1000 * max(measured):.2f}ms "
              f"(assumed bound {1000 * args.bound:.0f}ms)")
    return 1 if violations else 0


def cmd_sim(args: argparse.Namespace) -> int:
    counters = lease_churn_sim(
        shards=args.shards,
        keepers_per_shard=args.keepers,
        replicas=args.replicas,
        seed=args.seed,
        cycles=args.cycles,
        grants_per_cycle=args.grants,
    )
    _emit({"command": "sim", "counters": counters}, getattr(args, "json", None))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="timing-resilient replicated lock/lease service",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    load = sub.add_parser("load", help="seeded open-loop load run (the benchmark)")
    _service_args(load)
    load.add_argument("--clients", type=int, default=10_000)
    load.add_argument("--duration", type=float, default=10.0)
    load.add_argument("--keyspace", type=int, default=1024)
    load.add_argument("--ttl", type=float, default=None, help="lease ttl (s)")
    load.add_argument("--hold", type=float, default=0.0, help="hold time (s)")
    load.add_argument("--timeout", type=float, default=2.0, help="acquire timeout")
    load.add_argument("--workers", type=int, default=1, help="arrival pump shards")
    load.add_argument("--max-inflight", type=int, default=50_000)
    load.add_argument("--json", default=None, help="also write the report here")
    load.add_argument("--baseline", default=None, help="write percentile baseline")
    load.add_argument(
        "--max-p99", type=float, default=None, help="fail if p99 exceeds this (s)"
    )
    load.set_defaults(fn=cmd_load)

    run = sub.add_parser("run", help="start the service, idle, shut down")
    _service_args(run)
    run.add_argument("--duration", type=float, default=5.0)
    run.add_argument("--json", default=None)
    run.set_defaults(fn=cmd_run)

    demo = sub.add_parser("demo", help="narrated small live run")
    _service_args(demo)
    demo.add_argument("--clients", type=int, default=500)
    demo.add_argument("--duration", type=float, default=2.0)
    demo.set_defaults(fn=cmd_demo)

    sim = sub.add_parser("sim", help="same keeper workload, sim substrate")
    _service_args(sim)
    sim.add_argument("--cycles", type=int, default=2)
    sim.add_argument("--grants", type=int, default=4)
    sim.add_argument("--json", default=None)
    sim.set_defaults(fn=cmd_sim)
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
