"""repro.serve — the paper's algorithms as a live asyncio lease service.

The subsystem that takes Algorithm 3 (timing-failure-resilient mutual
exclusion) and the ABD quorum register emulation out of the simulator
and runs them against real sockets, real time, and open-loop client
load — without changing a line of algorithm code:

* :mod:`~repro.serve.substrate` — the :class:`Substrate` protocol (the
  message-fabric surface `repro.net.Transport` already satisfies) and
  :class:`AsyncioSubstrate`, the loopback-TCP implementation;
* :mod:`~repro.serve.driver` — :class:`AsyncioDriver`, the interpreter
  that drives the repo's generator programs over a live substrate;
* :mod:`~repro.serve.service` — :class:`LeaseService`: TTL leases with
  fencing tokens, minted in blocks under Algorithm 3 per shard;
* :mod:`~repro.serve.workload` — the same keeper workload under the
  deterministic sim engine (the bench scenario body);
* :mod:`~repro.serve.loadgen` — seeded open-loop Poisson load;
* :mod:`~repro.serve.chaosproxy` — :class:`FaultProxySubstrate`, the
  chaos seam for the live service.

CLI: ``python -m repro.serve demo|load|sim`` (see ``--help``).
"""

from .chaosproxy import FaultProxySubstrate
from .driver import AsyncioDriver
from .loadgen import LoadGenerator, percentile
from .service import (
    Lease,
    LeaseCore,
    LeaseService,
    TokensExhausted,
    keeper_program,
    shard_for,
    verify_lease_events,
)
from .substrate import AsyncioSubstrate, Substrate, SubstrateClock
from .workload import ChurnFeed, lease_churn_sim

__all__ = [
    "AsyncioDriver",
    "AsyncioSubstrate",
    "ChurnFeed",
    "FaultProxySubstrate",
    "Lease",
    "LeaseCore",
    "LeaseService",
    "LoadGenerator",
    "Substrate",
    "SubstrateClock",
    "TokensExhausted",
    "keeper_program",
    "lease_churn_sim",
    "percentile",
    "shard_for",
    "verify_lease_events",
]
