"""The lease workload on the *sim* substrate — same keeper, virtual time.

:func:`lease_churn_sim` runs the exact
:func:`~repro.serve.service.keeper_program` generator that the live
service spawns, but under the deterministic
:class:`~repro.net.engine.NetEngine` via
:meth:`~repro.net.quorum.QuorumSystem.run` — the acceptance criterion's
"identical lease workload on the sim substrate through the same
Substrate protocol with no algorithm-code changes", and the body behind
the ``serve/lease_churn`` bench scenario.

Because virtual time is discrete and seeded, every run with the same
parameters produces the same counters — so the function *asserts* its
own safety properties (per-shard keeper mutual exclusion from the trace,
zero fencing violations from the history audit) and returns plain
integer counters the bench runner can diff across repeats and commits.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Tuple

from repro.core.mutex import default_time_resilient_mutex
from repro.net.quorum import QuorumSystem
from repro.sim.registers import RegisterNamespace

from .service import LeaseCore, keeper_program, verify_lease_events

__all__ = ["ChurnFeed", "lease_churn_sim"]


class ChurnFeed:
    """Sim keeper environment: each block immediately backs a burst of
    grant/release pairs on the shard's shared :class:`LeaseCore`.

    One feed per keeper, one core per shard — two keepers of a shard
    interleave refills through the mutex, which is precisely the fencing
    handoff the history audit then checks.
    """

    def __init__(
        self,
        core: LeaseCore,
        keys: List[Hashable],
        cycles: int,
        grants_per_cycle: int,
    ) -> None:
        self.core = core
        self.keys = keys
        self.cycles = cycles
        self.grants_per_cycle = grants_per_cycle
        self.done = 0

    def finished(self) -> bool:
        return self.done >= self.cycles

    def wants_refill(self) -> bool:
        return not self.finished()

    def deliver(self, base: int, limit: int) -> None:
        self.core.refill(base, limit)
        for i in range(self.grants_per_cycle):
            key = self.keys[i % len(self.keys)]
            lease = self.core.grant(key, ttl=math.inf)
            # Immediate release: with an infinite ttl and no concurrent
            # granter (deliver runs between engine steps, atomically),
            # the grant can only fail if the token pool is dry — and the
            # caller sizes blocks so it never is.
            assert lease is not None, f"unexpected busy grant on {key!r}"
            self.core.release(key, lease.token)
        self.done += 1


def _shard_cs_overlaps(trace: Any, shards: int, keepers_per_shard: int) -> int:
    """Count overlapping critical sections *within* each shard.

    Keepers of different shards hold different mutexes and legitimately
    overlap, so the global spec checker does not apply; this groups the
    trace's CS intervals by owning shard (pid // keepers_per_shard) and
    sweeps each group independently.
    """
    by_shard: Dict[int, List[Tuple[float, float]]] = {s: [] for s in range(shards)}
    for interval in trace.cs_intervals():
        shard = interval.pid // keepers_per_shard
        by_shard[shard].append((interval.enter, interval.exit))
    overlaps = 0
    for spans in by_shard.values():
        spans.sort()
        for (_, prev_exit), (nxt_enter, _) in zip(spans, spans[1:]):
            if nxt_enter < prev_exit:
                overlaps += 1
    return overlaps


def lease_churn_sim(
    shards: int = 2,
    keepers_per_shard: int = 2,
    replicas: int = 3,
    cycles: int = 2,
    grants_per_cycle: int = 4,
    keys_per_shard: int = 3,
    block: int = 0,
    bound: float = 1.0,
    seed: Any = 0,
    max_time: float = 20_000.0,
) -> Dict[str, int]:
    """Run the keeper churn on the sim substrate; return integer counters.

    ``block=0`` (the default) sizes token blocks so the pool can never
    run dry even in the worst reordering case where every block but the
    last is dropped as stale.

    Raises ``AssertionError`` if the run fails to complete, any keeper
    mutual exclusion is violated within a shard, or the fencing-token
    history audit finds a violation — a deterministic safety harness,
    not just a benchmark body.
    """
    clients = shards * keepers_per_shard
    if block <= 0:
        block = keepers_per_shard * cycles * grants_per_cycle
    system = QuorumSystem(
        clients=clients,
        replicas=replicas,
        bound=bound,
        seed=seed,
        max_time=max_time,
    )
    cores: List[LeaseCore] = []
    programs = []
    for shard in range(shards):
        ns = RegisterNamespace(("serve", shard))
        lock = default_time_resilient_mutex(
            clients, delta=system.delta, namespace=ns.child("lock")
        )
        hwm = ns.register("hwm", 0)
        core = LeaseCore(shard, clock=lambda: 0.0)
        cores.append(core)
        keys = [f"shard{shard}-key{i}" for i in range(keys_per_shard)]
        for k in range(keepers_per_shard):
            pid = shard * keepers_per_shard + k
            feed = ChurnFeed(core, keys, cycles, grants_per_cycle)
            programs.append(
                keeper_program(lock, hwm, pid, shard, feed, block, system.poll)
            )
    result = system.run(programs)
    assert result.completed, f"churn run did not complete: {result.status}"
    finished = [
        ret for pid, ret in result.returns.items() if pid < clients and ret is not None
    ]
    assert len(finished) == clients, (
        f"only {len(finished)}/{clients} keepers retired cleanly"
    )
    overlaps = _shard_cs_overlaps(result.trace, shards, keepers_per_shard)
    assert overlaps == 0, f"{overlaps} overlapping keeper critical sections"
    violations: List[str] = []
    for core in cores:
        violations.extend(core.violations)
        if core.events is not None:
            violations.extend(verify_lease_events(core.events))
    assert not violations, f"lease safety violations: {violations}"
    return {
        "granted": sum(core.granted for core in cores),
        "released": sum(core.released for core in cores),
        "refills": sum(core.refills for core in cores),
        "stale_refills": sum(core.stale_refills for core in cores),
        "tokens_reserved": sum(core.tokens_reserved for core in cores),
        "keeper_cs": len(result.trace.cs_intervals()),
        "lease_violations": len(violations),
    }
