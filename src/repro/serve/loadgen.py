"""Seeded open-loop load against the lease service.

Open-loop means arrivals come from a pre-drawn Poisson schedule and do
*not* wait for earlier requests to finish — the generator models 10⁵–10⁶
independent clients multiplexed onto asyncio tasks, so a slow service
accumulates queueing delay in the measured latency instead of quietly
throttling the offered load (the coordinated-omission trap closed-loop
generators fall into).

Determinism discipline, stated precisely: the *workload* is seeded and
exactly reproducible — the arrival schedule (``expovariate`` draws from
``random.Random(seed)``) and each session's key (CRC-32 of the session
index, never :func:`hash`) are identical across runs, workers, and
machines.  The *measurements* (latencies, grant/timeout split under
contention) are wall-clock facts of the run; safety properties are
audited by :meth:`~repro.serve.service.LeaseService.verify`, not by
expecting live timings to replay.

``workers`` splits the schedule into interleaved slices (worker ``w``
pumps sessions ``w::workers``) so the pump itself never bottlenecks on a
single coroutine at high arrival rates; the union of slices is the same
schedule regardless of worker count.
"""

from __future__ import annotations

import asyncio
import math
import random
import zlib
from typing import Any, Dict, List, Optional, Sequence

from .service import LeaseService

__all__ = ["LoadGenerator", "percentile"]


def percentile(sorted_values: Sequence[float], q: float) -> Optional[float]:
    """Exact nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return None
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class LoadGenerator:
    """Drive ``clients`` lease sessions through ``service`` in ``duration`` s.

    One session = acquire a key (seeded choice from ``keyspace``), hold
    it for ``hold`` seconds, release with the fencing token.  Latency is
    measured from the *scheduled* arrival instant to the grant, so pump
    lateness and queueing both count against the service — open-loop
    honesty.

    ``max_inflight`` bounds concurrently-alive session tasks; arrivals
    beyond the bound are *shed* (counted, not silently dropped) so a
    wedged service cannot balloon task memory without saying so.
    """

    def __init__(
        self,
        service: LeaseService,
        clients: int,
        duration: float,
        seed: int = 0,
        keyspace: int = 1024,
        ttl: Optional[float] = None,
        hold: float = 0.0,
        timeout: float = 2.0,
        workers: int = 1,
        max_inflight: int = 50_000,
    ) -> None:
        if clients < 1:
            raise ValueError(f"need at least one client, got {clients}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if keyspace < 1:
            raise ValueError(f"keyspace must be positive, got {keyspace}")
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.service = service
        self.clients = clients
        self.duration = float(duration)
        self.seed = seed
        self.keyspace = keyspace
        self.ttl = ttl
        self.hold = hold
        self.timeout = timeout
        self.workers = workers
        self.max_inflight = max_inflight
        # The entire arrival schedule is drawn up front: rate λ = N/D,
        # inter-arrival gaps ~ Exp(λ).  Reproducible by construction.
        rng = random.Random(seed)
        rate = clients / self.duration
        t = 0.0
        self.arrivals: List[float] = []
        for _ in range(clients):
            t += rng.expovariate(rate)
            self.arrivals.append(t)
        self.granted = 0
        self.timeouts = 0
        self.shed = 0
        self.released = 0
        self.release_fenced = 0
        self.errors = 0
        self.latencies: List[float] = []
        self._inflight = 0
        self._tasks: set = set()
        self._origin = 0.0

    def key_for(self, index: int) -> str:
        """The session's key — CRC-routed, identical on every run."""
        slot = zlib.crc32(f"{self.seed}:{index}".encode("ascii")) % self.keyspace
        return f"key{slot}"

    def _now(self) -> float:
        return self.service.base.clock.now

    # -- sessions ------------------------------------------------------------

    async def _session(self, index: int, scheduled: float) -> None:
        try:
            key = self.key_for(index)
            lease = await self.service.acquire(
                key, ttl=self.ttl, timeout=self.timeout, holder=f"c{index}"
            )
            if lease is None:
                self.timeouts += 1
                return
            self.latencies.append(self._now() - scheduled)
            self.granted += 1
            if self.hold > 0:
                await asyncio.sleep(self.hold)
            if self.service.release(key, lease.token):
                self.released += 1
            else:
                self.release_fenced += 1
        except Exception:
            self.errors += 1
            raise

    def _spawn(self, index: int, scheduled: float) -> None:
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._session(index, scheduled))
        self._tasks.add(task)
        self._inflight += 1
        task.add_done_callback(self._retire)

    def _retire(self, task: "asyncio.Task") -> None:
        self._tasks.discard(task)
        self._inflight -= 1

    async def _pump(self, worker: int) -> None:
        for index in range(worker, self.clients, self.workers):
            target = self._origin + self.arrivals[index]
            delay = target - self._now()
            if delay > 0:
                await asyncio.sleep(delay)
            if self._inflight >= self.max_inflight:
                self.shed += 1
                continue
            self._spawn(index, target)
        # Yield so freshly-spawned tail sessions start before the drain.
        await asyncio.sleep(0)

    # -- the run -------------------------------------------------------------

    async def run(self) -> Dict[str, Any]:
        """Pump the schedule, drain the tail, return the report dict."""
        self._origin = self._now()
        pumps = [
            asyncio.get_running_loop().create_task(self._pump(w))
            for w in range(self.workers)
        ]
        await asyncio.gather(*pumps)
        drain = self.timeout + self.hold + 1.0
        deadline = self._now() + drain
        while self._tasks and self._now() < deadline:
            await asyncio.sleep(0.02)
        cancelled = 0
        if self._tasks:
            stragglers = list(self._tasks)
            for task in stragglers:
                task.cancel()
            await asyncio.gather(*stragglers, return_exceptions=True)
            cancelled = len(stragglers)
        elapsed = self._now() - self._origin
        return self.report(elapsed, cancelled)

    def report(self, elapsed: float, cancelled: int = 0) -> Dict[str, Any]:
        lat = sorted(self.latencies)
        return {
            "clients": self.clients,
            "duration": self.duration,
            "seed": self.seed,
            "keyspace": self.keyspace,
            "workers": self.workers,
            "elapsed": elapsed,
            "granted": self.granted,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "cancelled": cancelled,
            "released": self.released,
            "release_fenced": self.release_fenced,
            "errors": self.errors,
            "throughput": (self.granted / elapsed) if elapsed > 0 else 0.0,
            "latency": {
                "count": len(lat),
                "mean": (sum(lat) / len(lat)) if lat else None,
                "p50": percentile(lat, 50),
                "p95": percentile(lat, 95),
                "p99": percentile(lat, 99),
                "max": lat[-1] if lat else None,
            },
        }
