"""Workload generators for the experiments and examples.

Everything is seeded and pure-data: a workload describes inputs, arrival
times, contention profiles and failure mixes; the experiment drivers turn
them into engine runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..sim.failures import TimingFailureWindow, failure_window
from ..sim.timing import (
    ConstantTiming,
    FailureWindowTiming,
    TimingModel,
    UniformTiming,
)

__all__ = [
    "consensus_inputs",
    "arrival_times",
    "MutexWorkload",
    "failure_mix",
    "timing_for",
]


def consensus_inputs(n: int, pattern: str = "split", seed: int = 0) -> List[int]:
    """Binary proposal vectors.

    Patterns: ``unanimous0``, ``unanimous1``, ``split`` (alternating — the
    maximally conflicted deterministic vector), ``random``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if pattern == "unanimous0":
        return [0] * n
    if pattern == "unanimous1":
        return [1] * n
    if pattern == "split":
        return [i % 2 for i in range(n)]
    if pattern == "random":
        rng = random.Random(seed)
        return [rng.randint(0, 1) for _ in range(n)]
    raise ValueError(f"unknown pattern {pattern!r}")


def arrival_times(
    n: int, pattern: str = "burst", spacing: float = 1.0, seed: int = 0
) -> List[float]:
    """Process start times.

    Patterns: ``burst`` (all at 0 — maximal contention), ``staggered``
    (fixed spacing), ``poisson`` (exponential gaps with mean ``spacing``).
    """
    if pattern == "burst":
        return [0.0] * n
    if pattern == "staggered":
        return [i * spacing for i in range(n)]
    if pattern == "poisson":
        rng = random.Random(seed)
        t = 0.0
        out = []
        for _ in range(n):
            out.append(t)
            t += rng.expovariate(1.0 / spacing)
        return out
    raise ValueError(f"unknown pattern {pattern!r}")


@dataclass(frozen=True)
class MutexWorkload:
    """A long-lived lock workload: n sessions with CS/NCS think times."""

    n: int
    sessions: int
    cs_duration: float = 0.2
    ncs_duration: float = 0.3
    arrivals: str = "burst"
    arrival_spacing: float = 1.0
    seed: int = 0

    def starts(self) -> List[float]:
        return arrival_times(self.n, self.arrivals, self.arrival_spacing, self.seed)


def failure_mix(
    kind: str,
    delta: float,
    seed: int = 0,
    horizon: float = 50.0,
) -> List[TimingFailureWindow]:
    """Canonical failure-window mixes used across experiments.

    Kinds: ``none``, ``single_burst`` (one system-wide window),
    ``targeted`` (one process slowed hard), ``scattered`` (several short
    windows over the horizon).
    """
    if kind == "none":
        return []
    if kind == "single_burst":
        return [failure_window(2.0, 2.0 + 6.0 * delta, stretch=25.0)]
    if kind == "targeted":
        return [failure_window(0.0, 8.0 * delta, pids=[0], duration=8.0 * delta)]
    if kind == "scattered":
        rng = random.Random(seed)
        windows = []
        t = 0.0
        while t < horizon:
            t += rng.uniform(2.0, 8.0)
            length = rng.uniform(0.5, 3.0) * delta
            windows.append(failure_window(t, t + length, stretch=rng.uniform(5, 30)))
            t += length
        return windows
    raise ValueError(f"unknown failure mix {kind!r}")


def timing_for(
    delta: float,
    base: str = "constant",
    failures: str = "none",
    seed: int = 0,
    step_fraction: float = 0.8,
) -> TimingModel:
    """Assemble a timing model: a base profile plus a failure mix.

    ``base``: ``constant`` (steps at ``step_fraction·Δ``) or ``jitter``
    (uniform in ``[0.05·Δ, Δ]``).
    """
    if base == "constant":
        model: TimingModel = ConstantTiming(step_fraction * delta)
    elif base == "jitter":
        model = UniformTiming(0.05 * delta, delta, seed=seed)
    else:
        raise ValueError(f"unknown base {base!r}")
    windows = failure_mix(failures, delta, seed=seed)
    if windows:
        model = FailureWindowTiming(model, windows)
    return model
