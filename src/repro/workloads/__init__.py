"""Seeded workload generators (inputs, arrivals, failure mixes)."""

from .generators import (
    MutexWorkload,
    arrival_times,
    consensus_inputs,
    failure_mix,
    timing_for,
)

__all__ = [
    "consensus_inputs",
    "arrival_times",
    "MutexWorkload",
    "failure_mix",
    "timing_for",
]
