"""Lock-protected atomic registers for the thread backend.

CPython's GIL makes individual dict operations atomic in practice, but we
do not rely on that implementation detail: a single lock around the store
gives honest linearizability (each read/write has a linearization point
inside the critical region) at negligible cost for our demonstration
workloads.

The store also timestamps every access with ``time.monotonic`` so the
executor can *measure* the realized step-time bound — the empirical
``Δ`` of the host, GIL hiccups included, which is exactly the paper's
point about how large an honest ``Δ`` must be (and why ``optimistic(Δ)``
matters).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Hashable, List, Set, Tuple

from ..sim.registers import Register

__all__ = ["SharedStore", "AccessRecord"]


class AccessRecord:
    """One timestamped shared-memory access (for Δ measurement)."""

    __slots__ = ("pid", "kind", "register", "started", "finished")

    def __init__(self, pid: int, kind: str, register: Hashable,
                 started: float, finished: float) -> None:
        self.pid = pid
        self.kind = kind
        self.register = register
        self.started = started
        self.finished = finished

    @property
    def duration(self) -> float:
        return self.finished - self.started

    def __repr__(self) -> str:
        return (
            f"AccessRecord(p{self.pid} {self.kind} {self.register!r} "
            f"{self.duration * 1e6:.1f}us)"
        )


class SharedStore:
    """Thread-safe register storage with access timestamps."""

    def __init__(self, record_accesses: bool = True) -> None:
        self._lock = threading.Lock()
        self._store: Dict[Hashable, Any] = {}
        self._touched: Set[Hashable] = set()
        self._record = record_accesses
        self._accesses: List[AccessRecord] = []

    def read(self, pid: int, register: Register) -> Any:
        started = time.monotonic()
        with self._lock:
            value = self._store.get(register.name, register.initial)
            self._touched.add(register.name)
        finished = time.monotonic()
        if self._record:
            self._log(pid, "read", register.name, started, finished)
        return value

    def write(self, pid: int, register: Register, value: Any) -> None:
        started = time.monotonic()
        with self._lock:
            self._store[register.name] = value
            self._touched.add(register.name)
        finished = time.monotonic()
        if self._record:
            self._log(pid, "write", register.name, started, finished)

    def rmw(self, pid: int, register: Register, transform: Any) -> Any:
        """Atomically apply ``transform(old) -> (new, result)`` under the lock."""
        started = time.monotonic()
        with self._lock:
            old = self._store.get(register.name, register.initial)
            new, result = transform(old)
            self._store[register.name] = new
            self._touched.add(register.name)
        finished = time.monotonic()
        if self._record:
            self._log(pid, "rmw", register.name, started, finished)
        return result

    def _log(self, pid: int, kind: str, name: Hashable,
             started: float, finished: float) -> None:
        record = AccessRecord(pid, kind, name, started, finished)
        with self._lock:
            self._accesses.append(record)

    def peek(self, register: Register) -> Any:
        with self._lock:
            return self._store.get(register.name, register.initial)

    @property
    def accesses(self) -> List[AccessRecord]:
        with self._lock:
            return list(self._accesses)

    @property
    def register_count(self) -> int:
        with self._lock:
            return len(self._touched)

    def measured_delta(self) -> Tuple[float, float]:
        """(max, p99-ish) observed *inter-step* gap per process.

        The paper's Δ covers the whole statement — including time spent
        preempted between accesses — so we measure the gap from each
        access's start to the same process's previous access start.
        """
        by_pid: Dict[int, List[float]] = {}
        with self._lock:
            for record in self._accesses:
                by_pid.setdefault(record.pid, []).append(record.started)
        gaps: List[float] = []
        for starts in by_pid.values():
            starts.sort()
            gaps.extend(b - a for a, b in zip(starts, starts[1:]))
        if not gaps:
            return 0.0, 0.0
        gaps.sort()
        p99 = gaps[min(len(gaps) - 1, int(0.99 * len(gaps)))]
        return gaps[-1], p99
