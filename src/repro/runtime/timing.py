"""Empirical Δ measurement on the host machine.

The paper's practical advice (§1.2): a *sound* ``Δ`` must absorb
preemption, cache misses and contention, so it is enormous; run with
``optimistic(Δ)`` instead and rely on resilience for the rare violations.
:func:`measure_host_delta` quantifies that on the current interpreter: it
samples inter-step gaps under thread contention and reports the
distribution, so examples can pick an optimistic bound that holds "most
of the time" and count how often it is violated.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List

__all__ = ["HostDeltaReport", "measure_host_delta", "violations_against"]


@dataclass(frozen=True)
class HostDeltaReport:
    """Distribution of observed inter-step gaps (seconds)."""

    samples: int
    mean: float
    p50: float
    p99: float
    maximum: float

    def optimistic(self, quantile: float = 0.99) -> float:
        """An optimistic(Δ) choice: covers ``quantile`` of observed steps."""
        if not (0.0 < quantile <= 1.0):
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        if quantile >= 0.99:
            return self.p99
        if quantile >= 0.5:
            return self.p50
        return self.mean

    def __repr__(self) -> str:
        return (
            f"HostDeltaReport(n={self.samples}, mean={self.mean * 1e6:.1f}us, "
            f"p99={self.p99 * 1e6:.1f}us, max={self.maximum * 1e6:.1f}us)"
        )


def measure_host_delta(
    threads: int = 4, steps_per_thread: int = 2_000
) -> HostDeltaReport:
    """Sample inter-step gaps under GIL contention.

    Each worker repeatedly performs a tiny shared-memory-ish operation
    (a dict write under a lock) and timestamps it; the gaps between a
    thread's consecutive steps approximate the paper's per-statement time,
    preemption included.
    """
    if threads < 1 or steps_per_thread < 2:
        raise ValueError("need >= 1 thread and >= 2 steps per thread")
    lock = threading.Lock()
    store = {}
    gaps: List[float] = []
    gaps_lock = threading.Lock()

    def worker(tid: int) -> None:
        stamps = []
        for i in range(steps_per_thread):
            with lock:
                store[tid] = i
            stamps.append(time.monotonic())
        local = [b - a for a, b in zip(stamps, stamps[1:])]
        with gaps_lock:
            gaps.extend(local)

    pool = [threading.Thread(target=worker, args=(t,)) for t in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    gaps.sort()
    n = len(gaps)
    return HostDeltaReport(
        samples=n,
        mean=sum(gaps) / n,
        p50=gaps[n // 2],
        p99=gaps[min(n - 1, int(0.99 * n))],
        maximum=gaps[-1],
    )


def violations_against(gaps: List[float], bound: float) -> int:
    """How many observed steps exceeded a candidate bound."""
    return sum(1 for g in gaps if g > bound)
