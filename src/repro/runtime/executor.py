"""Thread-per-process execution of the same generator algorithms.

The simulator is the measurement instrument; this backend demonstrates
the algorithms are *runnable artifacts*: each process becomes a real
thread, shared registers live in a lock-protected
:class:`~repro.runtime.registers.SharedStore`, and ``delay(d)`` becomes a
wall-clock sleep of ``d * time_unit`` seconds.

On CPython, GIL scheduling is itself a source of timing jitter — step
times occasionally blow through any optimistic bound — which makes this
backend a natural end-to-end test of the resilience claims: Algorithm 1
must never disagree, and Algorithm 3 must never lose mutual exclusion,
no matter what the host scheduler does.  The executor records realized
step gaps so callers can inspect the empirical ``Δ`` and count how many
steps violated the optimistic bound they configured.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim.ops import Delay, Label, LocalWork, Op, Read, ReadModifyWrite, Write
from ..sim.process import Program
from .registers import SharedStore

__all__ = ["ThreadedExecutor", "ThreadedRunResult", "ThreadEvent"]


@dataclass(frozen=True)
class ThreadEvent:
    """A label observed during a threaded run (wall-clock timestamped)."""

    pid: int
    kind: str
    payload: Any
    at: float  # monotonic seconds


@dataclass
class ThreadedRunResult:
    """Outcome of one threaded execution."""

    returns: Dict[int, Any]
    errors: Dict[int, BaseException]
    events: List[ThreadEvent]
    store: SharedStore
    wall_time: float
    measured_delta_max: float
    measured_delta_p99: float

    @property
    def ok(self) -> bool:
        return not self.errors

    def decisions(self) -> Dict[int, Any]:
        from ..sim import ops as op_defs

        out: Dict[int, Any] = {}
        for event in self.events:
            if event.kind == op_defs.DECIDED:
                out.setdefault(event.pid, event.payload)
        return out

    def cs_overlap_detected(self) -> bool:
        """Whether two threads were ever inside their CS simultaneously.

        Uses the CS_ENTER/CS_EXIT events' wall-clock order; ties resolved
        conservatively (no overlap claimed for zero-length coincidences).
        """
        from ..sim import ops as op_defs

        intervals: List[Tuple[float, float, int]] = []
        open_by_pid: Dict[int, float] = {}
        for event in sorted(self.events, key=lambda e: e.at):
            if event.kind == op_defs.CS_ENTER:
                open_by_pid[event.pid] = event.at
            elif event.kind == op_defs.CS_EXIT:
                start = open_by_pid.pop(event.pid, None)
                if start is not None:
                    intervals.append((start, event.at, event.pid))
        intervals.sort()
        for (s1, e1, p1), (s2, e2, p2) in zip(intervals, intervals[1:]):
            if p1 != p2 and s2 < e1:
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"ThreadedRunResult(ok={self.ok}, processes={len(self.returns)}, "
            f"wall={self.wall_time:.3f}s, "
            f"measured_delta_max={self.measured_delta_max * 1e3:.3f}ms)"
        )


class ThreadedExecutor:
    """Run generator programs on real threads.

    Parameters
    ----------
    time_unit:
        Wall-clock seconds per simulated time unit: ``delay(d)`` sleeps
        ``d * time_unit``.  Keep it small (default 1 ms) so tests finish
        quickly; the algorithms' safety cannot depend on it.
    record_accesses:
        Keep per-access timestamps for Δ measurement (small overhead).
    """

    def __init__(self, time_unit: float = 1e-3, record_accesses: bool = True) -> None:
        if time_unit <= 0:
            raise ValueError(f"time_unit must be positive, got {time_unit}")
        self.time_unit = time_unit
        self.store = SharedStore(record_accesses=record_accesses)
        self._programs: Dict[int, Program] = {}

    def spawn(self, program: Program, pid: Optional[int] = None) -> int:
        if pid is None:
            pid = len(self._programs)
        if pid in self._programs:
            raise ValueError(f"pid {pid} already spawned")
        self._programs[pid] = program
        return pid

    def run(self, timeout: float = 60.0) -> ThreadedRunResult:
        """Start every process, join them all, and report."""
        returns: Dict[int, Any] = {}
        errors: Dict[int, BaseException] = {}
        events: List[ThreadEvent] = []
        events_lock = threading.Lock()
        store = self.store
        time_unit = self.time_unit

        def interpret(pid: int, program: Program) -> None:
            send_value: Any = None
            try:
                while True:
                    try:
                        op = program.send(send_value)
                    except StopIteration as stop:
                        returns[pid] = stop.value
                        return
                    send_value = None
                    if isinstance(op, Read):
                        send_value = store.read(pid, op.register)
                    elif isinstance(op, Write):
                        store.write(pid, op.register, op.value)
                    elif isinstance(op, ReadModifyWrite):
                        send_value = store.rmw(pid, op.register, op.transform)
                    elif isinstance(op, Delay):
                        time.sleep(op.duration * time_unit)
                    elif isinstance(op, LocalWork):
                        if op.duration > 0:
                            time.sleep(op.duration * time_unit)
                    elif isinstance(op, Label):
                        with events_lock:
                            events.append(
                                ThreadEvent(pid, op.kind, op.payload,
                                            time.monotonic())
                            )
                    else:
                        raise TypeError(f"pid {pid} yielded non-op {op!r}")
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[pid] = exc

        threads = [
            threading.Thread(
                target=interpret, args=(pid, program), name=f"repro-p{pid}",
                daemon=True,
            )
            for pid, program in self._programs.items()
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        deadline = started + timeout
        for thread in threads:
            remaining = deadline - time.monotonic()
            thread.join(max(0.0, remaining))
        wall = time.monotonic() - started
        alive = [t for t in threads if t.is_alive()]
        if alive:
            raise TimeoutError(
                f"{len(alive)} process thread(s) still running after "
                f"{timeout}s: {[t.name for t in alive]}"
            )
        delta_max, delta_p99 = store.measured_delta()
        return ThreadedRunResult(
            returns=returns,
            errors=errors,
            events=events,
            store=store,
            wall_time=wall,
            measured_delta_max=delta_max,
            measured_delta_p99=delta_p99,
        )
