"""Real-thread backend: run the same generator algorithms on threads.

The simulator (:mod:`repro.sim`) is the measurement instrument; this
backend shows the algorithms execute unchanged on a real scheduler, whose
GIL-induced jitter doubles as organic timing failures.
"""

from .executor import ThreadedExecutor, ThreadedRunResult, ThreadEvent
from .registers import AccessRecord, SharedStore
from .timing import HostDeltaReport, measure_host_delta, violations_against

__all__ = [
    "ThreadedExecutor",
    "ThreadedRunResult",
    "ThreadEvent",
    "SharedStore",
    "AccessRecord",
    "HostDeltaReport",
    "measure_host_delta",
    "violations_against",
]
