"""Deterministic perf tracking for the simulator and experiment drivers.

The harness runs named scenarios (see :mod:`repro.bench.scenarios`) and
records, per scenario, wall-clock time *plus* simulator-native work
counters captured by :class:`repro.sim.instrument.EngineProbe` — events
processed, heap pushes, ops linearized, register reads/writes, registers
touched.  The counters are bit-for-bit reproducible, so the committed
``BENCH_core.json`` baseline gates regressions even on noisy CI runners:
counter drift fails hard, wall-clock movement warns.

Usage::

    python -m repro.bench run --quick --json BENCH_core.json
    python -m repro.bench compare BENCH_core.json new.json --max-regression 20%

See docs/TESTING.md ("Performance tracking") for counter semantics and
the baseline-refresh procedure.
"""

from .compare import (
    ComparisonReport,
    CounterDrift,
    ScenarioComparison,
    compare_documents,
    parse_ratio,
)
from .runner import (
    SCHEMA_VERSION,
    ScenarioResult,
    make_document,
    render_document,
    run_scenario,
    run_suite,
)
from .scenarios import SCENARIOS, Scenario, get_scenario, scenario_names

__all__ = [
    "SCHEMA_VERSION",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "ComparisonReport",
    "ScenarioComparison",
    "CounterDrift",
    "compare_documents",
    "parse_ratio",
    "make_document",
    "render_document",
    "run_scenario",
    "run_suite",
    "get_scenario",
    "scenario_names",
]
