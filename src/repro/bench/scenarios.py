"""The benchmark scenario registry.

A *scenario* is a named, deterministic workload: micro-scenarios drive
the engine's event loop and the explorer directly, experiment scenarios
wrap the :mod:`repro.analysis.experiments` drivers (usually at reduced
parameters so the quick suite stays CI-sized).  The runner executes each
scenario inside a :func:`~repro.sim.instrument.probe_scope`, so every
:class:`~repro.sim.Engine` the workload builds reports its work counters
without the workload knowing it is being measured.

A scenario callable may return an extra ``{counter: int}`` dict for
deterministic numbers the probe cannot see (the explorer's state counts);
those are merged into the scenario's counter block under the returned
names.

Quick scenarios (``quick=True``) are the CI set — they must finish in a
few seconds each and their counters are regression-gated against the
committed ``BENCH_core.json``.  The full set is a superset (same
definitions, plus the heavier experiment drivers), so a full run is
directly comparable to a quick baseline on the shared names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..algorithms import FischerLock, mutex_session
from ..analysis import experiments
from ..net import QuorumSystem
from ..sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    Program,
    RandomTieBreak,
    UniformTiming,
    ops,
)
from ..sim.registers import Array, Register, RegisterNamespace
from ..verify import MutualExclusionProperty, explore

__all__ = ["Scenario", "SCENARIOS", "scenario_names", "get_scenario"]

_DELTA = 1.0
# Named bounds for the micro-scenarios' delay/local phases (timing
# assumptions stay auditable — see lint rule TMF005).
_THINK = 0.4 * _DELTA
_PAUSE = 0.6 * _DELTA


@dataclass(frozen=True)
class Scenario:
    """One registered benchmark workload."""

    name: str
    description: str
    quick: bool
    fn: Callable[[], Optional[Dict[str, int]]]


# ---------------------------------------------------------------------------
# Micro-scenarios: the engine event loop and the explorer, isolated.
# ---------------------------------------------------------------------------


def _pingpong_prog(reg: Register, rounds: int) -> Program:
    for _ in range(rounds):
        value = yield reg.read()
        yield reg.write(value + 1)


def _engine_pingpong() -> None:
    """Private-register read/write churn: pure event-loop throughput."""
    slots = Array("bench_slot", 0)
    engine = Engine(delta=_DELTA, timing=ConstantTiming(0.5 * _DELTA))
    for pid in range(8):
        engine.spawn(_pingpong_prog(slots[pid], 120), pid=pid)
    result = engine.run()
    assert result.completed


def _engine_contention() -> None:
    """Everyone hammers one register under jitter and random tie-breaks."""
    hot = Register("bench_hot", 0)
    engine = Engine(
        delta=_DELTA,
        timing=UniformTiming(0.2 * _DELTA, _DELTA, seed=7),
        tie_break=RandomTieBreak(seed=11),
    )
    for pid in range(6):
        engine.spawn(_pingpong_prog(hot, 60), pid=pid)
    result = engine.run()
    assert result.completed


def _mixed_prog(reg: Register, rounds: int) -> Program:
    for _ in range(rounds):
        yield ops.delay(_THINK)
        yield reg.write(1)
        yield ops.local_work(_PAUSE)
        yield reg.write(0)


def _engine_delays_and_crashes() -> None:
    """Delay/local-work paths plus the crash machinery, one run."""
    slots = Array("bench_mixed", 0)
    engine = Engine(
        delta=_DELTA,
        timing=ConstantTiming(0.3 * _DELTA),
        crashes=CrashSchedule(after_steps={0: 25}, at_time={1: 30.0}),
    )
    for pid in range(4):
        engine.spawn(_mixed_prog(slots[pid], 40), pid=pid)
    engine.run()


def _explorer_fischer() -> Dict[str, int]:
    """Exhaustive interleaving exploration; counters from the result."""
    lock = FischerLock(delta=_DELTA, namespace=RegisterNamespace(("bench", "f")))
    factories = {
        pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
        for pid in range(2)
    }
    result = explore(
        factories,
        [MutualExclusionProperty()],
        max_ops=12,
        stop_at_first_violation=False,
    )
    return {
        "explorer_states": result.states,
        "explorer_transitions": result.transitions,
        "explorer_max_depth": result.max_depth,
        "explorer_violations": len(result.violations),
    }


# ---------------------------------------------------------------------------
# Net scenarios: the message fabric and the ABD quorum emulation.
# ---------------------------------------------------------------------------


def _abd_prog(reg: Register, rounds: int) -> Program:
    for i in range(rounds):
        yield reg.write(i)
        yield reg.read()


def _net_abd_read_write() -> None:
    """Two clients churn one ABD quorum register (message + RTT counters)."""
    reg = Register("bench_net", 0)
    system = QuorumSystem(clients=2, replicas=3, bound=_DELTA, seed=3)
    result = system.run([_abd_prog(reg, 12) for _ in range(2)])
    assert result.completed


# ---------------------------------------------------------------------------
# Observability scenarios: the structured tracer's cost and neutrality.
# ---------------------------------------------------------------------------


def _obs_trace_overhead() -> Dict[str, int]:
    """The same quorum run untraced, then traced: counters must not drift.

    This is the tracer's zero-perturbation contract made a regression
    gate.  The workload runs twice under *private* probes (the runner's
    ambient probe therefore sees no engine work, exactly like the chaos
    and lint scenarios): the baseline untraced, the second inside a
    :func:`~repro.obs.trace_scope`.  Any counter drift means tracing
    changed scheduling, RNG draws, or message flow — the bug the
    ``tracer is not None`` guards exist to prevent — and the scenario
    fails loudly rather than reporting numbers for a perturbed run.
    ``obs_trace_records`` regression-gates the trace's size (record
    vocabulary changes show up here); ``obs_counter_drift`` must stay 0.
    """
    from repro.obs import Tracer, trace_scope

    from ..sim.instrument import EngineProbe, probe_scope

    def run_once() -> Dict[str, int]:
        probe = EngineProbe()
        reg = Register("bench_obs", 0)
        with probe_scope(probe):
            system = QuorumSystem(clients=2, replicas=3, bound=_DELTA, seed=5)
            result = system.run([_abd_prog(reg, 8) for _ in range(2)])
        assert result.completed
        return probe.snapshot()

    baseline = run_once()
    tracer = Tracer()
    with trace_scope(tracer):
        traced = run_once()
    drift = sum(1 for key in baseline if baseline[key] != traced[key])
    assert drift == 0, f"tracing perturbed the run: {baseline} vs {traced}"
    return {
        "obs_trace_records": len(tracer),
        "obs_counter_drift": drift,
        "obs_probe_events": baseline["events"],
        "obs_messages_sent": baseline["messages_sent"],
    }


# ---------------------------------------------------------------------------
# Chaos scenarios: fault campaigns + counterexample shrinking.
# ---------------------------------------------------------------------------


def _chaos_fischer_campaign() -> Dict[str, int]:
    """Find a Fischer n=3 violation under a 6-window campaign, then shrink.

    The whole pipeline runs on the untimed sandbox, so the probe sees no
    engine work; the returned counters are the pipeline's own
    deterministic sizes — any drift means the scheduler, the monitors or
    the shrinker changed behaviour.
    """
    # Imported here to keep repro.bench importable without the chaos layer.
    from ..chaos import run_sim_campaign, sample_sim_campaign, shrink_sim, sim_target

    target = sim_target("fischer_n3")
    campaign = sample_sim_campaign("demo-a", pids=target.pids, windows=6)
    report = run_sim_campaign(target, campaign, schedules=20)
    outcome = report.failing
    assert outcome is not None
    violation = outcome.find("mutual_exclusion")
    shrunk = shrink_sim(target, campaign, outcome.schedule,
                        monitor="mutual_exclusion")
    return {
        "chaos_schedules_run": report.schedules_run,
        "chaos_schedule_steps": len(outcome.schedule),
        "chaos_violation_step": violation.step,
        "chaos_shrunk_steps": len(shrunk.payload),
        "chaos_shrunk_faults": shrunk.campaign.fault_count,
        "chaos_shrink_executions": shrunk.executions,
    }


def _recover_stabilize_n3() -> Dict[str, int]:
    """Recover campaign on the DG stabilizing mutex: corrupt, crash, converge.

    Three fixed-seed schedules of corruption bursts plus crash/restart
    pairs, each required to end in a stabilization verdict.  All counters
    are deterministic pipeline sizes — drift means the recover scheduler,
    the restart fast-forward, or the stabilization monitor changed
    behaviour.
    """
    # Imported here to keep repro.bench importable without the chaos layer.
    from ..chaos import run_sim_campaign, sample_recover_campaign, sim_target

    target = sim_target("dg_mutex_n3")
    # This seed draws 2 corruption bursts AND 2 crash/restart pairs, so
    # the scenario covers the whole recover machinery, fast-forward
    # included.
    campaign = sample_recover_campaign(
        "bench-recover-4", pids=target.pids,
        corruption_registers=target.corruptible,
    )
    assert campaign.recover_at, "seed must draw at least one restart"
    report = run_sim_campaign(target, campaign, schedules=3)
    assert report.ok and report.converged
    verdict = report.first_verdict
    assert verdict is not None
    return {
        "recover_schedules_run": report.schedules_run,
        "recover_verdicts": report.verdicts,
        "recover_fault_count": campaign.fault_count,
        "recover_restarts": len(campaign.recover_at),
        "recover_first_verdict_step": verdict.step,
    }


# ---------------------------------------------------------------------------
# Parallel scenarios: the seed-sharded worker fabric.
# ---------------------------------------------------------------------------


def _parallel_shard_overhead() -> Dict[str, int]:
    """Shard a Fischer fuzz campaign 4 ways in-process, then merge.

    ``workers=1`` keeps execution in this process (the pickling-free
    fallback path), so the scenario measures exactly the fabric's own
    overhead: shard construction, sub-seed derivation, per-shard
    dispatch, and the deterministic merge.  The counters are the
    pipeline's deterministic sizes — a drift in ``parallel_steps`` or
    ``parallel_merge_items`` on an unchanged tree means sharding changed
    *what* the campaign explores, which is exactly the bug the
    determinism contract forbids.
    """
    # Imported here to keep repro.bench importable without these layers.
    from ..parallel import WorkerPool, make_shards, merge_fuzz_results
    from ..verify.fuzz import _campaign_shard

    schedules = 48
    shards = make_shards(schedules, 4, master_seed=0)
    with WorkerPool(1) as pool:
        results = pool.run(_campaign_shard, shards,
                           ("fischer_n3", 0, schedules, False))
    merged = merge_fuzz_results([r.value for r in results])
    return {
        "parallel_shards": len(shards),
        "parallel_shard_schedules": max(s.count for s in shards),
        "parallel_merge_items": len(merged.failures),
        "parallel_schedules_run": merged.schedules_run,
        "parallel_steps": merged.steps_taken,
    }


# ---------------------------------------------------------------------------
# Serve scenarios: the lease-service keeper workload on the sim substrate.
# ---------------------------------------------------------------------------


def _serve_lease_churn() -> Dict[str, int]:
    """The lease service's keeper workload under the deterministic engine.

    Two shards, two contending keepers each: every cycle a keeper locks
    its shard's Algorithm 3 mutex, reserves a fencing-token block
    through the ``hwm`` quorum register, and churns grant/release pairs
    through the shared :class:`~repro.serve.service.LeaseCore`.  The
    workload asserts its own safety (per-shard keeper exclusion, zero
    fencing violations) and returns the lease ledger as counters; the
    probe contributes the quorum RTT / message / linearization counts.
    A drift in either on an unchanged tree means the keeper protocol
    changed behaviour.
    """
    # Imported here to keep repro.bench importable without repro.serve.
    from ..serve.workload import lease_churn_sim

    counters = lease_churn_sim(
        shards=2, keepers_per_shard=2, replicas=3, cycles=2, grants_per_cycle=4
    )
    return {
        "lease_granted": counters["granted"],
        "lease_released": counters["released"],
        "lease_refills": counters["refills"],
        "lease_stale_refills": counters["stale_refills"],
        "lease_tokens_reserved": counters["tokens_reserved"],
        "lease_keeper_cs": counters["keeper_cs"],
        "lease_violations": counters["lease_violations"],
    }


# ---------------------------------------------------------------------------
# Lint scenarios: the flow analyzer over the shipped tree.
# ---------------------------------------------------------------------------


def _lint_flow_tree() -> Dict[str, int]:
    """Build flow fact bases for every module under ``src/repro``.

    Pure static analysis — the probe sees no engine work; the returned
    counters are the analyzer's own deterministic sizes.  A drift in
    ``flow_cfg_nodes``/``flow_facts`` on an unchanged tree means the CFG
    builder or the abstract interpreter changed behaviour.
    """
    import os

    # Imported here to keep repro.bench importable without the lint layer.
    from ..lint import iter_python_files
    from ..lint.context import build_context
    from ..lint.flow import ModuleFlow

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    flows: List[ModuleFlow] = []
    for path in sorted(iter_python_files([package_root])):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        flows.append(ModuleFlow(build_context(path, source)))
    return {
        "flow_files": len(flows),
        "flow_cfg_nodes": sum(f.cfg_node_count for f in flows),
        "flow_facts": sum(f.fact_count for f in flows),
    }


# ---------------------------------------------------------------------------
# Experiment scenarios: the paper's drivers, instrumented from outside.
# ---------------------------------------------------------------------------


def _experiment(fn: Callable, *args, **kwargs) -> Callable[[], None]:
    def run() -> None:
        fn(*args, **kwargs)

    return run


_REGISTRY: List[Scenario] = [
    Scenario(
        "engine/pingpong",
        "8 processes x 120 private read/write rounds (event-loop throughput)",
        quick=True,
        fn=_engine_pingpong,
    ),
    Scenario(
        "engine/contention",
        "6 processes x 60 rounds on one register, jitter + random tie-breaks",
        quick=True,
        fn=_engine_contention,
    ),
    Scenario(
        "engine/delays_crashes",
        "4 processes mixing delay/local-work/writes with two crash kinds",
        quick=True,
        fn=_engine_delays_and_crashes,
    ),
    Scenario(
        "explorer/fischer_n2",
        "exhaustive exploration of Fischer n=2 (max_ops=12, all violations)",
        quick=True,
        fn=_explorer_fischer,
    ),
    Scenario(
        "net/abd_read_write",
        "2 clients x 12 write/read rounds on one quorum register (3 replicas)",
        quick=True,
        fn=_net_abd_read_write,
    ),
    Scenario(
        "net/consensus_n4",
        "E1N (reduced): networked consensus n=4, one seed",
        quick=True,
        fn=_experiment(experiments.run_e1_net, ns=(4,), seeds=(0,)),
    ),
    Scenario(
        "obs/trace_overhead",
        "one quorum run untraced vs traced: counters must match exactly",
        quick=True,
        fn=_obs_trace_overhead,
    ),
    Scenario(
        "chaos/fischer_campaign",
        "chaos campaign on Fischer n=3: find a violation, ddmin-shrink it",
        quick=True,
        fn=_chaos_fischer_campaign,
    ),
    Scenario(
        "recover/stabilize_n3",
        "recover campaign on the DG ring: corrupt + crash/restart, 3 verdicts",
        quick=True,
        fn=_recover_stabilize_n3,
    ),
    Scenario(
        "parallel/fuzz_shard_overhead",
        "Fischer fuzz sharded 4 ways in-process: shard + dispatch + merge",
        quick=True,
        fn=_parallel_shard_overhead,
    ),
    Scenario(
        "lint/flow_tree",
        "flow analysis (CFG + facts) over every module in src/repro",
        quick=True,
        fn=_lint_flow_tree,
    ),
    Scenario(
        "serve/lease_churn",
        "2 shards x 2 keepers reserving fencing-token blocks under Algorithm 3",
        quick=True,
        fn=_serve_lease_churn,
    ),
    Scenario(
        "experiments/e4_fastpath",
        "E4: contention-free fast path scenarios",
        quick=True,
        fn=_experiment(experiments.run_e4),
    ),
    Scenario(
        "experiments/e5_scaling",
        "E5 (reduced): open participation scaling, n in (2, 8, 32)",
        quick=True,
        fn=_experiment(experiments.run_e5, ns=(2, 8, 32)),
    ),
    Scenario(
        "experiments/e7_mutex",
        "E7 (reduced): mutex time complexity, n in (2, 4), 2 sessions",
        quick=True,
        fn=_experiment(experiments.run_e7, ns=(2, 4), sessions=2),
    ),
    Scenario(
        "experiments/e9_space",
        "E9 (reduced): register counts vs the lower bound, n=4",
        quick=True,
        fn=_experiment(experiments.run_e9, n=4),
    ),
    # -- full-only: the heavier drivers ------------------------------------
    Scenario(
        "experiments/e1_decision_time",
        "E1 (reduced): decision time without failures, n in (1..8), 2 seeds",
        quick=False,
        fn=_experiment(experiments.run_e1, ns=(1, 2, 4, 8), seeds=(0, 1)),
    ),
    Scenario(
        "experiments/e2_recovery",
        "E2: recovery after timing-failure windows",
        quick=False,
        fn=_experiment(experiments.run_e2),
    ),
    Scenario(
        "experiments/e3_waitfree",
        "E3 (reduced): wait-freedom under crashes, n in (2, 4, 8)",
        quick=False,
        fn=_experiment(experiments.run_e3, ns=(2, 4, 8)),
    ),
    Scenario(
        "experiments/e6_safety",
        "E6 (reduced): exhaustive + 50 randomized adversity seeds",
        quick=False,
        fn=_experiment(experiments.run_e6, random_seeds=50),
    ),
    Scenario(
        "experiments/e8_convergence",
        "E8: convergence after a doorway breach",
        quick=False,
        fn=_experiment(experiments.run_e8),
    ),
    Scenario(
        "experiments/e10_optimistic",
        "E10: optimistic delay-estimate sweep with AIMD tuning",
        quick=False,
        fn=_experiment(experiments.run_e10),
    ),
    Scenario(
        "experiments/e11_unknown_bound",
        "E11: known bound vs doubling estimates",
        quick=False,
        fn=_experiment(experiments.run_e11),
    ),
    Scenario(
        "experiments/e12_derived",
        "E12: derived wait-free objects under failure injection",
        quick=False,
        fn=_experiment(experiments.run_e12),
    ),
    Scenario(
        "experiments/e13_model_checking",
        "E13 (reduced): Fischer vs Algorithm 3 under the model checker",
        quick=False,
        fn=_experiment(experiments.run_e13, max_ops=22),
    ),
]

SCENARIOS: Dict[str, Scenario] = {s.name: s for s in _REGISTRY}


def scenario_names(mode: str = "quick") -> List[str]:
    """Scenario names for a mode (``quick`` is a subset of ``full``)."""
    if mode == "quick":
        return [s.name for s in _REGISTRY if s.quick]
    if mode == "full":
        return [s.name for s in _REGISTRY]
    raise ValueError(f"unknown mode {mode!r}; expected 'quick' or 'full'")


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None
