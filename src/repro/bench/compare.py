"""Compare two bench documents and gate on deterministic counter drift.

Verdicts per scenario (most severe first):

``drift``
    Any counter differs between the two documents, in either direction.
    The counters are deterministic, so drift means the simulation did
    different work — either the workload changed (refresh the baseline
    deliberately) or a semantics bug crept in.  Always a failure.
``missing``
    The scenario exists in the old document but not the new one.  Also a
    failure — a silently dropped scenario is not a passing gate.
``regression`` / ``improvement``
    Counters identical but wall clock moved beyond the threshold.  Wall
    time is noisy on shared runners, so regressions *warn* by default and
    only fail under ``fail_on_wall=True``.
``new``
    Present only in the new document (informational; full runs compared
    against a quick baseline report their extra scenarios here).
``ok``
    Identical counters, wall clock within the threshold.

Exit codes mirror :mod:`repro.lint`: 0 clean, 1 gate failure, 2 usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CounterDrift",
    "ScenarioComparison",
    "ComparisonReport",
    "compare_documents",
    "parse_ratio",
]

EXIT_OK = 0
EXIT_FAIL = 1
EXIT_USAGE = 2


@dataclass(frozen=True)
class CounterDrift:
    """One counter whose value changed."""

    counter: str
    old: Optional[int]
    new: Optional[int]


@dataclass
class ScenarioComparison:
    """The verdict for one scenario."""

    name: str
    verdict: str  # ok | improvement | regression | drift | missing | new
    drifts: List[CounterDrift] = field(default_factory=list)
    wall_old: Optional[float] = None
    wall_new: Optional[float] = None

    @property
    def wall_ratio(self) -> Optional[float]:
        if self.wall_old and self.wall_new is not None:
            return self.wall_new / self.wall_old
        return None


@dataclass
class ComparisonReport:
    """All scenario verdicts plus the overall gate decision."""

    scenarios: List[ScenarioComparison]
    max_regression: float

    def with_verdict(self, verdict: str) -> List[ScenarioComparison]:
        return [s for s in self.scenarios if s.verdict == verdict]

    @property
    def counter_failures(self) -> List[ScenarioComparison]:
        return [s for s in self.scenarios if s.verdict in ("drift", "missing")]

    @property
    def wall_regressions(self) -> List[ScenarioComparison]:
        return self.with_verdict("regression")

    def exit_code(self, fail_on_wall: bool = False) -> int:
        if self.counter_failures:
            return EXIT_FAIL
        if fail_on_wall and self.wall_regressions:
            return EXIT_FAIL
        return EXIT_OK

    def render(self) -> str:
        lines = []
        for s in self.scenarios:
            if s.verdict in ("ok", "improvement", "regression"):
                ratio = s.wall_ratio
                detail = f"wall x{ratio:.2f}" if ratio is not None else "no wall data"
            elif s.verdict == "drift":
                shown = ", ".join(
                    f"{d.counter} {d.old} -> {d.new}" for d in s.drifts[:4]
                )
                more = len(s.drifts) - 4
                detail = shown + (f" (+{more} more)" if more > 0 else "")
            else:
                detail = ""
            lines.append(f"{s.verdict.upper():<12} {s.name:<34} {detail}".rstrip())
        counts = {}
        for s in self.scenarios:
            counts[s.verdict] = counts.get(s.verdict, 0) + 1
        summary = ", ".join(f"{n} {v}" for v, n in sorted(counts.items()))
        lines.append(f"-- {summary} (wall threshold +{self.max_regression:.0%})")
        return "\n".join(lines)


def parse_ratio(text: str) -> float:
    """Parse a regression threshold: ``'20%'`` or ``'0.2'`` -> ``0.2``."""
    raw = text.strip()
    try:
        if raw.endswith("%"):
            value = float(raw[:-1]) / 100.0
        else:
            value = float(raw)
    except ValueError:
        raise ValueError(f"cannot parse regression threshold {text!r}") from None
    if value < 0:
        raise ValueError(f"regression threshold must be >= 0, got {text!r}")
    return value


def _counter_drifts(old: Dict[str, int], new: Dict[str, int]) -> List[CounterDrift]:
    drifts = []
    for key in sorted(set(old) | set(new)):
        if old.get(key) != new.get(key):
            drifts.append(CounterDrift(key, old.get(key), new.get(key)))
    return drifts


def _scenarios_of(doc: Dict) -> Dict[str, Dict]:
    try:
        scenarios = doc["scenarios"]
    except (TypeError, KeyError):
        raise ValueError("not a repro.bench document: no 'scenarios' key") from None
    if not isinstance(scenarios, dict):
        raise ValueError("not a repro.bench document: 'scenarios' is not a map")
    return scenarios


def compare_documents(
    old: Dict, new: Dict, max_regression: float = 0.2
) -> ComparisonReport:
    """Compare two bench documents (see module docstring for verdicts)."""
    old_scenarios = _scenarios_of(old)
    new_scenarios = _scenarios_of(new)
    comparisons: List[ScenarioComparison] = []
    for name in sorted(set(old_scenarios) | set(new_scenarios)):
        if name not in new_scenarios:
            comparisons.append(ScenarioComparison(name, "missing"))
            continue
        if name not in old_scenarios:
            comparisons.append(ScenarioComparison(name, "new"))
            continue
        old_entry, new_entry = old_scenarios[name], new_scenarios[name]
        drifts = _counter_drifts(
            old_entry.get("counters", {}), new_entry.get("counters", {})
        )
        wall_old = old_entry.get("wall_time_s")
        wall_new = new_entry.get("wall_time_s")
        if drifts:
            verdict = "drift"
        else:
            verdict = "ok"
            if wall_old and wall_new is not None:
                ratio = wall_new / wall_old
                if ratio > 1.0 + max_regression:
                    verdict = "regression"
                elif ratio < 1.0 - max_regression:
                    verdict = "improvement"
        comparisons.append(
            ScenarioComparison(name, verdict, drifts, wall_old, wall_new)
        )
    return ComparisonReport(comparisons, max_regression)
