"""Command-line interface: ``python -m repro.bench``.

::

    python -m repro.bench run --quick --json BENCH_core.json
    python -m repro.bench run --full --only engine/pingpong
    python -m repro.bench list
    python -m repro.bench compare BENCH_core.json new.json --max-regression 20%

``run`` executes scenarios and prints one line per scenario (plus the
JSON document when ``--json`` is given).  ``compare`` gates two documents:
exit 0 clean, 1 on counter drift / missing scenarios (and, under
``--fail-on-wall``, wall-clock regressions beyond ``--max-regression``),
2 on usage errors — the same convention as :mod:`repro.lint`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .compare import EXIT_FAIL, EXIT_OK, EXIT_USAGE, compare_documents, parse_ratio
from .runner import make_document, render_document, run_scenario
from .scenarios import SCENARIOS, get_scenario, scenario_names

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Deterministic benchmark harness with counter-gated baselines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run scenarios and emit a bench document")
    mode = run.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true",
                      help="CI scenario set (the default)")
    mode.add_argument("--full", action="store_true",
                      help="every scenario, including heavy experiment drivers")
    run.add_argument("--only", action="append", metavar="NAME",
                     help="run only this scenario (repeatable)")
    run.add_argument("--repeat", type=int, default=3, metavar="N",
                     help="repetitions per scenario; wall time is the best, "
                          "counters must agree (default: 3)")
    run.add_argument("--json", metavar="PATH", dest="json_path",
                     help="write the machine-readable document here")

    sub.add_parser("list", help="list registered scenarios")

    cmp_parser = sub.add_parser("compare", help="gate a new document on an old one")
    cmp_parser.add_argument("old", help="baseline document (e.g. BENCH_core.json)")
    cmp_parser.add_argument("new", help="fresh document to check")
    cmp_parser.add_argument("--max-regression", default="20%", metavar="PCT",
                            help="wall-clock slowdown threshold (default: 20%%)")
    cmp_parser.add_argument("--fail-on-wall", action="store_true",
                            help="exit 1 on wall regressions too (default: warn)")
    return parser


def _cmd_list(out) -> int:
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        tag = "quick" if s.quick else "full "
        print(f"[{tag}] {name:<34} {s.description}", file=out)
    return EXIT_OK


def _cmd_run(args, out, err) -> int:
    mode = "full" if args.full else "quick"
    try:
        names: List[str] = list(args.only) if args.only else scenario_names(mode)
        scenarios = [get_scenario(name) for name in names]
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=err)
        return EXIT_USAGE
    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}", file=err)
        return EXIT_USAGE
    results = []
    for scenario in scenarios:
        result = run_scenario(scenario, repeats=args.repeat)
        results.append(result)
        print(
            f"{result.name:<34} {result.wall_time_s:8.3f}s  "
            f"events={result.counters['events']} "
            f"shared_steps={result.counters['shared_steps']}",
            file=out,
        )
    doc = make_document(results, mode)
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            fh.write(render_document(doc))
        print(f"wrote {args.json_path}", file=out)
    return EXIT_OK


def _cmd_compare(args, out, err) -> int:
    try:
        threshold = parse_ratio(args.max_regression)
    except ValueError as exc:
        print(f"error: {exc}", file=err)
        return EXIT_USAGE
    docs = []
    for path in (args.old, args.new):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                docs.append(json.load(fh))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {path}: {exc}", file=err)
            return EXIT_USAGE
    try:
        report = compare_documents(docs[0], docs[1], max_regression=threshold)
    except ValueError as exc:
        print(f"error: {exc}", file=err)
        return EXIT_USAGE
    print(report.render(), file=out)
    code = report.exit_code(fail_on_wall=args.fail_on_wall)
    if code != EXIT_OK:
        failed = [s.name for s in report.counter_failures]
        if args.fail_on_wall:
            failed += [s.name for s in report.wall_regressions]
        print(f"FAIL: {', '.join(failed)}", file=err)
    elif report.wall_regressions:
        names = ", ".join(s.name for s in report.wall_regressions)
        print(f"warning: wall-clock regression (not gated): {names}", file=err)
    return code


def main(argv: Optional[Sequence[str]] = None,
         out=sys.stdout, err=sys.stderr) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors already
        return exc.code if isinstance(exc.code, int) else EXIT_USAGE
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "run":
        return _cmd_run(args, out, err)
    if args.command == "compare":
        return _cmd_compare(args, out, err)
    return EXIT_USAGE  # pragma: no cover - argparse enforces the choices
