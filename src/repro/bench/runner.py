"""Execute scenarios and assemble the machine-readable bench document.

The document layout (schema 1)::

    {
      "schema": 1,
      "kind": "repro.bench",
      "mode": "quick",
      "scenarios": {
        "<name>": {"counters": {"events": 123, ...}, "wall_time_s": 0.42},
        ...
      }
    }

Counter blocks are fully deterministic (see
:mod:`repro.sim.instrument`); ``wall_time_s`` is the one noisy field and
is segregated so consumers can gate on counters and merely eyeball wall
clock.  Documents are serialized with sorted keys, so two runs of the
same tree produce byte-identical counter sections.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..sim.instrument import EngineProbe, probe_scope
from .scenarios import Scenario, get_scenario

__all__ = [
    "SCHEMA_VERSION",
    "ScenarioResult",
    "run_scenario",
    "run_suite",
    "make_document",
    "render_document",
]

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ScenarioResult:
    """Counters plus wall time for one scenario execution."""

    name: str
    counters: Dict[str, int]
    wall_time_s: float


def _run_once(scenario: Scenario) -> ScenarioResult:
    probe = EngineProbe()
    start = time.perf_counter()
    with probe_scope(probe):
        extra = scenario.fn()
    wall = time.perf_counter() - start
    counters = probe.snapshot()
    for key, value in (extra or {}).items():
        if key in counters:
            raise ValueError(
                f"scenario {scenario.name!r} returned counter {key!r} "
                f"which shadows a probe counter"
            )
        counters[key] = int(value)
    return ScenarioResult(scenario.name, counters, wall)


def run_scenario(scenario: Scenario, repeats: int = 1) -> ScenarioResult:
    """Run a scenario ``repeats`` times; report the best wall time.

    Counters must be identical across repetitions — they are deterministic
    by construction, so a mismatch is a bug in the scenario (hidden global
    state) or the simulator, and raises rather than silently averaging.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    results = [_run_once(scenario) for _ in range(repeats)]
    for other in results[1:]:
        if other.counters != results[0].counters:
            raise RuntimeError(
                f"scenario {scenario.name!r} produced different counters on "
                f"repetition: {results[0].counters} vs {other.counters}"
            )
    return ScenarioResult(
        scenario.name,
        results[0].counters,
        min(r.wall_time_s for r in results),
    )


def run_suite(names: Iterable[str], repeats: int = 1) -> List[ScenarioResult]:
    return [run_scenario(get_scenario(name), repeats=repeats) for name in names]


def make_document(results: Iterable[ScenarioResult], mode: str) -> Dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "repro.bench",
        "mode": mode,
        "scenarios": {
            r.name: {
                "counters": dict(r.counters),
                "wall_time_s": round(r.wall_time_s, 6),
            }
            for r in results
        },
    }


def render_document(doc: Dict) -> str:
    """Canonical serialization (sorted keys, trailing newline)."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
