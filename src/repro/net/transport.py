"""Deterministic in-simulation message transport.

One :class:`Transport` carries all messages of one
:class:`~repro.net.engine.NetEngine` run.  It is *not* an executor: the
engine linearizes each ``Send`` at its completion instant and hands the
message here; the transport decides the message's fate (delivered when?
dropped?) and parks it in the destination's delivery queue until a
``Recv`` collects it.

The delivery-bound contract — the heart of the networked model — is:

* every link ``(src, dst)`` has a known *delivery bound* ``b``;
* a fault-free message sent at time ``t`` is deliverable by ``t + b``
  (the actual delay is drawn uniformly from ``[min_factor·b, b]``);
* during a :class:`~repro.net.faults.DelaySpike` the delay may exceed
  ``b`` — the networked timing failure — and losses/partitions may drop
  the message entirely.

Determinism: delays and loss decisions come from one ``random.Random``
seeded at construction, consumed in engine order, so a (programs, timing
seed, transport seed, fault plan) tuple reproduces bit-for-bit — the
same property the shared-memory engine guarantees, extended to the wire.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import active_tracer

from .faults import NetFaultPlan

__all__ = ["NetStats", "Transport"]


class NetStats:
    """Deterministic message counters for one transport (cf. EngineProbe).

    ``messages_sent`` counts every message handed to the transport (one
    per destination for broadcasts); each then either shows up in
    ``messages_dropped`` (loss/partition), ``messages_delivered`` (some
    ``Recv`` collected it) or stays in flight when the run ends.
    ``quorum_rtts`` is incremented by :mod:`repro.net.quorum` whenever a
    client completes a majority phase.
    """

    __slots__ = (
        "messages_sent",
        "messages_delivered",
        "messages_dropped",
        "quorum_rtts",
    )

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.quorum_rtts = 0

    def snapshot(self) -> Dict[str, int]:
        """The counters as a plain dict, in declaration order."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"NetStats(sent={self.messages_sent}, "
            f"delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped}, rtts={self.quorum_rtts})"
        )


class Transport:
    """Message fabric for ``n`` endpoints (pids ``0..n-1``).

    Parameters
    ----------
    n:
        Number of endpoints; must match the pids spawned on the engine.
    bound:
        Default per-link delivery bound (the networked ``Δ``).
    seed:
        Seeds the delay/loss RNG; same seed, same fates.
    faults:
        Optional :class:`NetFaultPlan`; defaults to a fault-free network.
    link_bounds:
        Optional per-link overrides, ``{(src, dst): bound}`` — the
        timeliness-graph view where links differ in quality.
    min_factor:
        Lower edge of the nominal delay range as a fraction of the bound.

    The ``tracer`` attribute (default: the ambient
    :func:`~repro.obs.tracer.trace_scope` tracer, i.e. usually ``None``)
    receives message-lifecycle records — send with scheduled arrival,
    drop, collect — and quorum phase markers from
    :mod:`repro.net.quorum`.  Tracing never touches the RNG or the
    queues: a traced run is bit-identical to an untraced one.
    """

    __slots__ = (
        "n",
        "bound",
        "faults",
        "stats",
        "min_factor",
        "tracer",
        "_link_bounds",
        "_rng",
        "_queues",
        "_seq",
    )

    def __init__(
        self,
        n: int,
        bound: float = 1.0,
        seed: Any = 0,
        faults: Optional[NetFaultPlan] = None,
        link_bounds: Optional[Dict[Tuple[int, int], float]] = None,
        min_factor: float = 0.1,
    ) -> None:
        if n < 1:
            raise ValueError(f"transport needs at least one endpoint, got {n}")
        if bound <= 0:
            raise ValueError(f"delivery bound must be positive, got {bound}")
        if not 0.0 <= min_factor <= 1.0:
            raise ValueError(f"min_factor must be in [0, 1], got {min_factor}")
        self.n = n
        self.bound = float(bound)
        self.faults = faults if faults is not None else NetFaultPlan.none()
        self.stats = NetStats()
        self.min_factor = min_factor
        self.tracer = active_tracer()
        self._link_bounds = dict(link_bounds or {})
        self._rng = random.Random(seed)
        self._queues: List[List[Tuple[float, int, int, Any]]] = [[] for _ in range(n)]
        self._seq = itertools.count()

    # -- topology ------------------------------------------------------------

    def peers(self, pid: int) -> Tuple[int, ...]:
        """Every endpoint except ``pid`` (the default broadcast audience)."""
        return tuple(p for p in range(self.n) if p != pid)

    def link_bound(self, src: int, dst: int) -> float:
        return self._link_bounds.get((src, dst), self.bound)

    # -- engine-facing -------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, now: float) -> None:
        """Accept one message at time ``now`` and decide its fate."""
        if not 0 <= dst < self.n:
            raise ValueError(f"destination pid {dst} outside transport 0..{self.n - 1}")
        if dst == src:
            raise ValueError(f"pid {src} sent a message to itself")
        self.stats.messages_sent += 1
        if self.faults.drops(src, dst, now, self._rng):
            self.stats.messages_dropped += 1
            if self.tracer is not None:
                self.tracer.msg_drop(src, dst, now)
            return
        bound = self.link_bound(src, dst)
        nominal = self._rng.uniform(self.min_factor * bound, bound)
        delay = self.faults.delivery_delay(src, dst, now, nominal)
        seq = next(self._seq)
        heapq.heappush(self._queues[dst], (now + delay, seq, src, payload))
        if self.tracer is not None:
            self.tracer.msg_send(seq, src, dst, now, now + delay)

    def collect(self, dst: int, now: float) -> List[Tuple[int, Any]]:
        """Pop every message deliverable to ``dst`` by time ``now``.

        Returns ``(sender, payload)`` pairs in delivery order (ties by
        send sequence) — what a ``Recv`` hands back to the process.
        """
        queue = self._queues[dst]
        tracer = self.tracer
        out: List[Tuple[int, Any]] = []
        while queue and queue[0][0] <= now:
            arrive, seq, src, payload = heapq.heappop(queue)
            out.append((src, payload))
            if tracer is not None:
                tracer.msg_recv(seq, src, dst, now, arrive)
        self.stats.messages_delivered += len(out)
        return out

    # -- introspection -------------------------------------------------------

    def in_flight(self, dst: Optional[int] = None) -> int:
        """Messages accepted but not yet collected (undelivered ≠ dropped)."""
        if dst is not None:
            return len(self._queues[dst])
        return sum(len(q) for q in self._queues)

    def __repr__(self) -> str:
        return (
            f"Transport(n={self.n}, bound={self.bound}, "
            f"in_flight={self.in_flight()})"
        )
