"""Fuzzing the quorum register emulation against the atomicity spec.

Each schedule builds a fresh :class:`~repro.net.quorum.QuorumSystem`,
runs a few clients through a random read/write workload under a rotating
fault plan, extracts the per-register operation history from the trace,
and asks :func:`repro.spec.check_linearizability` whether the emulation
really behaved like atomic registers (:class:`RegisterModel`).

Fault-plan rotation (one plan kind per schedule, round-robin):

* ``clean`` — fault-free network (the baseline atomicity check);
* ``crash-minority`` — a minority of replicas crash mid-run: the ABD
  majority argument says clients must not notice;
* ``delay-spike`` — deliveries exceed the bound for a window (the
  networked timing failure);
* ``partition`` — a minority of replicas is isolated for a window, then
  the partition heals;
* ``loss`` — messages vanish with some probability for a window (the
  retransmitting phases must still converge);
* ``client-crash`` — a *client* crashes mid-operation, exercising the
  pending-operation side of the checker (a crashed write may or may not
  have taken effect; both must be explainable).

Every random draw derives from ``Random(f"{seed}:{index}")``, so a
(seed, index) pair replays exactly — the same convention as
:mod:`repro.verify.fuzz`, which exposes this module via
``python -m repro.verify.fuzz --substrate net``.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs.tracer import Tracer, trace_scope

from ..sim import ops
from ..sim.failures import CrashSchedule
from ..sim.process import Program
from ..sim.registers import Register
from ..spec.histories import INVOKE, RESPOND, history_from_trace, pending_from_trace
from ..spec.linearizability import RegisterModel, check_linearizability
from .faults import DelaySpike, MessageLoss, NetFaultPlan, Partition
from .quorum import QuorumSystem

__all__ = [
    "PLAN_KINDS",
    "ScheduleOutcome",
    "NetFuzzReport",
    "fuzz_quorum_register",
]

PLAN_KINDS: Tuple[str, ...] = (
    "clean",
    "crash-minority",
    "delay-spike",
    "partition",
    "loss",
    "client-crash",
)


@dataclass(frozen=True)
class ScheduleOutcome:
    """One fuzzed schedule's verdict."""

    index: int
    plan: str
    linearizable: bool
    operations: int  # completed object operations across all registers
    pending: int  # unanswered invocations (crashed or stalled clients)
    status: str  # engine RunStatus value


@dataclass
class NetFuzzReport:
    """Aggregate of one fuzzing campaign over the quorum register."""

    seed: Any
    schedules: int
    outcomes: List[ScheduleOutcome] = field(default_factory=list)
    # Per-schedule trace chunks, ``(global index, records)`` — populated
    # only under ``fuzz_quorum_register(..., trace=True)`` and merged in
    # global-index order by :func:`repro.parallel.merge.merge_net_reports`.
    trace_chunks: List[Tuple[int, List[Any]]] = field(default_factory=list)

    @property
    def violations(self) -> List[ScheduleOutcome]:
        return [o for o in self.outcomes if not o.linearizable]

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_plan(self) -> List[Tuple[str, int, int]]:
        """(plan kind, schedules run, violations) in rotation order."""
        rows = []
        for kind in PLAN_KINDS:
            ran = [o for o in self.outcomes if o.plan == kind]
            bad = [o for o in ran if not o.linearizable]
            rows.append((kind, len(ran), len(bad)))
        return rows

    def summary(self) -> str:
        lines = [
            f"net fuzz: {self.schedules} schedules, seed={self.seed!r}, "
            f"{len(self.violations)} linearizability violations"
        ]
        for kind, ran, bad in self.by_plan():
            verdict = "ok" if bad == 0 else f"{bad} VIOLATIONS"
            lines.append(f"  {kind:<15} {ran:>5} schedules  {verdict}")
        return "\n".join(lines)


def _make_plan(
    kind: str, rng: random.Random, clients: int, replicas: int, bound: float
) -> Tuple[NetFaultPlan, Optional[CrashSchedule]]:
    """The fault environment for one schedule of the given plan kind."""
    replica_pids = list(range(clients, clients + replicas))
    if kind == "clean":
        return NetFaultPlan.none(), None
    if kind == "crash-minority":
        minority = replicas // 2
        victims = rng.sample(replica_pids, minority) if minority else []
        times = {pid: rng.uniform(0.0, 10.0 * bound) for pid in victims}
        return NetFaultPlan.none(), CrashSchedule(at_time=times)
    if kind == "delay-spike":
        start = rng.uniform(0.0, 5.0 * bound)
        spike = DelaySpike(
            start=start,
            end=start + rng.uniform(2.0, 6.0) * bound,
            stretch=rng.uniform(2.0, 5.0),
            extra=rng.uniform(0.0, 2.0 * bound),
        )
        return NetFaultPlan(spikes=(spike,)), None
    if kind == "partition":
        start = rng.uniform(0.0, 5.0 * bound)
        isolated = tuple(rng.sample(replica_pids, max(1, replicas // 2)))
        rest = tuple(
            pid for pid in range(clients + replicas) if pid not in isolated
        )
        partition = Partition(
            start=start,
            end=start + rng.uniform(2.0, 8.0) * bound,
            groups=(rest, isolated),
        )
        return NetFaultPlan(partitions=(partition,)), None
    if kind == "loss":
        start = rng.uniform(0.0, 5.0 * bound)
        loss = MessageLoss(
            rate=rng.uniform(0.05, 0.3),
            start=start,
            end=start + rng.uniform(2.0, 8.0) * bound,
        )
        return NetFaultPlan(losses=(loss,)), None
    if kind == "client-crash":
        victim = rng.randrange(clients)
        crash_at = rng.uniform(bound, 8.0 * bound)
        return NetFaultPlan.none(), CrashSchedule(at_time={victim: crash_at})
    raise ValueError(f"unknown plan kind {kind!r}")


def _client_workload(
    choices: Sequence[Tuple[str, int, Any]], registers: Sequence[Register]
) -> Program:
    """A register-level program executing pre-drawn reads and writes.

    Every operation is bracketed with the INVOKE/RESPOND labels the
    history extractor keys on; the quorum facade passes labels through,
    so invocation/response times bracket the full emulated operation.
    """
    for op_kind, reg_index, value in choices:
        register = registers[reg_index]
        if op_kind == "write":
            yield ops.label(INVOKE, (register.name, "write", (value,)))
            yield register.write(value)
            yield ops.label(RESPOND, (register.name, None))
        else:
            yield ops.label(INVOKE, (register.name, "read", ()))
            result = yield register.read()
            yield ops.label(RESPOND, (register.name, result))


def fuzz_quorum_register(
    schedules: int = 200,
    seed: Any = 0,
    clients: int = 2,
    replicas: int = 3,
    ops_per_client: int = 3,
    registers: int = 2,
    bound: float = 1.0,
    progress: Optional[Callable[[ScheduleOutcome], None]] = None,
    first_index: int = 0,
    trace: bool = False,
) -> NetFuzzReport:
    """Run ``schedules`` fuzzed net schedules; report linearizability.

    Raises nothing on violations — inspect :attr:`NetFuzzReport.ok` /
    :attr:`~NetFuzzReport.violations` (the CLI and tests turn those into
    exit codes and assertions).

    ``first_index`` offsets the global schedule index: every draw (RNG
    seed, plan-kind rotation, transport seed) derives from
    ``first_index + local``, so a shard covering ``[first_index,
    first_index + schedules)`` reproduces exactly that slice of the
    sequential campaign (see :mod:`repro.parallel`).

    ``trace=True`` records every schedule as a ``repro.obs`` trace chunk
    in :attr:`NetFuzzReport.trace_chunks` (net substrate: engine op
    spans, message send/deliver/drop lifecycles, quorum phases, fault
    windows).  Pure observation — the transport draws no extra RNG and
    consumes no sequence numbers for it, so verdicts are identical with
    or without tracing.
    """
    if first_index < 0:
        raise ValueError(f"first_index must be >= 0, got {first_index}")
    report = NetFuzzReport(seed=seed, schedules=schedules)
    tracer = Tracer() if trace else None
    for index in range(first_index, first_index + schedules):
        rng = random.Random(f"{seed}:{index}")
        kind = PLAN_KINDS[index % len(PLAN_KINDS)]
        faults, crashes = _make_plan(kind, rng, clients, replicas, bound)
        regs = [Register(f"r{i}") for i in range(registers)]
        values = itertools.count(1)
        programs = []
        for _pid in range(clients):
            choices: List[Tuple[str, int, Any]] = []
            for _ in range(ops_per_client):
                if rng.random() < 0.5:
                    choices.append(("write", rng.randrange(registers), next(values)))
                else:
                    choices.append(("read", rng.randrange(registers), None))
            programs.append(_client_workload(choices, regs))
        system = QuorumSystem(
            clients,
            replicas=replicas,
            bound=bound,
            seed=f"{seed}:{index}:transport",
            faults=faults,
            crashes=crashes,
            max_time=200.0 * bound,
        )
        if tracer is not None:
            tracer.run_marker(
                "net",
                index=index,
                plan=kind,
                seed=seed,
                pids=list(range(clients + replicas)),
            )
            for loss in faults.losses:
                tracer.window(
                    float(loss.start), float(loss.end),
                    None if loss.pids is None else sorted(loss.pids), "loss",
                )
            for spike in faults.spikes:
                tracer.window(
                    float(spike.start), float(spike.end),
                    None if spike.pids is None else sorted(spike.pids),
                    "spike",
                )
            for partition in faults.partitions:
                tracer.window(
                    float(partition.start), float(partition.end),
                    sorted(p for group in partition.groups for p in group),
                    "partition",
                )
            # The engine (and through it the transport) binds the ambient
            # tracer when it is built inside system.run().
            with trace_scope(tracer):
                result = system.run(programs)
        else:
            result = system.run(programs)
        linearizable = True
        operations = 0
        pending_count = 0
        for register in regs:
            history = history_from_trace(result.trace, obj=register.name)
            pending = pending_from_trace(result.trace, obj=register.name)
            check = check_linearizability(
                history, RegisterModel(initial=register.initial), pending=pending
            )
            linearizable = linearizable and check.ok
            operations += len(history)
            pending_count += len(pending)
        outcome = ScheduleOutcome(
            index=index,
            plan=kind,
            linearizable=linearizable,
            operations=operations,
            pending=pending_count,
            status=result.status.value,
        )
        if tracer is not None:
            if not linearizable:
                tracer.violation("linearizability", result.end_time)
            report.trace_chunks.append((index, tracer.take()))
        report.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return report
