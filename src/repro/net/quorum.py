"""ABD-style atomic registers emulated over crash-prone messages.

The converse of :mod:`repro.mp` (which builds channels *from* registers):
following Attiya–Bar-Noy–Dolev and Mostéfaoui–Raynal's time-efficient
formulation, a :class:`QuorumSystem` builds atomic read/write registers
*from* unreliable messages, so every register-only algorithm in this repo
— Algorithm 1 consensus, Fischer, Algorithm 3 mutex — runs over a
network without source changes.

Roles: ``clients`` (pids ``0..c-1``) run the algorithm programs;
``replicas`` (pids ``c..c+r-1``) each hold a timestamped copy of every
register.  Each value carries a timestamp ``(number, writer_pid)``,
ordered lexicographically, so concurrent writers are totally ordered.

* **write**: query a majority for the highest timestamp, then store the
  value under a strictly larger timestamp at a majority (majority-ack).
* **read**: query a majority, pick the timestamped maximum, then *write
  it back* to a majority before returning (read-repair) — without the
  write-back two sequential reads could see new-then-old, breaking
  atomicity.

Any two majorities intersect, so a write's timestamp is visible to every
later operation even when a *minority* of replicas has crashed — the
crash-minority assumption; lose a majority and operations block until a
partition heals (they never return wrong values).

The facade :meth:`QuorumSystem.emulate_registers` makes the emulation
invisible: it wraps a register-level program, intercepts its ``Read`` /
``Write`` ops and replaces each with the corresponding quorum phases,
passing delays, local work and labels straight through.
"""

# repro-lint: messages-only — this module IS the register emulation; it
# speaks raw Send/Recv and must never create real registers itself.

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Dict, Hashable, Optional, Sequence, Tuple

from ..sim import ops
from ..sim.engine import RunResult
from ..sim.failures import CrashSchedule
from ..sim.process import Program
from ..sim.scheduler import TieBreak
from ..sim.timing import ConstantTiming, TimingModel
from . import resilience
from .engine import NetEngine
from .faults import NetFaultPlan
from .transport import Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..sim.registers import Register

__all__ = ["QuorumSystem", "ZERO_TS"]

# Timestamp every replica starts from; strictly below any write's
# timestamp because writer pids are >= 0.
ZERO_TS: Tuple[int, int] = (0, -1)

# Message kinds (first element of every payload tuple).
_QUERY = "qr"
_QUERY_ACK = "qr-ack"
_UPDATE = "qw"
_UPDATE_ACK = "qw-ack"
_BYE = "bye"


class QuorumSystem:
    """A crash-prone message network emulating atomic registers.

    Parameters
    ----------
    clients:
        How many algorithm processes will run (pids ``0..clients-1``).
    replicas:
        How many register servers back the emulation; a minority of them
        may crash without affecting any client.
    bound:
        The per-link delivery bound (the networked ``Δ``); message
        handling costs and polling granularity are derived from it via
        :func:`repro.net.resilience.default_costs`.
    seed:
        Seeds the transport (delivery delays and loss draws).
    faults / crashes:
        The run's :class:`NetFaultPlan` and
        :class:`~repro.sim.failures.CrashSchedule` (crash *replica* pids
        for the crash-minority experiments, client pids to exercise
        pending operations).
    max_time:
        Engine run limit; also the replicas' default service lifetime —
        replicas retire early once every client has said goodbye, so
        well-behaved runs end long before this.
    fault_tolerance:
        The number of replica crashes the deployment is declared to
        survive.  Validated at construction: ``replicas >= 2*f + 1``
        must hold or no majority survives every crash pattern, and the
        system would wedge opaquely mid-run instead.  Defaults to the
        largest tolerable minority, ``(replicas - 1) // 2``.
    substrate:
        An explicit :class:`repro.serve.substrate.Substrate` to carry
        the messages instead of a fresh in-simulation ``Transport`` —
        this is how :mod:`repro.serve` runs the same quorum phases over
        real sockets.  A system built on a live substrate cannot
        :meth:`build_engine`; its programs are driven by
        :class:`repro.serve.driver.AsyncioDriver` instead.
    """

    def __init__(
        self,
        clients: int,
        replicas: int = 3,
        bound: float = 1.0,
        seed: Any = 0,
        faults: Optional[NetFaultPlan] = None,
        crashes: Optional[CrashSchedule] = None,
        timing: Optional[TimingModel] = None,
        delta: Optional[float] = None,
        max_time: float = 2_000.0,
        lifetime: Optional[float] = None,
        tie_break: Optional[TieBreak] = None,
        fault_tolerance: Optional[int] = None,
        substrate: Optional[Any] = None,
    ) -> None:
        if not isinstance(clients, int) or isinstance(clients, bool):
            raise TypeError(f"clients must be an int, got {clients!r}")
        if not isinstance(replicas, int) or isinstance(replicas, bool):
            raise TypeError(f"replicas must be an int, got {replicas!r}")
        if clients < 1:
            raise ValueError(f"need at least one client, got {clients}")
        if replicas < 1:
            raise ValueError(f"need at least one replica, got {replicas}")
        if fault_tolerance is None:
            # The tolerance this replica count actually provides: the
            # largest minority.
            fault_tolerance = (replicas - 1) // 2
        elif not isinstance(fault_tolerance, int) or isinstance(fault_tolerance, bool):
            raise TypeError(
                f"fault_tolerance must be an int, got {fault_tolerance!r}"
            )
        elif fault_tolerance < 0:
            raise ValueError(
                f"fault_tolerance must be >= 0, got {fault_tolerance}"
            )
        elif replicas < 2 * fault_tolerance + 1:
            # Fail here, with the arithmetic spelled out, instead of
            # wedging mid-run when a "tolerable" crash kills a majority.
            raise ValueError(
                f"tolerating f={fault_tolerance} crashed replicas needs a "
                f"majority to survive every crash pattern: replicas >= "
                f"2*f+1 = {2 * fault_tolerance + 1}, got {replicas}"
            )
        self.clients = clients
        self.replicas = replicas
        self.fault_tolerance = fault_tolerance
        self.majority = replicas // 2 + 1
        if substrate is not None and substrate.n != clients + replicas:
            raise ValueError(
                f"substrate has {substrate.n} endpoints but "
                f"{clients} clients + {replicas} replicas need "
                f"{clients + replicas}"
            )
        self.bound = float(substrate.bound if substrate is not None else bound)
        costs = resilience.default_costs(self.bound)
        self.send_cost = costs["send_cost"]
        self.recv_cost = costs["recv_cost"]
        self.poll = costs["poll"]
        # After this many empty polls (~2.5 bounds) assume the request or
        # its acks were lost and retransmit.
        self.retry_polls = 10
        self.client_pids: Tuple[int, ...] = tuple(range(clients))
        self.replica_pids: Tuple[int, ...] = tuple(range(clients, clients + replicas))
        self.faults = faults if faults is not None else NetFaultPlan.none()
        self.crashes = crashes
        # The substrate seam (see repro.serve.substrate): the quorum
        # phases only ever use the Substrate surface — peers, send,
        # collect, stats, tracer — so any conforming fabric slots in.
        # Default: the deterministic in-simulation Transport.
        if substrate is not None:
            self.transport = substrate
        else:
            self.transport = Transport(
                clients + replicas, bound=self.bound, seed=seed, faults=self.faults
            )
        self.timing = timing if timing is not None else ConstantTiming(self.send_cost)
        self.delta = delta if delta is not None else resilience.delta_net(self)
        self.max_time = max_time
        self.lifetime = max_time if lifetime is None else lifetime
        self.tie_break = tie_break
        self._req_ids = itertools.count(1)
        self._ran = False
        # Final replica stores, recorded as each replica retires (absent for
        # replicas that crashed or were cut off by the run limit).
        self.replica_stores: Dict[int, Dict[Hashable, Tuple[Tuple[int, int], Any]]] = {}

    # -- client-side quorum phases (yield-from these) -----------------------

    def read(self, pid: int, register: "Register") -> Program:
        """Emulated atomic read: query a majority, repair, return the max."""
        ts, value = yield from self._query(pid, register.name, register.initial)
        yield from self._update(pid, register.name, ts, value)  # read-repair
        return value

    def write(self, pid: int, register: "Register", value: Any) -> Program:
        """Emulated atomic write: outdo the majority-max timestamp."""
        (number, _), _ = yield from self._query(pid, register.name, register.initial)
        yield from self._update(pid, register.name, (number + 1, pid), value)
        return None

    def _query(self, pid: int, name: Hashable, initial: Any) -> Program:
        """Phase 1: collect (timestamp, value) from a majority of replicas."""
        req = next(self._req_ids)
        request = (_QUERY, req, name, initial)
        acks: Dict[int, Tuple[Tuple[int, int], Any]] = {}
        tracer = self.transport.tracer
        if tracer is not None:
            tracer.phase(pid, "query", name, "start")
        yield ops.broadcast(request, dests=self.replica_pids)
        polls = 0
        while len(acks) < self.majority:
            for src, message in (yield ops.recv()):
                if message[0] == _QUERY_ACK and message[1] == req:
                    acks[src] = (message[2], message[3])
            if len(acks) < self.majority:
                yield ops.delay(self.poll)
                polls += 1
                if polls % self.retry_polls == 0:
                    # Fair-lossy links: retransmit until a majority answers
                    # (replicas answer duplicates idempotently).
                    yield ops.broadcast(request, dests=self.replica_pids)
        self.transport.stats.quorum_rtts += 1
        if tracer is not None:
            tracer.phase(pid, "query", name, "end")
        return max(acks.values(), key=lambda pair: pair[0])

    def _update(self, pid: int, name: Hashable, ts: Tuple[int, int], value: Any) -> Program:
        """Phase 2: store (ts, value) at a majority of replicas."""
        req = next(self._req_ids)
        request = (_UPDATE, req, name, ts, value)
        acked: set = set()
        tracer = self.transport.tracer
        if tracer is not None:
            tracer.phase(pid, "update", name, "start")
        yield ops.broadcast(request, dests=self.replica_pids)
        polls = 0
        while len(acked) < self.majority:
            for src, message in (yield ops.recv()):
                if message[0] == _UPDATE_ACK and message[1] == req:
                    acked.add(src)
            if len(acked) < self.majority:
                yield ops.delay(self.poll)
                polls += 1
                if polls % self.retry_polls == 0:
                    yield ops.broadcast(request, dests=self.replica_pids)
        self.transport.stats.quorum_rtts += 1
        if tracer is not None:
            tracer.phase(pid, "update", name, "end")

    # -- the RegisterNamespace-compatible facade ----------------------------

    def emulate_registers(self, pid: int, program: Program) -> Program:
        """Run a register-level program over the quorum, unchanged.

        Intercepts the wrapped program's ``Read``/``Write`` ops and
        replaces each with the corresponding quorum phases; ``Delay``,
        ``LocalWork`` and ``Label`` ops pass straight through, so
        Algorithm 1/3 and Fischer — and their trace-reading checkers —
        work as on shared memory.  Read-modify-write ops are rejected:
        the ABD emulation implements atomic read/write registers only,
        exactly the primitive set the paper's theorems assume.
        """

        def emulated() -> Program:
            send_value: Any = None
            while True:
                try:
                    op = program.send(send_value)
                except StopIteration as stop:
                    # Retire the replicas this client no longer needs.
                    yield ops.broadcast((_BYE, pid), dests=self.replica_pids)
                    return stop.value
                if isinstance(op, ops.Read):
                    send_value = yield from self.read(pid, op.register)
                elif isinstance(op, ops.Write):
                    send_value = yield from self.write(pid, op.register, op.value)
                elif op.is_shared:
                    raise TypeError(
                        f"quorum emulation supports atomic read/write "
                        f"registers only, got {op!r}"
                    )
                else:
                    # Pass-through of the wrapped program's non-shared op.
                    send_value = yield op  # repro-lint: disable=TMF001 — op came from the wrapped program, already validated above

        return emulated()

    # -- replica ------------------------------------------------------------

    def replica(self, pid: int) -> Program:
        """One register server: answer queries/updates until clients retire.

        The store maps register name to ``(timestamp, value)``; an update
        is applied only when its timestamp is strictly larger (acks are
        sent either way — the quorum intersection argument needs the ack,
        not the overwrite).  The loop tracks its own virtual elapsed time
        from the known op costs — a conservative undercount, so a replica
        never retires before ``lifetime`` even if clients crashed without
        saying goodbye.

        Returns ``None`` (a replica is not a decider — the consensus spec
        reads non-``None`` returns as decisions); the final store lands in
        :attr:`replica_stores` instead.
        """
        store: Dict[Hashable, Tuple[Tuple[int, int], Any]] = {}
        byes: set = set()
        elapsed = 0.0
        while len(byes) < self.clients and elapsed < self.lifetime:
            messages = yield ops.recv()
            elapsed += self.recv_cost
            for src, message in messages:
                kind = message[0]
                if kind == _QUERY:
                    _, req, name, initial = message
                    ts, value = store.get(name, (ZERO_TS, initial))
                    yield ops.send(src, (_QUERY_ACK, req, ts, value))
                    elapsed += self.send_cost
                elif kind == _UPDATE:
                    _, req, name, ts, value = message
                    current = store.get(name)
                    if current is None or ts > current[0]:
                        store[name] = (ts, value)
                    yield ops.send(src, (_UPDATE_ACK, req))
                    elapsed += self.send_cost
                elif kind == _BYE:
                    byes.add(message[1])
            if len(byes) < self.clients:
                yield ops.delay(self.poll)
                elapsed += self.poll
        self.replica_stores[pid] = store  # repro-lint: disable=TMF003 — test-facing bookkeeping, not model state: the emulation's observable behaviour flows only through messages
        return None

    # -- running ------------------------------------------------------------

    def build_engine(self, client_programs: Sequence[Program]) -> NetEngine:
        """Spawn wrapped clients and replicas on a fresh :class:`NetEngine`."""
        if not isinstance(self.transport, Transport):
            raise RuntimeError(
                "this QuorumSystem is bound to a live substrate — drive its "
                "programs with repro.serve.AsyncioDriver, not a NetEngine"
            )
        if self._ran:
            raise RuntimeError(
                "QuorumSystem already ran — its transport is consumed; build "
                "a new system"
            )
        if len(client_programs) != self.clients:
            raise ValueError(
                f"expected {self.clients} client programs, got {len(client_programs)}"
            )
        self._ran = True
        engine = NetEngine(
            delta=self.delta,
            timing=self.timing,
            transport=self.transport,
            send_cost=self.send_cost,
            recv_cost=self.recv_cost,
            tie_break=self.tie_break,
            crashes=self.crashes,
            max_time=self.max_time,
        )
        if self.transport.tracer is None:
            # The system may be built outside a trace scope and run inside
            # one; adopt whatever tracer the engine resolved.
            self.transport.tracer = engine._tracer
        for pid, program in zip(self.client_pids, client_programs):
            engine.spawn(
                self.emulate_registers(pid, program), pid=pid, name=f"client{pid}"
            )
        for pid in self.replica_pids:
            engine.spawn(self.replica(pid), pid=pid, name=f"replica{pid}")
        return engine

    def run(self, client_programs: Sequence[Program]) -> RunResult:
        """Build the engine, run it, and return the result."""
        return self.build_engine(client_programs).run()

    def __repr__(self) -> str:
        return (
            f"QuorumSystem(clients={self.clients}, replicas={self.replicas}, "
            f"bound={self.bound}, majority={self.majority})"
        )
