"""Network fault plans — the message-passing mirror of :mod:`repro.sim.failures`.

The shared-memory model has one failure vocabulary: a *timing failure* is
a shared step exceeding ``Δ``, a *crash* silences a process forever.  The
networked model (paper §4, Discussion) translates both and adds the
failure modes registers cannot exhibit:

* :class:`DelaySpike` — deliveries exceed the link's delivery bound for a
  window.  This is the networked timing failure: the bound plays the role
  of ``Δ``, and a spike is exactly a window of steps that take longer
  than the known bound (cf. ``TimingFailureWindow``).
* :class:`MessageLoss` — messages silently vanish with some probability.
* :class:`Partition` — groups of processes that cannot reach each other
  for a window; cross-group messages are dropped.
* Crashes reuse :class:`repro.sim.failures.CrashSchedule` unchanged — a
  crashed process neither sends nor collects.

Like ``sim.failures``, everything here is immutable data.  The
:class:`repro.net.transport.Transport` consults the plan at each send;
the plan itself holds no state, so one plan can parameterize many runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["MessageLoss", "DelaySpike", "Partition", "NetFaultPlan"]


def _window_ok(start: float, end: float) -> None:
    if start < 0:
        raise ValueError(f"window start must be >= 0, got {start}")
    if end <= start:
        raise ValueError(f"window must have end > start, got [{start}, {end})")


def _touches(pids: Optional[Tuple[int, ...]], src: int, dst: int) -> bool:
    return pids is None or src in pids or dst in pids


@dataclass(frozen=True)
class MessageLoss:
    """Drop each affected message with probability ``rate`` during a window.

    ``pids=None`` affects every link; otherwise a link is affected when
    either endpoint is listed.  The drop decision is drawn from the
    transport's seeded RNG, so a given seed loses the same messages on
    every run.
    """

    rate: float
    start: float = 0.0
    end: float = math.inf
    pids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {self.rate}")
        if self.end <= self.start:
            raise ValueError(
                f"loss window must have end > start, got [{self.start}, {self.end})"
            )

    def affects(self, src: int, dst: int, now: float) -> bool:
        return self.start <= now < self.end and _touches(self.pids, src, dst)


@dataclass(frozen=True)
class DelaySpike:
    """Stretch deliveries past the bound for a window — a net timing failure.

    An affected message's nominal delay becomes
    ``nominal * stretch + extra``; with ``stretch > 1`` or ``extra > 0``
    the delivery may exceed the link's bound, which is precisely the
    networked analogue of a shared step exceeding ``Δ``.
    """

    start: float
    end: float
    stretch: float = 1.0
    extra: float = 0.0
    pids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _window_ok(self.start, self.end)
        if self.stretch < 1.0:
            raise ValueError(f"stretch must be >= 1, got {self.stretch}")
        if self.extra < 0.0:
            raise ValueError(f"extra must be >= 0, got {self.extra}")

    def affects(self, src: int, dst: int, now: float) -> bool:
        return self.start <= now < self.end and _touches(self.pids, src, dst)

    def apply(self, nominal: float) -> float:
        return nominal * self.stretch + self.extra


@dataclass(frozen=True)
class Partition:
    """Sever links between groups for a window; the partition then heals.

    ``groups`` are disjoint sets of pids; a message is dropped when its
    endpoints sit in *different* groups while the window is open.  Pids
    listed in no group are unrestricted (they can reach everyone) — list
    every pid when full isolation is intended.
    """

    start: float
    end: float
    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        _window_ok(self.start, self.end)
        seen = set()
        for group in self.groups:
            for pid in group:
                if pid in seen:
                    raise ValueError(f"pid {pid} appears in two partition groups")
                seen.add(pid)

    def _group_of(self, pid: int) -> Optional[int]:
        for index, group in enumerate(self.groups):
            if pid in group:
                return index
        return None

    def severs(self, src: int, dst: int, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        src_group = self._group_of(src)
        dst_group = self._group_of(dst)
        return src_group is not None and dst_group is not None and src_group != dst_group


@dataclass(frozen=True)
class NetFaultPlan:
    """The full fault environment of one networked run.

    The transport asks two questions per send: :meth:`drops` (partition
    or loss kills the message outright) and :meth:`delivery_delay` (delay
    spikes stretch the nominal delay, possibly past the bound).
    """

    losses: Tuple[MessageLoss, ...] = ()
    spikes: Tuple[DelaySpike, ...] = ()
    partitions: Tuple[Partition, ...] = ()

    @classmethod
    def none(cls) -> "NetFaultPlan":
        return cls()

    def drops(self, src: int, dst: int, now: float, rng) -> bool:
        """Whether a message sent now on (src, dst) is lost."""
        for partition in self.partitions:
            if partition.severs(src, dst, now):
                return True
        for loss in self.losses:
            if loss.affects(src, dst, now) and rng.random() < loss.rate:
                return True
        return False

    def delivery_delay(self, src: int, dst: int, now: float, nominal: float) -> float:
        """The nominal delay after every active spike has stretched it."""
        delay = nominal
        for spike in self.spikes:
            if spike.affects(src, dst, now):
                delay = spike.apply(delay)
        return delay

    @property
    def last_disruption_end(self) -> float:
        """When the last finite fault window closes (0.0 when none do).

        This is where the resilience definition's convergence clock starts:
        "a finite number of time units after all timing failures stop".
        Windows open forever (``end=inf``) are excluded — convergence is
        only promised once disruptions actually cease.
        """
        ends = [w.end for w in (*self.losses, *self.spikes, *self.partitions)]
        finite = [e for e in ends if math.isfinite(e)]
        return max(finite) if finite else 0.0
