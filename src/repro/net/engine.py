"""The network-aware engine: the timing-based engine plus a message fabric.

:class:`NetEngine` extends :class:`repro.sim.engine.Engine` with the three
message operations (:class:`~repro.sim.ops.Send`,
:class:`~repro.sim.ops.Broadcast`, :class:`~repro.sim.ops.Recv`).
Everything else — registers, delays, labels, crashes, tie-breaking,
run limits, determinism — is inherited unchanged, so programs may freely
mix shared-memory steps and messages (the :mod:`repro.mp` layer does the
former-from-the-latter; :mod:`repro.net.quorum` does the converse).

Timing: a ``Send``/``Broadcast`` costs ``send_cost`` local time (handing
the message to the network is a local action; the *delivery* delay is the
transport's job), a ``Recv`` costs ``recv_cost``.  Both must be positive
— a zero cost would let a polling loop livelock the discrete-event loop,
the same reason shared steps must take positive time.

A crashed process's queued messages stay undelivered on the transport
(its in-flight ``Recv`` is discarded by the base engine's stale-event
check), so a crash really does silence an endpoint mid-conversation.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

from ..sim.engine import Engine, RunResult
from ..sim.failures import CrashSchedule, MemoryFault
from ..sim.instrument import EngineProbe
from ..sim.ops import Broadcast, Op, Recv, Send
from ..sim.process import Process
from ..sim.registers import Memory
from ..sim.scheduler import TieBreak
from ..sim.timing import TimingModel
from ..sim.trace import EventKind
from repro.obs.tracer import Tracer
from .transport import Transport

__all__ = ["NetEngine"]


class NetEngine(Engine):
    """Discrete-event executor for programs that also pass messages.

    Trace records from this engine carry substrate ``"net"``.

    Parameters (beyond :class:`~repro.sim.engine.Engine`'s)
    ----------
    transport:
        The :class:`~repro.net.transport.Transport` carrying this run's
        messages.  One transport per engine — its RNG and queues are
        consumed by the run.
    send_cost / recv_cost:
        Local duration of handing a message to (collecting messages
        from) the network.  Default: ``bound / 20`` of the transport —
        small against the delivery bound, but positive.
    """

    _TRACE_SUBSTRATE = "net"

    def __init__(
        self,
        delta: float,
        timing: TimingModel,
        transport: Transport,
        send_cost: Optional[float] = None,
        recv_cost: Optional[float] = None,
        tie_break: Optional[TieBreak] = None,
        crashes: Optional[CrashSchedule] = None,
        max_time: float = math.inf,
        max_total_steps: float = math.inf,
        memory: Optional[Memory] = None,
        faults: Optional[List[MemoryFault]] = None,
        probe: Optional[EngineProbe] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(
            delta,
            timing,
            tie_break=tie_break,
            crashes=crashes,
            max_time=max_time,
            max_total_steps=max_total_steps,
            memory=memory,
            faults=faults,
            probe=probe,
            tracer=tracer,
        )
        self.transport = transport
        # An explicitly-passed tracer must also see the wire: mirror it
        # onto the transport (which defaulted to the ambient tracer).
        if tracer is not None:
            transport.tracer = self._tracer
        self.send_cost = send_cost if send_cost is not None else transport.bound / 20.0
        self.recv_cost = recv_cost if recv_cost is not None else transport.bound / 20.0
        if self.send_cost <= 0 or self.recv_cost <= 0:
            raise ValueError(
                f"send/recv costs must be positive, got "
                f"{self.send_cost}/{self.recv_cost} (zero would livelock "
                f"polling loops)"
            )

    def _duration_of(self, proc: Process, op: Op, now: float) -> float:
        if isinstance(op, (Send, Broadcast)):
            return self.send_cost
        if isinstance(op, Recv):
            return self.recv_cost
        return super()._duration_of(proc, op, now)

    def _complete(self, proc: Process, op: Optional[Op], issued: float, now: float) -> None:
        if isinstance(op, Send):
            self.transport.send(proc.pid, op.dest, op.payload, now)
            self._record(proc, EventKind.SEND, op.dest, op.payload, issued, now)
            proc.total_ops += 1
            self._resume(proc, None, now)
            return
        if isinstance(op, Broadcast):
            dests = op.dests if op.dests is not None else self.transport.peers(proc.pid)
            for dest in dests:
                self.transport.send(proc.pid, dest, op.payload, now)
            self._record(proc, EventKind.SEND, tuple(dests), op.payload, issued, now)
            proc.total_ops += 1
            self._resume(proc, None, now)
            return
        if isinstance(op, Recv):
            messages = self.transport.collect(proc.pid, now)
            self._record(proc, EventKind.RECV, None, messages, issued, now)
            proc.total_ops += 1
            self._resume(proc, messages, now)
            return
        super()._complete(proc, op, issued, now)

    def run(self) -> RunResult:
        result = super().run()
        probe = self._probe
        if probe is not None:
            stats = self.transport.stats
            probe.messages_sent += stats.messages_sent
            probe.messages_delivered += stats.messages_delivered
            probe.messages_dropped += stats.messages_dropped
            probe.quorum_rtts += stats.quorum_rtts
        return result
