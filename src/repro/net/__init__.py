"""Crash-prone message passing and quorum-emulated atomic registers.

The paper's Discussion (§4) names message-passing systems as the key
extension of its shared-memory results.  This package supplies that
substrate in both directions of the classic equivalence:

* :class:`NetEngine` + :class:`Transport` — a deterministic message
  layer over the discrete-event engine: ``send``/``broadcast``/``recv``
  ops, per-link delivery bounds (the networked ``Δ``), and a
  :class:`NetFaultPlan` of crashes, losses, delay spikes and partitions
  mirroring :mod:`repro.sim.failures`;
* :class:`QuorumSystem` — ABD/Mostéfaoui-Raynal atomic registers
  emulated over that unreliable network (majority-ack writes,
  read-repair reads, crash-minority tolerance), behind a facade that
  runs the repo's register-only algorithms unchanged;
* :mod:`repro.net.resilience` — the bridge mapping ``Δ`` to the
  delivery bound so the paper's experiments re-run networked;
* :mod:`repro.net.fuzz` — fuzzed net schedules checked against the
  linearizability spec (``python -m repro.verify.fuzz --substrate net``).
"""

from .engine import NetEngine
from .faults import DelaySpike, MessageLoss, NetFaultPlan, Partition
from .fuzz import NetFuzzReport, fuzz_quorum_register
from .quorum import QuorumSystem
from .resilience import (
    bound_for_delta,
    convergence_start,
    default_costs,
    delta_net,
    emulated_op_bound,
)
from .transport import NetStats, Transport

__all__ = [
    # message layer
    "NetEngine",
    "Transport",
    "NetStats",
    # faults
    "NetFaultPlan",
    "MessageLoss",
    "DelaySpike",
    "Partition",
    # quorum emulation
    "QuorumSystem",
    # resilience bridge
    "default_costs",
    "emulated_op_bound",
    "delta_net",
    "bound_for_delta",
    "convergence_start",
    # fuzzing
    "NetFuzzReport",
    "fuzz_quorum_register",
]
