"""The resilience bridge: mapping the paper's ``Δ`` onto the network.

In the shared-memory model every result is stated in multiples of ``Δ``,
the known bound on one shared step (decision within ``15·Δ``, doorway in
``O(Δ)``, convergence a finite number of time units after failures
stop).  On the networked substrate a "shared step" is an *emulated*
quorum operation — two majority phases of messages — so the unit the
theorems should be read in is the worst-case duration of one emulated
operation, which this module computes as :func:`emulated_op_bound`
(``Δ_net``).

The mapping is deliberately conservative, not tight: each phase is
bounded by the client handing the request to the network, the delivery
bound, the replica's polling granularity and serial service of every
concurrent client, the ack's delivery, and the client's own polling
granularity.  Experiments (networked E1/E8) then check the *empirical*
figures sit within a small constant of ``Δ_net`` — the same shape the
paper's ``c·Δ`` statements take.

Convergence works exactly as in the shared-memory model: after the last
fault window closes (:func:`convergence_start`), deliveries respect the
bound again and the resilience theorems' clocks start ticking.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from ..sim.failures import CrashSchedule
from .faults import NetFaultPlan

__all__ = [
    "default_costs",
    "emulated_op_bound",
    "delta_net",
    "bound_for_delta",
    "convergence_start",
]

# Local message-handling costs as fractions of the delivery bound.  The
# quorum system derives its costs from these same factors, so the bound
# formula and the running system cannot drift apart.
SEND_COST_FACTOR = 0.05
RECV_COST_FACTOR = 0.05
POLL_FACTOR = 0.25


def default_costs(bound: float) -> Dict[str, float]:
    """The send/recv/poll costs a quorum system derives from its bound."""
    if bound <= 0:
        raise ValueError(f"delivery bound must be positive, got {bound}")
    return {
        "send_cost": bound * SEND_COST_FACTOR,
        "recv_cost": bound * RECV_COST_FACTOR,
        "poll": bound * POLL_FACTOR,
    }


def emulated_op_bound(
    bound: float,
    clients: int = 1,
    send_cost: Optional[float] = None,
    recv_cost: Optional[float] = None,
    poll: Optional[float] = None,
) -> float:
    """``Δ_net``: worst-case duration of one emulated register operation.

    One ABD operation is two phases; one fault-free phase is bounded by

    * ``send_cost`` — the client hands the broadcast to the network;
    * ``bound`` — the slowest request delivery;
    * ``wake`` — the replica finishes its current service burst (up to
      one ack per concurrent client), polls, and collects;
    * ``clients·send_cost`` — our ack leaves after the burst ahead of it;
    * ``bound`` — the ack's delivery;
    * ``wake`` — the client's own poll-and-collect latency.
    """
    if clients < 1:
        raise ValueError(f"need at least one client, got {clients}")
    costs = default_costs(bound)
    send = costs["send_cost"] if send_cost is None else send_cost
    recv = costs["recv_cost"] if recv_cost is None else recv_cost
    poll_gap = costs["poll"] if poll is None else poll
    wake = clients * send + poll_gap + recv
    phase = send + bound + wake + clients * send + bound + wake
    return 2.0 * phase


def delta_net(system) -> float:
    """``Δ_net`` of a built :class:`~repro.net.quorum.QuorumSystem`."""
    return emulated_op_bound(
        system.bound,
        clients=system.clients,
        send_cost=system.send_cost,
        recv_cost=system.recv_cost,
        poll=system.poll,
    )


def bound_for_delta(delta: float, clients: int = 1) -> float:
    """The delivery bound whose ``Δ_net`` equals ``delta``.

    Inverse of :func:`emulated_op_bound` under the default cost factors
    (all costs scale linearly with the bound, so ``Δ_net`` does too).
    Use it to re-run a shared-memory experiment "at the same Δ" on the
    networked substrate.
    """
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    return delta / emulated_op_bound(1.0, clients=clients)


def convergence_start(
    faults: NetFaultPlan,
    crashes: Optional[CrashSchedule] = None,
    pids: Iterable[int] = (),
) -> float:
    """When the networked resilience clock starts.

    The paper promises convergence "a finite number of time units after
    all timing failures stop"; on the network that is the later of the
    last fault window's close and the last scheduled crash (a crash is
    instantaneous, but the survivors only start converging once it has
    happened).  Time-0 when nothing disruptive is scheduled.
    """
    start = faults.last_disruption_end
    if crashes is not None:
        for pid in pids:
            crash_time = crashes.crash_time(pid)
            if math.isfinite(crash_time):
                start = max(start, crash_time)
    return start
