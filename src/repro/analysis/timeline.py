"""ASCII timelines for traces.

A reproduction library lives or dies by how quickly a failing run can be
understood; :func:`render_timeline` turns a trace into a per-process lane
diagram —

::

    p0 |--====[########]--------........--|
    p1 |--==========....====[####]-------|
          ^ t=1.2 timing failure

— where ``=`` is entry code, ``#`` is the critical section, ``.`` is exit
code, ``-`` is the remainder section, ``!`` marks steps that exceeded Δ
and ``*`` marks injected memory faults.  Used by the examples and handy
in test failure output (`pytest -l` shows the rendered string).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim import ops
from ..sim.trace import EventKind, Trace

__all__ = ["render_timeline", "lane_for"]

_REMAINDER = "-"
_ENTRY = "="
_CS = "#"
_EXIT = "."
_FAILURE = "!"
_FAULT = "*"
_CRASH = "x"


def _phase_spans(trace: Trace, pid: int) -> List[Tuple[float, float, str]]:
    """(start, end, glyph) spans for one process's lifecycle phases."""
    spans: List[Tuple[float, float, str]] = []
    phase_start = 0.0
    phase = _REMAINDER
    for event in trace.for_pid(pid):
        if event.kind == EventKind.LABEL:
            next_phase: Optional[str] = None
            if event.label == ops.ENTRY_START:
                next_phase = _ENTRY
            elif event.label == ops.CS_ENTER:
                next_phase = _CS
            elif event.label == ops.CS_EXIT:
                next_phase = _EXIT
            elif event.label == ops.EXIT_DONE:
                next_phase = _REMAINDER
            if next_phase is not None:
                spans.append((phase_start, event.completed, phase))
                phase_start = event.completed
                phase = next_phase
        elif event.kind == EventKind.CRASH:
            spans.append((phase_start, event.completed, phase))
            spans.append((event.completed, trace.end_time, _CRASH))
            return spans
    spans.append((phase_start, trace.end_time, phase))
    return spans


def lane_for(trace: Trace, pid: int, width: int = 72) -> str:
    """One process's lane as a fixed-width string."""
    if width < 4:
        raise ValueError(f"width must be >= 4, got {width}")
    end = trace.end_time
    if end <= 0:
        return " " * width
    scale = width / end
    lane = [_REMAINDER] * width

    def col(t: float) -> int:
        return max(0, min(width - 1, int(t * scale)))

    for start, stop, glyph in _phase_spans(trace, pid):
        for i in range(col(start), col(stop) + 1):
            lane[i] = glyph
    # Overlay timing failures and the crash marker.
    for event in trace.for_pid(pid):
        if event.exceeded_delta:
            lane[col(event.completed)] = _FAILURE
        if event.kind == EventKind.CRASH:
            lane[col(event.completed)] = _CRASH
    return "".join(lane)


def render_timeline(trace: Trace, width: int = 72) -> str:
    """All processes' lanes plus a fault row and a time ruler."""
    pids = sorted(p for p in trace.pids() if p >= 0)
    if not pids:
        return "(empty trace)"
    lines = []
    for pid in pids:
        lines.append(f"p{pid:<3}|{lane_for(trace, pid, width)}|")
    # Injected memory faults get their own row.
    faults = [e for e in trace if e.kind == EventKind.FAULT]
    if faults:
        end = trace.end_time or 1.0
        row = [" "] * width
        for event in faults:
            row[max(0, min(width - 1, int(event.completed / end * width)))] = _FAULT
        lines.append(f"flt |{''.join(row)}|")
    end = trace.end_time
    ruler = f"    |0{' ' * (width - len(f'{end:.1f}') - 1)}{end:.1f}|"
    lines.append(ruler)
    lines.append(
        "     legend: = entry   # critical section   . exit   - remainder   "
        "! >Δ step   x crash   * fault"
    )
    return "\n".join(lines)
