"""Small statistics helpers for experiment tables (no numpy required —
the harness must run identically everywhere, and the sample sizes are
tiny)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

__all__ = ["Summary", "summarize", "percentile", "geometric_mean", "speedup"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not (0.0 <= q <= 100.0):
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample set."""

    count: int
    mean: float
    minimum: float
    median: float
    p95: float
    maximum: float

    def __repr__(self) -> str:
        return (
            f"Summary(n={self.count}, mean={self.mean:.3f}, min={self.minimum:.3f}, "
            f"med={self.median:.3f}, p95={self.p95:.3f}, max={self.maximum:.3f})"
        )


def summarize(samples: Iterable[float]) -> Summary:
    values: List[float] = list(samples)
    if not values:
        raise ValueError("summarize of empty sample set")
    return Summary(
        count=len(values),
        mean=sum(values) / len(values),
        minimum=min(values),
        median=percentile(values, 50),
        p95=percentile(values, 95),
        maximum=max(values),
    )


def geometric_mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("geometric mean of empty sample set")
    if any(s <= 0 for s in samples):
        raise ValueError("geometric mean requires positive samples")
    return math.exp(sum(math.log(s) for s in samples) / len(samples))


def speedup(baseline: float, candidate: float) -> Optional[float]:
    """baseline / candidate (None when the candidate never finished)."""
    if candidate <= 0 or math.isnan(candidate):
        return None
    return baseline / candidate
