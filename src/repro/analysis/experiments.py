"""The per-experiment drivers (E1..E13 from DESIGN.md §4).

Each ``run_eN`` function executes the workloads for one reproduced
table/figure and returns an :class:`~repro.analysis.tables.ExperimentTable`
whose rows are what EXPERIMENTS.md records.  The benchmark suite calls the
same drivers (usually with reduced parameters) and asserts the *shape*
claims — who wins, by what rough factor, where behaviour changes.

Run everything from the command line::

    python -m repro.analysis.experiments            # all experiments
    python -m repro.analysis.experiments E1 E7      # a subset
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence

from ..algorithms import (
    AatConsensus,
    AtConsensus,
    BakeryLock,
    BarDavidLock,
    FilterLock,
    FischerLock,
    LamportFastLock,
    MutexAlgorithm,
    TournamentLock,
    mutex_session,
)
from ..core.consensus import TimeResilientConsensus, labeled_decision, run_consensus
from ..core.derived import LeaderElection, MultivaluedConsensus, Renaming
from ..core.derived import TestAndSet as TasObject
from ..core.mutex import TimeResilientMutex, default_time_resilient_mutex
from ..core.optimistic import AimdEstimator, FixedEstimate, tune
from ..core.resilience import check_resilience
from ..net import (
    DelaySpike,
    NetFaultPlan,
    Partition,
    QuorumSystem,
    convergence_start,
)
from ..sim import (
    ConstantTiming,
    CrashSchedule,
    Engine,
    FailureWindowTiming,
    HookTiming,
    PerProcessTiming,
    PidOrderTieBreak,
    RandomTieBreak,
    RunStatus,
    UniformTiming,
    failure_window,
    stall_write_to,
)
from ..sim.adversary import round_conflict_hook
from ..sim.registers import RegisterNamespace
from ..spec import check_consensus, check_mutual_exclusion, time_complexity
from ..verify import (
    AgreementProperty,
    MutualExclusionProperty,
    ValidityProperty,
    explore,
)
from ..workloads import consensus_inputs, timing_for
from .metrics import delay_count, rounds_used, solo_steps_to_decision
from .tables import ExperimentTable

__all__ = [
    "run_e1", "run_e2", "run_e3", "run_e4", "run_e5", "run_e6", "run_e7",
    "run_e8", "run_e9", "run_e10", "run_e11", "run_e12", "run_e13",
    "run_e1_net", "run_e8_net",
    "ALL_EXPERIMENTS", "run_all", "main",
]

DELTA = 1.0


def _run_lock(
    lock: MutexAlgorithm,
    n: int,
    sessions: int,
    timing,
    cs: float = 0.2,
    ncs: float = 0.2,
    max_time: float = 100_000.0,
    tie=None,
    starts: Optional[Sequence[float]] = None,
):
    engine = Engine(delta=DELTA, timing=timing, max_time=max_time, tie_break=tie)
    for pid in range(n):
        engine.spawn(
            mutex_session(
                lock, pid, sessions, cs_duration=cs, ncs_duration=ncs,
                start_delay=0.0 if starts is None else starts[pid],
            ),
            pid=pid,
        )
    return engine.run()


# ---------------------------------------------------------------------------
# E1 — Theorem 2.1(1): decision within 15·Δ without timing failures.
# ---------------------------------------------------------------------------

def run_e1(ns: Sequence[int] = (1, 2, 4, 8, 16, 32), seeds: Sequence[int] = (0, 1, 2)) -> ExperimentTable:
    table = ExperimentTable(
        "E1",
        "Consensus decision time without timing failures (bound: 15·Δ)",
        ["n", "worst time (Δ)", "mean time (Δ)", "worst rounds", "within 15Δ"],
    )
    for n in ns:
        worst = 0.0
        total = 0.0
        count = 0
        worst_rounds = 0
        for seed in seeds:
            r = run_consensus(
                consensus_inputs(n, "split"),
                delta=DELTA,
                timing=UniformTiming(0.2 * DELTA, DELTA, seed=seed),
                tie_break=RandomTieBreak(seed),
            )
            assert r.verdict.ok, r.verdict
            worst = max(worst, r.max_decision_time_in_deltas)
            for pid in range(n):
                total += r.run.trace.decision_time(pid) / DELTA
                count += 1
                worst_rounds = max(worst_rounds, rounds_used(r.run.trace, pid))
        table.add_row(n, worst, total / count, worst_rounds, worst <= 15.0)
    table.notes.append(
        "split inputs (maximal conflict); uniform step jitter within Δ"
    )
    return table


# ---------------------------------------------------------------------------
# E2 — Theorem 2.1(2): after failures stop, decided within ~2 rounds.
# ---------------------------------------------------------------------------

def run_e2(window_lengths: Sequence[float] = (2.0, 5.0, 10.0, 20.0), n: int = 3) -> ExperimentTable:
    table = ExperimentTable(
        "E2",
        "Recovery after a timing-failure window (bound: decide by round r+1)",
        ["window (Δ)", "decided", "post-failure rounds (worst)",
         "post-failure time (Δ)", "within bound"],
    )
    for length in window_lengths:
        timing = FailureWindowTiming(
            ConstantTiming(0.8 * DELTA),
            [failure_window(0.0, length * DELTA, stretch=30.0)],
        )
        r = run_consensus(
            consensus_inputs(n, "split"), delta=DELTA, timing=timing,
            max_time=50_000.0,
        )
        assert r.verdict.safe
        trace = r.run.trace
        last_failure = trace.last_failure_time
        worst_rounds = 0
        worst_time = 0.0
        for pid in range(n):
            late_delays = len(
                [e for e in trace.for_pid(pid)
                 if e.kind == "delay" and e.issued >= last_failure]
            )
            worst_rounds = max(worst_rounds, late_delays + 1)
            t = trace.decision_time(pid)
            if t is not None:
                worst_time = max(worst_time, (t - last_failure) / DELTA)
        table.add_row(
            length, r.verdict.terminated, worst_rounds, worst_time,
            worst_rounds <= 2,
        )
    table.notes.append("post-failure rounds = delays issued after the last failure + 1")
    return table


# ---------------------------------------------------------------------------
# E3 — Theorem 2.1(3)/2.4: wait-freedom under crashes.
# ---------------------------------------------------------------------------

def run_e3(ns: Sequence[int] = (2, 4, 8, 16)) -> ExperimentTable:
    table = ExperimentTable(
        "E3",
        "Wait-freedom: survivors decide despite k crash failures",
        ["n", "crashed k", "survivors decided", "worst time (Δ)", "agreed"],
    )
    for n in ns:
        for k in sorted({1, n // 2, n - 1}):
            if k < 1:
                continue
            # Crash within the first few steps, so every scheduled crash
            # really happens (a process that decides first never crashes).
            crashes = CrashSchedule(
                after_steps={pid: 1 + (pid % 4) for pid in range(k)}
            )
            r = run_consensus(
                consensus_inputs(n, "split"),
                delta=DELTA,
                timing=UniformTiming(0.2, 1.0, seed=n * 31 + k),
                crashes=crashes,
            )
            assert r.verdict.ok, r.verdict
            survivors = n - k
            crashed = set(r.run.crashed_pids)
            decided = len([pid for pid in r.decisions if pid not in crashed])
            table.add_row(
                n, k, f"{decided}/{survivors}",
                r.max_decision_time_in_deltas, r.verdict.agreed,
            )
    return table


# ---------------------------------------------------------------------------
# E4 — Theorem 2.1(4): the 7-step contention-free fast path.
# ---------------------------------------------------------------------------

def run_e4() -> ExperimentTable:
    table = ExperimentTable(
        "E4",
        "Contention-free fast path (bound: 7 own steps, no delay)",
        ["scenario", "steps to decide", "delay stmts", "decided"],
    )
    # Solo, clean timing.
    r = run_consensus([1], delta=DELTA, timing=ConstantTiming(0.8))
    table.add_row("solo, clean", solo_steps_to_decision(r.run.trace, 0),
                  delay_count(r.run.trace, 0), True)
    # Solo, while the whole system violates Δ (failures don't matter solo).
    timing = FailureWindowTiming(
        ConstantTiming(0.8), [failure_window(0.0, 1000.0, stretch=10.0)]
    )
    r = run_consensus([1], delta=DELTA, timing=timing, max_time=10_000.0)
    table.add_row("solo, during timing failures",
                  solo_steps_to_decision(r.run.trace, 0),
                  delay_count(r.run.trace, 0), True)
    # Late arrival after a standing decision.
    r = run_consensus([1, 1], delta=DELTA, timing=ConstantTiming(0.8),
                      start_times=[0.0, 40.0])
    table.add_row("late arrival (decision standing)",
                  solo_steps_to_decision(r.run.trace, 1),
                  delay_count(r.run.trace, 1), True)
    # Unanimous burst: round 1 decides, no delays anywhere.
    r = run_consensus([1, 1, 1, 1], delta=DELTA, timing=ConstantTiming(0.8))
    table.add_row("unanimous x4",
                  max(solo_steps_to_decision(r.run.trace, p) for p in range(4)),
                  delay_count(r.run.trace), True)
    return table


# ---------------------------------------------------------------------------
# E5 — Theorem 2.1(5): unbounded participants; flat per-process time.
# ---------------------------------------------------------------------------

def run_e5(ns: Sequence[int] = (2, 8, 32, 128)) -> ExperimentTable:
    table = ExperimentTable(
        "E5",
        "Scaling in n: per-process decision time flat, total steps linear",
        ["n", "worst time (Δ)", "total shared steps", "steps per process"],
    )
    for n in ns:
        r = run_consensus(
            consensus_inputs(n, "split"), delta=DELTA, timing=ConstantTiming(0.8)
        )
        assert r.verdict.ok
        steps = r.run.trace.shared_step_count()
        table.add_row(n, r.max_decision_time_in_deltas, steps, steps / n)
    table.notes.append("no process ever reads n: participation is open")
    return table


# ---------------------------------------------------------------------------
# E6 — Theorems 2.2/2.3: safety, exhaustively and statistically.
# ---------------------------------------------------------------------------

def run_e6(random_seeds: int = 200, mc_max_ops: int = 28) -> ExperimentTable:
    table = ExperimentTable(
        "E6",
        "Safety of Algorithm 1 (validity + agreement) under adversity",
        ["check", "executions / states", "violations"],
    )
    # Exhaustive: n=2, conflicting inputs, bounded rounds.
    consensus = TimeResilientConsensus(delta=DELTA, max_rounds=2)
    inputs = {0: 0, 1: 1}
    factories = {
        pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
        for pid in inputs
    }
    res = explore(
        factories, [AgreementProperty(), ValidityProperty(inputs)],
        max_ops=mc_max_ops,
    )
    table.add_row("model checking n=2 (all interleavings)",
                  f"{res.states} states", len(res.violations))
    # Randomized: failure windows + jitter + crashes.
    violations = 0
    for seed in range(random_seeds):
        timing = FailureWindowTiming(
            UniformTiming(0.05, 1.0, seed=seed),
            [failure_window(float(seed % 5), float(seed % 5) + 4.0,
                            stretch=20.0)],
        )
        crashes = (
            CrashSchedule(after_steps={seed % 3: seed % 7})
            if seed % 2 == 0
            else None
        )
        r = run_consensus(
            consensus_inputs(3, "random", seed=seed), delta=DELTA,
            timing=timing, tie_break=RandomTieBreak(seed), crashes=crashes,
            max_time=5_000.0,
        )
        if not r.verdict.safe:
            violations += 1
    table.add_row(f"randomized adversity ({random_seeds} seeds)",
                  f"{random_seeds} runs", violations)
    table.notes.append("contrast: the same schedules break AT consensus — see E13")
    return table


# ---------------------------------------------------------------------------
# E7 — §3 headline: time complexity O(Δ) vs asynchronous baselines.
# ---------------------------------------------------------------------------

def _lock_for(name: str, n: int) -> MutexAlgorithm:
    ns = RegisterNamespace(("e7", name, n))
    if name == "alg3":
        return default_time_resilient_mutex(n, delta=DELTA, namespace=ns)
    if name == "fischer":
        return FischerLock(delta=DELTA, namespace=ns)
    if name == "lamport_fast":
        return LamportFastLock(n, namespace=ns)
    if name == "bakery":
        return BakeryLock(n, namespace=ns)
    if name == "tournament":
        return TournamentLock(n, namespace=ns)
    if name == "filter":
        return FilterLock(n, namespace=ns)
    raise ValueError(name)


def run_e7(ns: Sequence[int] = (2, 4, 8, 16), sessions: int = 3) -> ExperimentTable:
    table = ExperimentTable(
        "E7",
        "Mutex time complexity (paper's metric) without timing failures",
        ["algorithm"] + [f"n={n}" for n in ns] + ["grows with n"],
    )
    locks = ["alg3", "fischer", "lamport_fast", "tournament", "bakery", "filter"]
    for name in locks:
        metrics = []
        for n in ns:
            lock = _lock_for(name, n)
            res = _run_lock(lock, n, sessions, ConstantTiming(0.2 * DELTA))
            assert res.status is RunStatus.COMPLETED, (name, n)
            assert check_mutual_exclusion(res.trace) == []
            metrics.append(time_complexity(res.trace) / DELTA)
        grows = metrics[-1] > metrics[0] * 2.0
        table.add_row(name, *metrics, grows)
    table.notes.append(
        "metric: longest interval with a waiter and an empty CS, in Δ units; "
        "timing-based locks stay O(Δ), scan-based locks grow with n"
    )
    return table


# ---------------------------------------------------------------------------
# E8 — Theorems 3.2/3.3: convergence after a doorway breach.
# ---------------------------------------------------------------------------

def _flood_run(variant: str, n: int = 5, victim: int = 0, max_time: float = 400.0):
    ns = RegisterNamespace(("e8", variant))
    if variant == "deadlock_free":
        inner: MutexAlgorithm = LamportFastLock(n, namespace=ns.child("lf"))
    else:
        inner = BarDavidLock(
            LamportFastLock(n, namespace=ns.child("lf")), n,
            namespace=ns.child("gate"),
        )
    lock = TimeResilientMutex(inner, delta=DELTA, namespace=ns.child("door"))
    base = PerProcessTiming({victim: DELTA}, default=0.05 * DELTA)
    hook = stall_write_to(lock.x.name, duration=2.5 * DELTA, pids=[victim], count=1)
    engine = Engine(
        delta=DELTA, timing=HookTiming(base, hook), max_time=max_time,
        tie_break=PidOrderTieBreak([1, 2, 3, 4, victim]),
    )
    for pid in range(n):
        sessions = 1 if pid == victim else 10_000
        start = 0.0 if pid in (victim, 1) else 4.0
        engine.spawn(
            mutex_session(lock, pid, sessions, cs_duration=0.05,
                          ncs_duration=0.0, start_delay=start),
            pid=pid,
        )
    return engine.run()


def run_e8() -> ExperimentTable:
    table = ExperimentTable(
        "E8",
        "Convergence after a doorway breach: deadlock-free vs starvation-free A",
        ["embedded A", "exclusion held", "victim drained at (Δ)",
         "victim drain vs SF (x)", "total CS entries"],
    )
    results = {}
    for variant in ("starvation_free", "deadlock_free"):
        res = _flood_run(variant)
        entries = res.trace.cs_intervals(pid=0)
        drained = entries[0].enter / DELTA if entries else None
        results[variant] = (res, drained)
    sf_drain = results["starvation_free"][1]
    for variant in ("starvation_free", "deadlock_free"):
        res, drained = results[variant]
        ratio = (drained / sf_drain) if (drained and sf_drain) else None
        table.add_row(
            "bar_david(lamport_fast)" if variant == "starvation_free" else "lamport_fast",
            check_mutual_exclusion(res.trace) == [],
            drained,
            ratio,
            len(res.trace.cs_intervals()),
        )
    table.notes.append(
        "Theorem 3.2 is an existence claim (no convergence bound exists for "
        "deadlock-free A); with a duration-bounded adversary we measure the "
        "victim's drain-time blow-up rather than outright non-termination"
    )
    return table


# ---------------------------------------------------------------------------
# E9 — Theorem 3.1: register counts vs the n lower bound.
# ---------------------------------------------------------------------------

def run_e9(n: int = 8) -> ExperimentTable:
    table = ExperimentTable(
        "E9",
        f"Shared registers used (n = {n}; Theorem 3.1 lower bound: n for "
        f"time-resilient mutex)",
        ["algorithm", "claimed", "touched in run", ">= n", "resilient"],
    )
    entries = [
        ("fischer", FischerLock(delta=DELTA), False),
        ("lamport_fast", LamportFastLock(n), False),
        ("bakery", BakeryLock(n), False),
        ("tournament", TournamentLock(n), False),
        ("bar_david(lamport)", BarDavidLock(LamportFastLock(n), n), False),
        ("alg3 (time-resilient)", default_time_resilient_mutex(n, delta=DELTA), True),
    ]
    for name, lock, resilient in entries:
        res = _run_lock(lock, n, 2, ConstantTiming(0.3))
        claimed = lock.register_count(n)
        touched = res.memory.register_count
        table.add_row(name, claimed, touched,
                      claimed is not None and claimed >= n, resilient)
    table.notes.append(
        "Fischer's single register is exactly what Theorem 3.1 forbids for "
        "time-resilient algorithms; Algorithm 3 pays the Θ(n) the bound demands"
    )
    return table


# ---------------------------------------------------------------------------
# E10 — optimistic(Δ): estimate sweep and AIMD tuning.
# ---------------------------------------------------------------------------

def run_e10(
    ratios: Sequence[float] = (0.1, 0.25, 0.5, 0.9, 1.0, 2.0, 5.0),
    cap: float = 200.0,
) -> ExperimentTable:
    """Sweep the delay estimate against the worst legal schedule.

    Under :func:`~repro.sim.adversary.round_conflict_hook` (every step
    within Δ, i.e. zero timing failures) the behaviour has a sharp
    threshold: estimates below Δ lose every round — the run is capped,
    undecided, but *safe* — while estimates at or above Δ decide in round
    2 with latency growing linearly in the estimate.  That cliff-then-
    slope is the quantitative case for tuning optimistic(Δ) online.
    """
    table = ExperimentTable(
        "E10",
        "optimistic(Δ) vs the worst legal schedule (true Δ = 1, cap "
        f"{cap:.0f}Δ)",
        ["estimate/Δ", "decided", "time (Δ)", "rounds (p0)", "safe"],
    )

    def one_instance(estimate: float):
        timing = HookTiming(
            ConstantTiming(0.01 * DELTA), round_conflict_hook(DELTA)
        )
        r = run_consensus(
            [0, 1], delta=DELTA, timing=timing,
            algorithm_delta=estimate, max_time=cap * DELTA,
        )
        decided = r.verdict.terminated
        time = (r.max_decision_time or cap * DELTA) / DELTA
        return r.verdict.safe, decided, time, rounds_used(r.run.trace, 0)

    for ratio in ratios:
        safe, decided, time, rounds = one_instance(ratio * DELTA)
        table.add_row(ratio, decided, time if decided else None,
                      rounds, safe)

    # AIMD tuning: start far too small; failures double the estimate until
    # it crosses Δ, then the run decides promptly every time.
    estimator = AimdEstimator(initial=0.05 * DELTA, increase_factor=2.0,
                              decrease_step=0.02 * DELTA, patience=5)

    def tuned_instance(estimate: float):
        ok, decided, t, rds = one_instance(estimate)
        return (decided and rds <= 2), t

    steps = tune(estimator, tuned_instance, instances=20)
    first_success = next((s.instance for s in steps if s.success), None)
    table.notes.append(
        f"AIMD from 0.05Δ: first success at instance {first_success}, "
        f"final estimate {estimator.current():.2f}Δ (the knee sits at Δ); "
        f"safety held at every estimate"
    )
    return table


# ---------------------------------------------------------------------------
# E11 — vs the unknown-bound algorithm of [3].
# ---------------------------------------------------------------------------

def run_e11(est_ratios: Sequence[float] = (1.0, 0.25, 0.0625, 0.015625)) -> ExperimentTable:
    """Known Δ vs unknown bound, against the worst legal schedule.

    Both algorithms face :func:`~repro.sim.adversary.round_conflict_hook`
    (all steps within Δ).  Algorithm 1, knowing Δ, decides in round 2 at
    ``c·Δ``.  The unknown-bound algorithm must *discover* Δ by doubling:
    it loses one round per doubling, so its decision time grows by
    ``log2(Δ / est0)`` rounds — the separation the lower bound of [3]
    proves unavoidable in the unknown-bound model.
    """
    table = ExperimentTable(
        "E11",
        "Known Δ (Algorithm 1) vs unknown bound (AAT doubling estimates)",
        ["initial est/Δ", "alg1 time (Δ)", "alg1 rounds", "aat time (Δ)",
         "aat rounds", "aat/alg1"],
    )

    def adversarial_timing():
        return HookTiming(ConstantTiming(0.01 * DELTA), round_conflict_hook(DELTA))

    r1 = run_consensus([0, 1], delta=DELTA, timing=adversarial_timing())
    assert r1.verdict.ok
    alg1_time = r1.max_decision_time_in_deltas
    alg1_rounds = rounds_used(r1.run.trace, 0)
    for ratio in est_ratios:
        algo = AatConsensus(initial_estimate=ratio * DELTA,
                            namespace=RegisterNamespace(("e11", ratio)))
        engine = Engine(delta=DELTA, timing=adversarial_timing(),
                        max_time=50_000.0)
        for pid, v in enumerate([0, 1]):
            engine.spawn(algo.propose(pid, v), pid=pid)
        res = engine.run()
        decisions = res.trace.decisions()
        worst = max(t for t, _ in decisions.values()) / DELTA
        aat_rounds = rounds_used(res.trace, 0)
        table.add_row(ratio, alg1_time, alg1_rounds, worst, aat_rounds,
                      worst / alg1_time)
    table.notes.append(
        "every step in these runs is within Δ — the adversary needs no "
        "timing failures, only worst-case (legal) step durations"
    )
    return table


# ---------------------------------------------------------------------------
# E12 — derived wait-free objects under failure injection.
# ---------------------------------------------------------------------------

def run_e12(n: int = 4) -> ExperimentTable:
    table = ExperimentTable(
        "E12",
        f"Derived objects (n = {n}): latency and safety, clean vs failures",
        ["object", "clean time (Δ)", "with failures (Δ)", "safe under failures"],
    )
    # A system-wide window mid-run: everyone's steps blow through Δ.
    windows = [failure_window(1.0, 7.0, stretch=10.0)]

    def election_run(timing):
        el = LeaderElection(n=n, delta=DELTA,
                            namespace=RegisterNamespace(("e12", "el", id(timing))))
        eng = Engine(delta=DELTA, timing=timing, max_time=50_000.0)
        for pid in range(n):
            eng.spawn(el.elect(pid), pid=pid)
        res = eng.run()
        leaders = set(res.returns.values())
        return res.end_time / DELTA, len(leaders) == 1

    def tas_run(timing):
        tas = TasObject(n=n, delta=DELTA,
                        namespace=RegisterNamespace(("e12", "tas", id(timing))))
        eng = Engine(delta=DELTA, timing=timing, max_time=50_000.0)
        for pid in range(n):
            eng.spawn(tas.test_and_set(pid), pid=pid)
        res = eng.run()
        wins = [v for v in res.returns.values() if v == 0]
        return res.end_time / DELTA, len(wins) == 1

    def renaming_run(timing):
        rn = Renaming(n=n, delta=DELTA,
                      namespace=RegisterNamespace(("e12", "rn", id(timing))))
        eng = Engine(delta=DELTA, timing=timing, max_time=50_000.0)
        for pid in range(n):
            eng.spawn(rn.acquire(pid), pid=pid)
        res = eng.run()
        names = list(res.returns.values())
        return res.end_time / DELTA, len(names) == len(set(names))

    for name, runner in (
        ("leader election", election_run),
        ("test-and-set", tas_run),
        ("n-renaming", renaming_run),
    ):
        clean_time, clean_ok = runner(ConstantTiming(0.5))
        assert clean_ok
        fail_timing = FailureWindowTiming(ConstantTiming(0.5), windows)
        fail_time, fail_ok = runner(fail_timing)
        table.add_row(name, clean_time, fail_time, fail_ok)
    table.notes.append("latency = end-to-end completion of all n participants")
    return table


# ---------------------------------------------------------------------------
# E13 — Fischer violated vs Algorithm 3 immune (model checking).
# ---------------------------------------------------------------------------

def run_e13(max_ops: int = 26) -> ExperimentTable:
    table = ExperimentTable(
        "E13",
        "Mutual exclusion under arbitrary asynchrony (= timing failures)",
        ["algorithm", "states explored", "violating interleavings",
         "shortest witness"],
    )
    # Fischer: count every violating interleaving up to the bound.
    fischer = FischerLock(delta=DELTA, namespace=RegisterNamespace(("e13", "f")))
    fischer_factories = {
        pid: (lambda p: mutex_session(fischer, p, sessions=1, cs_duration=1.0))
        for pid in range(2)
    }
    res_f = explore(fischer_factories, [MutualExclusionProperty()],
                    max_ops=max_ops, stop_at_first_violation=False,
                    max_states=300_000)
    shortest = min((len(v.schedule) for v in res_f.violations), default=None)
    table.add_row("fischer (Algorithm 2)", res_f.states, len(res_f.violations),
                  shortest)
    # Algorithm 3: zero violations, exhaustively.
    lock3 = default_time_resilient_mutex(
        2, delta=DELTA, namespace=RegisterNamespace(("e13", "a3"))
    )
    alg3_factories = {
        pid: (lambda p: mutex_session(lock3, p, sessions=1, cs_duration=1.0))
        for pid in range(2)
    }
    res_3 = explore(alg3_factories, [MutualExclusionProperty()],
                    max_ops=max_ops, max_states=300_000)
    table.add_row("Algorithm 3", res_3.states, len(res_3.violations), None)
    table.notes.append(
        "asynchronous interleavings are exactly executions with unrestricted "
        "timing failures; Fischer admits violations, Algorithm 3 none"
    )
    return table


# ---------------------------------------------------------------------------
# E1N — E1 on the networked substrate: decision within 15·Δ_net.
# ---------------------------------------------------------------------------

def run_e1_net(
    ns: Sequence[int] = (2, 3), seeds: Sequence[int] = (0, 1)
) -> ExperimentTable:
    """E1 re-run over quorum-emulated registers (unit: ``Δ_net``).

    The resilience bridge (:mod:`repro.net.resilience`) reads Theorem
    2.1(1) with the emulated-operation bound ``Δ_net`` in place of ``Δ``;
    Algorithm 1 itself is byte-identical to the shared-memory runs — only
    the substrate changed.
    """
    table = ExperimentTable(
        "E1N",
        "Networked consensus decision time over ABD quorum registers "
        "(bound: 15·Δ_net)",
        ["n", "Δ_net", "worst time (Δ_net)", "mean time (Δ_net)",
         "messages", "quorum RTTs", "within 15Δ_net"],
    )
    for n in ns:
        worst = 0.0
        total = 0.0
        count = 0
        messages = 0
        rtts = 0
        delta_net = 0.0
        for seed in seeds:
            inputs = dict(enumerate(consensus_inputs(n, "split")))
            system = QuorumSystem(clients=n, seed=seed)
            delta_net = system.delta
            consensus = TimeResilientConsensus(delta=system.delta)
            programs = [
                labeled_decision(consensus.propose(pid, inputs[pid]))
                for pid in range(n)
            ]
            result = system.run(programs)
            verdict = check_consensus(
                result, inputs, expected_decided=system.client_pids
            )
            assert verdict.ok, verdict
            for pid in range(n):
                t = result.trace.decision_time(pid)
                worst = max(worst, t / system.delta)
                total += t / system.delta
                count += 1
            messages += system.transport.stats.messages_sent
            rtts += system.transport.stats.quorum_rtts
        table.add_row(
            n, delta_net, worst, total / count, messages, rtts, worst <= 15.0
        )
    table.notes.append(
        "a shared step is one emulated quorum operation, so the theorem's "
        "unit is Δ_net = emulated_op_bound(delivery bound); split inputs"
    )
    return table


# ---------------------------------------------------------------------------
# E8N — convergence on the networked substrate after a fault window.
# ---------------------------------------------------------------------------

def run_e8_net(n: int = 2, sessions: int = 2) -> ExperimentTable:
    """Algorithm 3 mutex over the quorum under healing fault windows.

    Unlike E8 (a doorway-breach flood, a shared-memory adversary with no
    message-level analogue), the networked convergence claim is the
    resilience theorems' own: exclusion holds *throughout* the window and
    critical-section progress resumes once deliveries respect the bound
    again (:func:`repro.net.convergence_start`).
    """
    bound = 1.0
    replicas = 3
    # Pids 0..n-1 are clients, n..n+replicas-1 are replicas; the partition
    # cuts a majority of replicas off, so operations *block* inside the
    # window (retransmission carries them over the heal).
    cut = tuple(range(n + 1, n + replicas))
    rest = tuple(pid for pid in range(n + replicas) if pid not in cut)
    plans = [
        ("none", NetFaultPlan.none()),
        ("delay-spike (6Δ_link)", NetFaultPlan(spikes=(
            DelaySpike(start=2.0, end=2.0 + 6.0 * bound,
                       stretch=4.0, extra=bound),
        ))),
        ("partition (6Δ_link, majority cut)", NetFaultPlan(partitions=(
            Partition(start=2.0, end=2.0 + 6.0 * bound, groups=(rest, cut)),
        ))),
    ]
    table = ExperimentTable(
        "E8N",
        "Networked mutex (Algorithm 3 over quorum registers) under fault "
        "windows",
        ["fault plan", "exclusion held", "CS entries",
         "entries after window", "converged"],
    )
    for name, faults in plans:
        system = QuorumSystem(
            clients=n, replicas=replicas, bound=bound, seed=0, faults=faults
        )
        lock = default_time_resilient_mutex(n, delta=system.delta)
        programs = [
            mutex_session(lock, pid, sessions, cs_duration=0.2,
                          ncs_duration=0.2)
            for pid in range(n)
        ]
        result = system.run(programs)
        exclusion = check_mutual_exclusion(result.trace) == []
        entries = result.trace.cs_intervals()
        resume_at = convergence_start(faults)
        after = [iv for iv in entries if iv.enter >= resume_at]
        converged = (
            result.status is RunStatus.COMPLETED
            and len(entries) == n * sessions
            and (resume_at == 0.0 or len(after) > 0)
        )
        table.add_row(name, exclusion, len(entries), len(after), converged)
    table.notes.append(
        "exclusion must hold even inside the windows (safety never rests); "
        "convergence = every session completes and entries resume after "
        "the last window closes"
    )
    return table


# ---------------------------------------------------------------------------

ALL_EXPERIMENTS: Dict[str, Callable[[], ExperimentTable]] = {
    "E1": run_e1,
    "E2": run_e2,
    "E3": run_e3,
    "E4": run_e4,
    "E5": run_e5,
    "E6": run_e6,
    "E7": run_e7,
    "E8": run_e8,
    "E9": run_e9,
    "E10": run_e10,
    "E11": run_e11,
    "E12": run_e12,
    "E13": run_e13,
    "E1N": run_e1_net,
    "E8N": run_e8_net,
}


def _experiment_order(experiment_id: str):
    """Numeric-then-suffix sort: E1, E1N, E2, ..., E8, E8N, E9, E10, ..."""
    digits = "".join(ch for ch in experiment_id if ch.isdigit())
    return (int(digits), experiment_id)


def run_all(ids: Optional[Sequence[str]] = None) -> List[ExperimentTable]:
    chosen = list(ids) if ids else sorted(ALL_EXPERIMENTS, key=_experiment_order)
    tables = []
    for experiment_id in chosen:
        runner = ALL_EXPERIMENTS.get(experiment_id.upper())
        if runner is None:
            raise SystemExit(
                f"unknown experiment {experiment_id!r}; "
                f"choose from {sorted(ALL_EXPERIMENTS)}"
            )
        tables.append(runner())
    return tables


def main(argv: Sequence[str]) -> int:
    args = list(argv)
    markdown = "--markdown" in args
    if markdown:
        args.remove("--markdown")
    for experiment_table in run_all(args or None):
        if markdown:
            print(experiment_table.to_markdown())
        else:
            print(experiment_table.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
