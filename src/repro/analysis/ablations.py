"""Ablations: remove one design choice at a time and measure what breaks.

DESIGN.md calls out the load-bearing details of the paper's constructions;
each ablation builds the variant without one of them and compares:

* **A1 — Algorithm 1 without the delay statement** (``delay(0)``): safety
  is untouched (delays never carry safety), and benign timing still
  decides — but against the worst legal schedule the conflict never
  resolves.  The delay is precisely what buys liveness from the timing
  assumption.
* **A2 — Algorithm 3 with an unconditional doorway reset** (``x := 0``
  instead of ``if x = i then x := 0``): Theorem 3.3's drain argument
  breaks — after a breach, *every* exiting process re-opens the doorway,
  so the embedded lock keeps seeing fresh concurrency and the flood
  persists far longer.
* **A3 — Algorithm 3 without the doorway delay**: the doorway stops
  serializing, every contender falls through to the embedded lock, and
  the time-complexity metric inherits the embedded lock's scan costs —
  the O(Δ) headline is gone (exclusion of course survives).
* **A4 — Bar-David wrapper without the contention hint** (always scan on
  exit): the uncontended exit becomes Θ(n), which is what would poison
  Algorithm 3's O(Δ) handovers at scale.

Run from the command line::

    python -m repro.analysis.ablations
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from ..algorithms import BarDavidLock, LamportFastLock, mutex_session
from ..algorithms.base import MutexAlgorithm
from ..core.consensus import run_consensus
from ..core.mutex import TimeResilientMutex
from ..sim import (
    ConstantTiming,
    Engine,
    HookTiming,
    UniformTiming,
    ops,
)
from ..sim.adversary import round_conflict_hook
from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from ..spec import check_mutual_exclusion, time_complexity
from .tables import ExperimentTable

__all__ = [
    "embedded_population",
    "NoResetMutex",
    "NoDelayMutex",
    "AlwaysScanBarDavid",
    "run_a1",
    "run_a2",
    "run_a3",
    "run_a4",
    "ALL_ABLATIONS",
    "main",
]

DELTA = 1.0


class NoResetMutex(TimeResilientMutex):
    """Algorithm 3 with line 8 made unconditional (the A2 ablation)."""

    def exit(self, pid: int) -> Program:
        yield from self.inner.exit(pid)
        yield self.x.write(None)  # unconditional: every exiter re-opens


class NoDelayMutex(TimeResilientMutex):
    """Algorithm 3 with the doorway delay removed (the A3 ablation)."""

    def entry(self, pid: int) -> Program:
        while True:
            while True:
                value = yield self.x.read()
                if value is None:
                    break
            yield self.x.write(pid)
            # no delay(Δ): the doorway no longer waits out rival writes
            value = yield self.x.read()
            if value == pid:
                break
        yield from self.inner.entry(pid)


class AlwaysScanBarDavid(BarDavidLock):
    """Bar-David wrapper without the contention hint (the A4 ablation)."""

    def exit(self, pid: int) -> Program:
        t = yield self.turn.read()
        holder_interested = False
        if t != pid:
            holder_interested = yield self.interested[t].read()
        if not holder_interested:
            for offset in range(1, self.n + 1):
                j = (t + offset) % self.n
                if j == pid:
                    continue
                if (yield self.interested[j].read()):
                    yield self.turn.write(j)
                    break
        yield self.interested[pid].write(False)
        yield from self.inner.exit(pid)


# ---------------------------------------------------------------------------

def run_a1(cap: float = 150.0) -> ExperimentTable:
    """Algorithm 1 with and without its delay statement."""
    table = ExperimentTable(
        "A1",
        "Ablating Algorithm 1's delay(Δ) statement",
        ["variant", "benign timing", "worst legal schedule", "always safe"],
    )

    def outcome(algorithm_delta: float, adversarial: bool) -> str:
        timing = (
            HookTiming(ConstantTiming(0.01), round_conflict_hook(DELTA))
            if adversarial
            else ConstantTiming(0.8)
        )
        result = run_consensus(
            [0, 1], delta=DELTA, timing=timing,
            algorithm_delta=algorithm_delta, max_time=cap,
        )
        assert result.verdict.safe
        if result.verdict.terminated:
            return f"decided @{result.max_decision_time_in_deltas:.1f}Δ"
        return "undecided (capped)"

    # `delay(0)` is the no-delay ablation (a zero-length delay statement).
    table.add_row("paper (delay Δ)", outcome(DELTA, False), outcome(DELTA, True), True)
    table.add_row("ablated (no delay)", outcome(1e-9, False), outcome(1e-9, True), True)
    table.notes.append(
        "the delay is pure liveness: removing it never endangers safety, "
        "but hands the worst-case scheduler a livelock"
    )
    return table


def embedded_population(trace, since: float = 0.0) -> int:
    """Worst number of processes simultaneously inside the embedded lock A.

    A process enters A at its first ``interested := True`` gate write of
    the session and leaves at its ``CS_EXIT``.  This is the quantity
    Theorem 3.3's proof controls ("eventually at most one process will
    execute the entry code of A").
    """
    from ..sim.adversary import register_leaf

    intervals = []
    for pid in trace.pids():
        in_session = False
        a_start = None
        for e in trace.for_pid(pid):
            if e.kind == "label" and e.label == ops.ENTRY_START:
                in_session, a_start = True, None
            elif (in_session and a_start is None and e.kind == "write"
                  and register_leaf(e.register) == "interested"
                  and e.value is True):
                a_start = e.completed
            elif e.kind == "label" and e.label == ops.CS_EXIT and a_start is not None:
                intervals.append((a_start, e.completed))
                in_session, a_start = False, None
    # Max depth by sweeping the endpoints.
    edges = []
    for start, end in intervals:
        if end > since:
            edges.append((max(start, since), +1))
            edges.append((end, -1))
    edges.sort()
    depth = worst = 0
    for _, delta_edge in edges:
        depth += delta_edge
        worst = max(worst, depth)
    return worst


def run_a2(n: int = 6, max_time: float = 400.0) -> ExperimentTable:
    """Conditional vs unconditional doorway reset after a breach.

    Six processes are flooded into A by targeted doorway stalls, then
    demand stays saturated (no remainder section, CS longer than a doorway
    cycle).  Theorem 3.3's proof needs "at most one of the flooded
    processes re-opens the doorway"; the unconditional variant re-opens on
    *every* exit, so one fresh process is admitted per exit and A never
    drains back to solo operation.
    """
    table = ExperimentTable(
        "A2",
        "Ablating Algorithm 3's conditional reset (line 8)",
        ["variant", "exclusion held", "A population (steady state)",
         "drained to solo"],
    )
    for name, cls in (("paper (conditional)", TimeResilientMutex),
                      ("ablated (unconditional)", NoResetMutex)):
        reg_ns = RegisterNamespace(("a2", name))
        inner = BarDavidLock(LamportFastLock(n, namespace=reg_ns.child("lf")),
                             n, namespace=reg_ns.child("gate"))
        lock = cls(inner, delta=DELTA, namespace=reg_ns.child("door"))
        from ..sim import compose_hooks, stall_write_to

        hooks = [
            stall_write_to(lock.x.name, duration=3.0 + 0.01 * p, pids=[p], count=1)
            for p in range(1, n)
        ]
        engine = Engine(delta=DELTA,
                        timing=HookTiming(ConstantTiming(0.1), compose_hooks(*hooks)),
                        max_time=max_time)
        for pid in range(n):
            engine.spawn(
                mutex_session(lock, pid, 10_000, cs_duration=2.0,
                              ncs_duration=0.0),
                pid=pid,
            )
        res = engine.run()
        tail = embedded_population(res.trace, since=res.trace.end_time * 0.7)
        table.add_row(
            name,
            check_mutual_exclusion(res.trace) == [],
            tail,
            tail <= 1,
        )
    table.notes.append(
        "with the conditional reset the flood drains and A runs solo "
        "(Theorem 3.3's invariant); unconditional resets re-admit one "
        "process per exit and keep A contended forever"
    )
    return table


def run_a3(n: int = 6, seeds: Sequence[int] = (0, 1, 2)) -> ExperimentTable:
    """The doorway delay is what makes the doorway a (timing-based) mutex."""
    table = ExperimentTable(
        "A3",
        "Ablating the doorway delay(Δ) of Algorithm 3 (failure-free jitter)",
        ["variant", "worst A population", "exclusion", "timing failures"],
    )
    for name, cls in (("paper (with delay)", TimeResilientMutex),
                      ("ablated (no delay)", NoDelayMutex)):
        worst_pop = 0
        safe = True
        failures = 0
        for seed in seeds:
            reg_ns = RegisterNamespace(("a3", name, seed))
            inner = BarDavidLock(
                LamportFastLock(n, namespace=reg_ns.child("lf")), n,
                namespace=reg_ns.child("gate"),
            )
            lock = cls(inner, delta=DELTA, namespace=reg_ns.child("door"))
            engine = Engine(delta=DELTA,
                            timing=UniformTiming(0.05, DELTA, seed=seed),
                            max_time=400.0)
            for pid in range(n):
                engine.spawn(
                    mutex_session(lock, pid, 15, cs_duration=0.3,
                                  ncs_duration=0.2),
                    pid=pid,
                )
            res = engine.run()
            worst_pop = max(worst_pop, embedded_population(res.trace))
            safe = safe and not check_mutual_exclusion(res.trace)
            failures += len(res.trace.timing_failures())
        table.add_row(name, worst_pop, safe, failures)
    table.notes.append(
        "all steps within Δ (zero timing failures): with the delay the "
        "doorway admits one process at a time; without it, ordinary jitter "
        "floods A — critical-section safety survives only because A is an "
        "asynchronous lock, and the O(Δ) handover structure is lost"
    )
    return table


def run_a4(ns_sweep: Sequence[int] = (4, 16, 64)) -> ExperimentTable:
    """The contention hint keeps Bar-David's uncontended exit O(1)."""
    table = ExperimentTable(
        "A4",
        "Ablating the Bar-David contention hint (solo exit steps)",
        ["variant"] + [f"n={n}" for n in ns_sweep],
    )

    def solo_exit_steps(lock_factory, n):
        reg_ns = RegisterNamespace(("a4", str(lock_factory), n))
        lock = lock_factory(n, reg_ns)
        engine = Engine(delta=DELTA, timing=ConstantTiming(0.4))
        engine.spawn(mutex_session(lock, 0, 1), pid=0)
        res = engine.run()
        (span,) = res.trace.exit_spans(0)
        return len([
            e for e in res.trace.for_pid(0)
            if e.is_shared and span[1] < e.completed <= span[2]
        ])

    def paper(n, reg_ns):
        return BarDavidLock(LamportFastLock(n, namespace=reg_ns.child("lf")),
                            n, namespace=reg_ns.child("gate"))

    def ablated(n, reg_ns):
        return AlwaysScanBarDavid(
            LamportFastLock(n, namespace=reg_ns.child("lf")), n,
            namespace=reg_ns.child("gate"),
        )

    table.add_row("paper (hinted)", *[solo_exit_steps(paper, n) for n in ns_sweep])
    table.add_row("ablated (always scan)",
                  *[solo_exit_steps(ablated, n) for n in ns_sweep])
    table.notes.append(
        "the hinted exit is constant; the scanning exit grows linearly — "
        "and it sits on Algorithm 3's handover path"
    )
    return table


ALL_ABLATIONS = {"A1": run_a1, "A2": run_a2, "A3": run_a3, "A4": run_a4}


def main(argv: Sequence[str]) -> int:
    chosen = argv or sorted(ALL_ABLATIONS)
    for ablation_id in chosen:
        runner = ALL_ABLATIONS.get(ablation_id.upper())
        if runner is None:
            raise SystemExit(f"unknown ablation {ablation_id!r}")
        print(runner().render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
