"""Measurement helpers shared by the experiments and benchmarks.

Everything here reads finished traces/runs; nothing re-runs anything.
Units: times are in the trace's native time units; ``*_in_deltas`` helpers
normalize by ``Δ`` so results read like the paper's bounds (e.g.
"decides within 15·Δ").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set

from ..sim.engine import RunResult
from ..sim.trace import Trace

__all__ = [
    "decision_times_in_deltas",
    "max_decision_time_in_deltas",
    "rounds_used",
    "delay_count",
    "solo_steps_to_decision",
    "throughput",
    "handover_times",
    "registers_touched_under",
    "ConvergencePoint",
    "convergence_point",
    "rmr_count",
    "rmr_per_cs_entry",
]


def decision_times_in_deltas(trace: Trace) -> Dict[int, float]:
    """pid -> decision time divided by Δ."""
    return {pid: t / trace.delta for pid, (t, _) in trace.decisions().items()}


def max_decision_time_in_deltas(trace: Trace) -> Optional[float]:
    times = decision_times_in_deltas(trace)
    return max(times.values()) if times else None


def delay_count(trace: Trace, pid: Optional[int] = None) -> int:
    """Number of explicit delay statements executed."""
    return len(
        [e for e in trace if e.kind == "delay" and (pid is None or e.pid == pid)]
    )


def rounds_used(trace: Trace, pid: int) -> int:
    """Rounds Algorithm 1 (or a round-based baseline) consumed for ``pid``.

    Each non-deciding round executes exactly one delay statement, so
    rounds = delays + 1.
    """
    return delay_count(trace, pid) + 1


def solo_steps_to_decision(trace: Trace, pid: int) -> Optional[int]:
    """Shared steps ``pid`` took up to (and including) its decision."""
    decision = trace.decisions().get(pid)
    if decision is None:
        return None
    t, _ = decision
    return len([e for e in trace.for_pid(pid) if e.is_shared and e.completed <= t])


def throughput(trace: Trace, since: float = 0.0) -> float:
    """Critical sections completed per time unit in ``[since, end]``."""
    window = trace.end_time - since
    if window <= 0:
        return 0.0
    entries = [iv for iv in trace.cs_intervals() if iv.exit > since]
    return len(entries) / window


def handover_times(trace: Trace) -> List[float]:
    """Gaps between consecutive critical sections while someone waited.

    These are the per-handover samples behind the paper's time-complexity
    metric (which is their maximum).
    """
    from ..spec.mutex_spec import unserved_intervals

    return [hi - lo for lo, hi in unserved_intervals(trace)]


def registers_touched_under(result: RunResult, prefix: Hashable) -> Set[Hashable]:
    """Registers whose (possibly nested) name starts with ``prefix``."""
    out: Set[Hashable] = set()
    for name in result.memory.touched_registers:
        probe = name
        while True:
            if probe == prefix:
                out.add(name)
                break
            if isinstance(probe, tuple) and probe:
                probe = probe[0]
            else:
                break
    return out


def rmr_count(trace: Trace, pid: Optional[int] = None) -> int:
    """Remote memory references under the cache-coherent model.

    The paper's related work ([25], Kim & Anderson, "Timing-based mutual
    exclusion with local spinning") measures time complexity counting only
    *remote* memory references and delay statements, because a spin on a
    locally cached value is free on real machines.  The standard
    cache-coherent accounting:

    * a read is local when the reader holds a valid cached copy (it read
      the register since the last write to it); remote otherwise — and it
      installs a copy;
    * every write is remote and invalidates all other copies (the writer
      retains one);
    * every RMW is remote (it behaves like a write).

    This lets the benchmarks show, e.g., that the bakery's await loops are
    mostly local spinning while its doorway scan is Θ(n) remote.
    """
    holders: Dict[Hashable, Set[int]] = {}
    remote = 0
    for event in trace:
        if not event.is_shared:
            continue
        if pid is not None and event.pid != pid:
            # Still apply coherence effects of other processes' writes.
            if event.kind in ("write", "rmw"):
                holders[event.register] = {event.pid}
            else:
                holders.setdefault(event.register, set()).add(event.pid)
            continue
        if event.kind == "read":
            cached = holders.setdefault(event.register, set())
            if event.pid not in cached:
                remote += 1
                cached.add(event.pid)
        else:  # write or rmw
            remote += 1
            holders[event.register] = {event.pid}
    return remote


def rmr_per_cs_entry(trace: Trace) -> Optional[float]:
    """Average remote references per completed critical-section entry."""
    entries = len(trace.cs_intervals())
    if entries == 0:
        return None
    return rmr_count(trace) / entries


@dataclass(frozen=True)
class ConvergencePoint:
    """Where an execution's metric settled back under the budget."""

    last_failure: float
    converged_at: Optional[float]  # None = not within the trace

    @property
    def convergence_time(self) -> Optional[float]:
        if self.converged_at is None:
            return None
        return max(0.0, self.converged_at - self.last_failure)


def convergence_point(trace: Trace, psi: float) -> ConvergencePoint:
    """End of the last unserved interval exceeding ``psi`` post-failures."""
    from ..spec.mutex_spec import unserved_intervals

    last_failure = trace.last_failure_time
    bad = [
        (lo, hi)
        for lo, hi in unserved_intervals(trace, since=last_failure)
        if hi - lo > psi
    ]
    if not bad:
        return ConvergencePoint(last_failure, last_failure)
    last_bad_end = max(hi for _, hi in bad)
    if last_bad_end >= trace.end_time - 1e-9:
        return ConvergencePoint(last_failure, None)
    return ConvergencePoint(last_failure, last_bad_end)
