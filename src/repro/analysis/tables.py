"""Experiment-table rendering.

Each experiment driver returns an :class:`ExperimentTable`; the harness
prints it (fixed-width, matching the rows EXPERIMENTS.md records) and the
benchmarks assert on its cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

__all__ = ["ExperimentTable", "format_cell"]


def format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentTable:
    """One reproduced table/figure: id, title, headers, rows, notes."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def column(self, header: str) -> List[Any]:
        """All values of one column (for benchmark assertions)."""
        try:
            idx = list(self.headers).index(header)
        except ValueError:
            raise KeyError(f"no column {header!r} in {list(self.headers)}") from None
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        cells = [[format_cell(c) for c in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_row(row: Sequence[str]) -> str:
            return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

        lines = [
            f"[{self.experiment_id}] {self.title}",
            fmt_row(list(self.headers)),
            fmt_row(["-" * w for w in widths]),
        ]
        lines += [fmt_row(row) for row in cells]
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        header = "| " + " | ".join(self.headers) + " |"
        sep = "|" + "|".join("---" for _ in self.headers) + "|"
        rows = [
            "| " + " | ".join(format_cell(c) for c in row) + " |"
            for row in self.rows
        ]
        out = [f"**[{self.experiment_id}] {self.title}**", "", header, sep, *rows]
        for note in self.notes:
            out.append(f"\n_Note: {note}_")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
