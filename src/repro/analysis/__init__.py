"""Measurement, statistics, table rendering and the experiment drivers."""

from .metrics import (
    ConvergencePoint,
    convergence_point,
    decision_times_in_deltas,
    delay_count,
    handover_times,
    max_decision_time_in_deltas,
    registers_touched_under,
    rmr_count,
    rmr_per_cs_entry,
    rounds_used,
    solo_steps_to_decision,
    throughput,
)
from .stats import Summary, geometric_mean, percentile, speedup, summarize
from .tables import ExperimentTable, format_cell
from .timeline import lane_for, render_timeline

__all__ = [
    "decision_times_in_deltas",
    "max_decision_time_in_deltas",
    "rounds_used",
    "rmr_count",
    "rmr_per_cs_entry",
    "delay_count",
    "solo_steps_to_decision",
    "throughput",
    "handover_times",
    "registers_touched_under",
    "ConvergencePoint",
    "convergence_point",
    "Summary",
    "summarize",
    "percentile",
    "geometric_mean",
    "speedup",
    "ExperimentTable",
    "format_cell",
    "render_timeline",
    "lane_for",
]
