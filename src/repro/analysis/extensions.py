"""Experiment tables for the §4 extensions (beyond the paper's claims).

* **X1** — the self-tuning Algorithm 3 (:mod:`repro.core.adaptive`):
  starting from a 100x underestimate of Δ, the shared estimate grows on
  sensed doorway breaches until the doorway serializes again.
* **X2** — Ω leader election over messages (:mod:`repro.mp`): leadership
  churns during a stall window, and the adaptive timeout restores — and
  keeps — agreement on the rightful leader.
* **X3** — RMR accounting (local-spinning, after ref [25]): remote
  references per critical-section entry across the lock zoo.

Run with::

    python -m repro.analysis.extensions
"""

from __future__ import annotations

import sys
from typing import Sequence

from ..algorithms import BakeryLock, FischerLock, TicketLock, mutex_session
from ..core.adaptive import default_adaptive_mutex
from ..core.mutex import default_time_resilient_mutex
from ..mp import OmegaElection, eventual_agreement
from ..sim import (
    ConstantTiming,
    Engine,
    FailureWindowTiming,
    UniformTiming,
    failure_window,
)
from ..sim.registers import RegisterNamespace
from ..spec import check_mutual_exclusion
from .ablations import embedded_population
from .metrics import rmr_per_cs_entry
from .tables import ExperimentTable

__all__ = ["run_x1", "run_x2", "run_x3", "ALL_EXTENSIONS", "main"]

DELTA = 1.0


def run_x1(n: int = 4, sessions: int = 20, seed: int = 5) -> ExperimentTable:
    table = ExperimentTable(
        "X1",
        "Self-tuning Algorithm 3: estimate arc from a 100x underestimate",
        ["initial est/Δ", "final est/Δ", "A population (early)",
         "A population (tail)", "exclusion held"],
    )
    for initial in (0.01, 1.0):
        lock = default_adaptive_mutex(
            n, initial_estimate=initial * DELTA,
            namespace=RegisterNamespace(("x1", initial)),
        )
        engine = Engine(delta=DELTA, timing=UniformTiming(0.05, DELTA, seed=seed),
                        max_time=10_000.0)
        for pid in range(n):
            engine.spawn(
                mutex_session(lock, pid, sessions, cs_duration=0.2,
                              ncs_duration=0.2),
                pid=pid,
            )
        res = engine.run()
        early = embedded_population(res.trace)
        tail = embedded_population(res.trace, since=res.trace.end_time * 0.7)
        table.add_row(
            initial,
            res.memory.peek(lock.estimate) / DELTA,
            early,
            tail,
            check_mutual_exclusion(res.trace) == [],
        )
    table.notes.append(
        "the underestimate floods A early (population > 1); sensed breaches "
        "grow the estimate just far enough that breaches stop and the "
        "doorway serializes (tail = 1) — the tuner finds the smallest "
        "sufficient estimate, not Δ itself; a correct initial estimate "
        "never moves"
    )
    return table


def run_x2(n: int = 4, rounds: int = 60) -> ExperimentTable:
    table = ExperimentTable(
        "X2",
        "Ω election over messages: churn during a stall, convergence after",
        ["scenario", "eventual leader", "leader-0 suspected meanwhile",
         "false suspicions adapted"],
    )
    for name, windows in (
        ("clean", []),
        ("node-0 stalled 12 periods",
         [failure_window(8.0, 20.0, pids=[0], stretch=100.0)]),
    ):
        omega = OmegaElection(n, heartbeat_period=1.0, initial_timeout=2.5,
                              timeout_growth=2.0,
                              namespace=RegisterNamespace(("x2", name)))
        timing = ConstantTiming(0.05)
        if windows:
            timing = FailureWindowTiming(timing, windows)
        engine = Engine(delta=DELTA, timing=timing, max_time=50_000.0)
        for pid in range(n):
            engine.spawn(omega.run(pid, rounds), pid=pid)
        res = engine.run()
        samples = dict(res.returns)
        leader = eventual_agreement(samples, tail_fraction=0.2)
        suspected_zero = any(
            0 in s.suspected
            for pid, all_samples in samples.items() if pid != 0
            for s in all_samples
        )
        recovered = any(
            s.leader == 0
            for pid, all_samples in samples.items()
            for s in all_samples[-3:]
        )
        table.add_row(name, leader, suspected_zero, recovered)
    table.notes.append(
        "Ω's contract is eventual agreement: temporary disagreement during "
        "the stall is allowed; the adaptive timeout makes the recovery stick"
    )
    return table


def run_x3(n: int = 8, sessions: int = 3) -> ExperimentTable:
    table = ExperimentTable(
        "X3",
        f"Remote memory references per CS entry (cache-coherent model, n={n})",
        ["lock", "RMR / entry", "notes"],
    )
    entries = [
        ("alg3", default_time_resilient_mutex(n, delta=DELTA,
                                              namespace=RegisterNamespace("x3a")),
         "doorway + embedded fast lock"),
        ("fischer", FischerLock(delta=DELTA, namespace=RegisterNamespace("x3f")),
         "spin on one word (locally cached)"),
        ("bakery", BakeryLock(n, namespace=RegisterNamespace("x3b")),
         "Θ(n) doorway scan is remote"),
        ("ticket", TicketLock(namespace=RegisterNamespace("x3t")),
         "one FAA + local spin"),
    ]
    for name, lock, note in entries:
        engine = Engine(delta=DELTA, timing=ConstantTiming(0.3),
                        max_time=100_000.0)
        for pid in range(n):
            engine.spawn(
                mutex_session(lock, pid, sessions, cs_duration=0.2,
                              ncs_duration=0.2),
                pid=pid,
            )
        res = engine.run()
        table.add_row(name, rmr_per_cs_entry(res.trace), note)
    table.notes.append(
        "the paper's ref [25] counts only remote references and delays; "
        "spin loops on cached words are free under this accounting"
    )
    return table


ALL_EXTENSIONS = {"X1": run_x1, "X2": run_x2, "X3": run_x3}


def main(argv: Sequence[str]) -> int:
    chosen = argv or sorted(ALL_EXTENSIONS)
    for ext_id in chosen:
        runner = ALL_EXTENSIONS.get(ext_id.upper())
        if runner is None:
            raise SystemExit(f"unknown extension table {ext_id!r}")
        print(runner().render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
