"""optimistic(Δ): running with an estimate of the step-time bound.

The paper's §1.2/§3.3 observation: a sound ``Δ`` must absorb preemption,
cache misses and contention, making it enormous — but because the
time-resilient algorithms stay *safe* under any timing violation, they may
run with an optimistic, much smaller estimate that holds "most of the
time".  When the estimate is occasionally exceeded, the algorithm merely
behaves as if a timing failure occurred and recovers automatically.

This module provides estimators for tuning the estimate online:

* :class:`FixedEstimate` — a constant estimate (the baseline);
* :class:`AimdEstimator` — the paper's suggested TCP-congestion-control
  shape: on evidence the estimate was too small (a consensus round failed
  to decide, a doorway retry), grow multiplicatively; on sustained
  success, shrink additively back toward optimism;
* :class:`SlowStartEstimator` — doubling growth until the first success,
  then AIMD.

Estimators are deliberately decoupled from the algorithms: callers run an
algorithm instance with ``estimator.current()``, then feed back
``record_success()`` / ``record_failure()``.  :func:`tune_consensus`
packages that loop for Algorithm 1 (used by experiment E10 and the
``optimistic_tuning`` example).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

__all__ = [
    "DeltaEstimator",
    "FixedEstimate",
    "AimdEstimator",
    "SlowStartEstimator",
    "TuningStep",
    "tune",
]


class DeltaEstimator(ABC):
    """Online estimator of ``optimistic(Δ)``."""

    @abstractmethod
    def current(self) -> float:
        """The estimate to use for the next algorithm instance."""

    @abstractmethod
    def record_success(self) -> None:
        """The last instance met its timing expectations."""

    @abstractmethod
    def record_failure(self) -> None:
        """The last instance showed evidence the estimate was too small."""


class FixedEstimate(DeltaEstimator):
    """A constant estimate; feedback is ignored."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"estimate must be positive, got {value}")
        self.value = float(value)

    def current(self) -> float:
        return self.value

    def record_success(self) -> None:
        pass

    def record_failure(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"FixedEstimate({self.value})"


class AimdEstimator(DeltaEstimator):
    """Multiplicative increase on failure, additive decrease on success.

    (The direction is inverted relative to TCP's congestion *window*
    because the quantity being tuned is a timeout: failures mean the
    estimate must grow.)

    Parameters
    ----------
    initial:
        Starting estimate.
    increase_factor:
        Multiplier applied on failure (≥ 1.1 recommended).
    decrease_step:
        Subtracted on success, floored at ``floor``.
    floor / ceiling:
        Clamp bounds for the estimate.
    patience:
        Number of consecutive successes required before shrinking —
        prevents oscillation right at the true bound.
    """

    def __init__(
        self,
        initial: float,
        increase_factor: float = 2.0,
        decrease_step: float = 0.0,
        floor: float = 1e-6,
        ceiling: float = float("inf"),
        patience: int = 3,
    ) -> None:
        if initial <= 0:
            raise ValueError(f"initial must be positive, got {initial}")
        if increase_factor <= 1.0:
            raise ValueError(f"increase_factor must be > 1, got {increase_factor}")
        if decrease_step < 0:
            raise ValueError(f"decrease_step must be >= 0, got {decrease_step}")
        if not (0 < floor <= ceiling):
            raise ValueError(f"need 0 < floor <= ceiling, got {floor}, {ceiling}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self._estimate = min(max(float(initial), floor), ceiling)
        self.increase_factor = increase_factor
        self.decrease_step = (
            decrease_step if decrease_step > 0 else self._estimate * 0.05
        )
        self.floor = floor
        self.ceiling = ceiling
        self.patience = patience
        self._streak = 0
        self.failures = 0
        self.successes = 0

    def current(self) -> float:
        return self._estimate

    def record_failure(self) -> None:
        self.failures += 1
        self._streak = 0
        self._estimate = min(self._estimate * self.increase_factor, self.ceiling)

    def record_success(self) -> None:
        self.successes += 1
        self._streak += 1
        if self._streak >= self.patience:
            self._streak = 0
            self._estimate = max(self._estimate - self.decrease_step, self.floor)

    def __repr__(self) -> str:
        return (
            f"AimdEstimator(current={self._estimate:.6g}, "
            f"successes={self.successes}, failures={self.failures})"
        )


class SlowStartEstimator(DeltaEstimator):
    """Doubling until the first success, then delegate to AIMD."""

    def __init__(self, initial: float, **aimd_kwargs: object) -> None:
        self._aimd = AimdEstimator(initial, **aimd_kwargs)  # type: ignore[arg-type]
        self._slow_start = True

    def current(self) -> float:
        return self._aimd.current()

    def record_failure(self) -> None:
        # During slow start failures double (same as AIMD's increase);
        # after it, identical behaviour.
        self._aimd.record_failure()

    def record_success(self) -> None:
        self._slow_start = False
        self._aimd.record_success()

    @property
    def in_slow_start(self) -> bool:
        return self._slow_start

    def __repr__(self) -> str:
        phase = "slow-start" if self._slow_start else "aimd"
        return f"SlowStartEstimator({phase}, current={self.current():.6g})"


@dataclass
class TuningStep:
    """One instance in a tuning run: the estimate used and the outcome."""

    instance: int
    estimate: float
    success: bool
    cost: float  # whatever cost metric the runner reports (e.g. decision time)


def tune(
    estimator: DeltaEstimator,
    run_instance: Callable[[float], "tuple[bool, float]"],
    instances: int,
) -> List[TuningStep]:
    """Drive an estimator through ``instances`` runs.

    ``run_instance(estimate)`` must execute one algorithm instance with
    the given estimate and return ``(success, cost)`` where ``success``
    means the estimate proved large enough (e.g. consensus decided within
    two rounds) and ``cost`` is the latency achieved.
    """
    if instances < 0:
        raise ValueError(f"instances must be >= 0, got {instances}")
    steps: List[TuningStep] = []
    for i in range(instances):
        estimate = estimator.current()
        success, cost = run_instance(estimate)
        if success:
            estimator.record_success()
        else:
            estimator.record_failure()
        steps.append(TuningStep(instance=i, estimate=estimate, success=success, cost=cost))
    return steps
