"""Algorithm 3 — mutual exclusion in the presence of timing failures.

The paper's second headline result: wrap Fischer's timing-based doorway
around an asynchronous lock ``A``, and change Fischer's exit to a
*conditional* reset:

.. code-block:: none

    shared x: atomic register, initially 0 (A's registers are disjoint)

    1  repeat   await (x = 0)
    2           x := i
    3           delay(Δ)
    4  until    x = i
    5  entry section of algorithm A
    6  critical section
    7  exit section of algorithm A
    8  if x = i then x := 0 fi

Without timing failures the doorway (lines 1–4) is Fischer's lock and
admits one process at a time, so ``A`` runs contention-free: the lock
costs ``O(Δ)`` time.  A timing failure can breach the doorway and flood
``A`` with concurrent processes — but ``A``'s asynchronous mutual
exclusion keeps the critical section safe (stabilization).  The
conditional reset in line 8 guarantees that of all the processes flooded
into ``A``, at most one re-opens the doorway; the rest drain away, so the
flood is transient:

* **Theorem 3.2** — if ``A`` is only deadlock-free (e.g. Lamport's fast
  lock), draining is not guaranteed to be fair and the algorithm need not
  converge back to ``O(Δ)``;
* **Theorem 3.3** — if ``A`` is starvation-free, every flooded process
  eventually leaves ``A``, and the algorithm converges: it is resilient
  to timing failures.

``TimeResilientMutex`` takes ``A`` as a parameter so both theorems are
directly testable; :func:`default_time_resilient_mutex` builds the
paper's recommended instantiation — the Bar-David transformation applied
to Lamport's fast lock.
"""

# repro-lint: registers-only  (Theorems 3.2-3.3 are proved from atomic registers alone)

from __future__ import annotations

from typing import Optional

from ..algorithms.bar_david import BarDavidLock
from ..algorithms.base import MutexAlgorithm, MutexProperties
from ..algorithms.fischer import FREE
from ..algorithms.lamport_fast import LamportFastLock
from ..sim import ops
from ..sim.process import Program
from ..sim.registers import RegisterNamespace

__all__ = ["TimeResilientMutex", "default_time_resilient_mutex"]


class TimeResilientMutex(MutexAlgorithm):
    """Algorithm 3: Fischer doorway + embedded asynchronous lock ``A``.

    Parameters
    ----------
    inner:
        The asynchronous algorithm ``A``.  Must satisfy mutual exclusion
        and deadlock-freedom; must be *fast* for the Efficiency
        requirement and *starvation-free* for the Convergence requirement
        (Theorems 3.2/3.3).  Its registers must be disjoint from the
        doorway's ``x`` (use separate namespaces).
    delta:
        The delay bound of line 3 — the system's ``Δ`` or an
        ``optimistic(Δ)`` estimate.  Mutual exclusion never depends on it.
    """

    name = "time_resilient_mutex"

    def __init__(
        self,
        inner: MutexAlgorithm,
        delta: float,
        namespace: Optional[RegisterNamespace] = None,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.inner = inner
        self.delta = float(delta)
        ns = namespace if namespace is not None else RegisterNamespace.unique("alg3")
        self.x = ns.register("x", FREE)
        self.name = f"alg3({inner.name})"

    @property
    def properties(self) -> MutexProperties:
        inner_props = self.inner.properties
        return MutexProperties(
            deadlock_free=inner_props.deadlock_free,
            # The Fischer doorway is not fair: an individual process can
            # lose the x-race forever, so Algorithm 3 is not starvation-
            # free overall even when A is.  (The paper claims deadlock-
            # freedom and the O(Δ) time-complexity metric — which bounds
            # how long the *lock* sits unclaimed, not per-process waiting
            # — and A's starvation-freedom is needed for convergence, not
            # for doorway fairness.)
            starvation_free=False,
            fast=inner_props.fast,
            timing_based=True,
            # Mutual exclusion is inherited from A, which never consults
            # the clock — this is the stabilization property.
            exclusion_resilient=inner_props.exclusion_resilient,
        )

    def register_count(self, n: int) -> Optional[int]:
        inner_count = self.inner.register_count(n)
        if inner_count is None:
            return None
        return inner_count + 1  # + x

    def entry(self, pid: int) -> Program:
        # lines 1-4: Fischer's doorway.
        while True:
            while True:
                value = yield self.x.read()
                if value == FREE:
                    break
            yield self.x.write(pid)
            yield ops.delay(self.delta)
            value = yield self.x.read()
            if value == pid:
                break
        # line 5: the embedded asynchronous lock.
        yield from self.inner.entry(pid)

    def exit(self, pid: int) -> Program:
        # line 7.
        yield from self.inner.exit(pid)
        # line 8: conditional doorway reset — of all processes a timing
        # failure flooded past the doorway, at most one sees its own id
        # here and re-opens; the rest leave x alone and drain away.
        value = yield self.x.read()
        if value == pid:
            yield self.x.write(FREE)

    def __repr__(self) -> str:
        return f"TimeResilientMutex(inner={self.inner!r}, delta={self.delta})"


def default_time_resilient_mutex(
    n: int, delta: float, namespace: Optional[RegisterNamespace] = None
) -> TimeResilientMutex:
    """The paper's recommended instantiation of Algorithm 3.

    ``A`` = Bar-David transformation of Lamport's fast lock: fast *and*
    starvation-free, hence (Theorem 3.3) the result is resilient to timing
    failures.
    """
    ns = namespace if namespace is not None else RegisterNamespace.unique("trm")
    inner = BarDavidLock(
        inner=LamportFastLock(n, namespace=ns.child("lamport")),
        n=n,
        namespace=ns.child("gate"),
    )
    return TimeResilientMutex(inner=inner, delta=delta, namespace=ns.child("doorway"))
