"""A finite-register consensus under a bounded-failure assumption.

The paper (§2.1) leaves open whether a time-resilient consensus can use
finitely many registers, and notes: "such an algorithm exists when there
is a known bound on the number of time units during which there are
timing failures."  This module realizes that remark, making the required
assumptions explicit:

* ``failure_bound`` — all timing failures occur within the first
  ``failure_bound`` time units of the execution (the transient-failure
  model);
* ``min_step`` — a *lower* bound on the duration of one shared-memory
  step.  Without one, a process could start unboundedly many rounds while
  failures rage, so no finite register bank can suffice; with one, at
  most ``failure_bound / (5 · min_step)`` rounds can even begin during
  the failure period (a round issues at least five steps before
  advancing), and two further rounds decide once failures stop
  (Theorem 2.1 item 2).

``BoundedConsensus`` is Algorithm 1 over arrays of exactly
``max_rounds = ceil(failure_bound / (5 · min_step)) + 2`` rounds — a
*statically declared*, finite register bank (``2·max_rounds + max_rounds
+ 1`` registers).  If the environment honours the assumptions, the bound
is never hit; the implementation verifies this at runtime and fails
loudly (rather than silently wrapping) if the assumption was violated.
"""

# repro-lint: registers-only  (bounded-space variant, atomic registers alone)

from __future__ import annotations

import math
from typing import Any, Optional

from ..sim import ops
from ..sim.process import Program
from ..sim.registers import RegisterNamespace

__all__ = ["BoundedConsensus", "RoundBudgetExceeded"]

_BOTTOM = None

# Shared steps a round must issue before a process can move past it
# (loop check, x write, y read, x̄ read, post-delay y read).
_STEPS_PER_ROUND = 5


class RoundBudgetExceeded(RuntimeError):
    """The bounded-failure assumption was violated at runtime."""


class BoundedConsensus:
    """Algorithm 1 over a finite, statically-sized register bank.

    Parameters
    ----------
    delta:
        The step-time upper bound (as in Algorithm 1).
    failure_bound:
        Timing failures only occur during the first ``failure_bound``
        time units.
    min_step:
        The step-time *lower* bound the round budget rests on.
    """

    name = "bounded_consensus"

    def __init__(
        self,
        delta: float,
        failure_bound: float,
        min_step: float,
        namespace: Optional[RegisterNamespace] = None,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        if failure_bound < 0:
            raise ValueError(f"failure_bound must be >= 0, got {failure_bound}")
        if min_step <= 0:
            raise ValueError(f"min_step must be positive, got {min_step}")
        self.delta = float(delta)
        self.failure_bound = float(failure_bound)
        self.min_step = float(min_step)
        self.max_rounds = (
            math.ceil(failure_bound / (_STEPS_PER_ROUND * min_step)) + 2
        )
        ns = namespace if namespace is not None else RegisterNamespace.unique("bounded")
        self.x = ns.array("x", 0)
        self.y = ns.array("y", _BOTTOM)
        self.decide = ns.register("decide", _BOTTOM)

    def register_count(self) -> int:
        """The finite register bank's size: 3 per round + decide."""
        return 3 * self.max_rounds + 1

    def propose(self, pid: int, value: Any) -> Program:
        if value not in (0, 1):
            raise ValueError(
                f"binary consensus: proposal must be 0 or 1, got {value!r}"
            )
        v = value
        r = 1
        while True:
            decided = yield self.decide.read()
            if decided is not _BOTTOM:
                return decided
            if r > self.max_rounds:
                raise RoundBudgetExceeded(
                    f"pid {pid} exhausted {self.max_rounds} rounds: the "
                    f"bounded-failure assumption (failures end by "
                    f"t={self.failure_bound}, steps >= {self.min_step}) "
                    f"does not hold in this environment"
                )
            yield self.x[r, v].write(1)
            y_val = yield self.y[r].read()
            if y_val is _BOTTOM:
                yield self.y[r].write(v)
            other = yield self.x[r, 1 - v].read()
            if other == 0:
                yield self.decide.write(v)
                continue
            yield ops.delay(self.delta)
            y_val = yield self.y[r].read()
            if y_val is not _BOTTOM:
                v = y_val
            r += 1

    def __repr__(self) -> str:
        return (
            f"BoundedConsensus(delta={self.delta}, "
            f"failure_bound={self.failure_bound}, min_step={self.min_step}, "
            f"max_rounds={self.max_rounds})"
        )
