"""Algorithm 1 — consensus in the presence of timing failures.

The paper's first headline result: a consensus algorithm from atomic
registers that is

* **resilient to timing failures** — validity and agreement hold in every
  execution, no matter how badly the timing assumption is violated, and
  liveness resumes as soon as the timing constraints hold again;
* **wait-free** — once timing failures stop, every nonfaulty process
  decides regardless of how many others crashed;
* **fast** — a process running without contention decides after 7 of its
  own steps, with no delay statement, even during timing failures;
* open to **unboundedly many participants** — nothing depends on ``n``.

Reproduced verbatim from the paper (program for ``p_i`` with input
``in_i``):

.. code-block:: none

    shared: x[1..∞, 0..1] bits, initially 0
            y[1..∞] over {⊥, 0, 1}, initially ⊥
            decide over {⊥, 0, 1}, initially ⊥
    local:  r_i := 1; v_i := in_i

    1  while decide = ⊥ do
    2      x[r_i, v_i] := 1
    3      if y[r_i] = ⊥ then y[r_i] := v_i fi
    4      if x[r_i, ¬v_i] = 0 then decide := v_i
    5      else delay(Δ)
    6           v_i := y[r_i]
    7           r_i := r_i + 1 fi
    8  od
    9  decide(decide)

Round ``r`` intuition: a process flags its preference in ``x[r, v]``,
publishes it in ``y[r]`` if it got there first, and decides if the
conflicting flag is still clear.  Conflicting preferences survive a round
only if a timing failure delayed someone's write to ``y[r]`` past another
process's ``delay(Δ)``; otherwise everyone adopts the same ``y[r]`` and
round ``r + 1`` decides (Theorem 2.1 item 2).

The infinite arrays are dict-backed in our memory, so the implementation
really does use the paper's unbounded register space (see DESIGN.md §6).
"""

# repro-lint: registers-only  (Theorems 2.1-2.3 are proved from atomic registers alone)

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence

from ..sim import ops
from ..sim.engine import Engine, RunResult, RunStatus
from ..sim.failures import CrashSchedule
from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from ..sim.scheduler import TieBreak
from ..sim.timing import ConstantTiming, TimingModel
from ..spec.consensus_spec import ConsensusVerdict, check_consensus

__all__ = [
    "UNDECIDED",
    "TimeResilientConsensus",
    "ConsensusResult",
    "run_consensus",
    "labeled_decision",
]

#: The paper's ``⊥``.
UNDECIDED = None


class TimeResilientConsensus:
    """Algorithm 1, as a reusable object over a register namespace.

    One instance is one single-shot consensus object; give each instance
    its own namespace (or rely on the default-unique one) to run several.

    Parameters
    ----------
    delta:
        The bound used in the ``delay(Δ)`` statement.  Using the system's
        true ``Δ`` gives the paper's guarantees; an ``optimistic(Δ)``
        estimate below the true bound never endangers safety — it only
        causes extra rounds while the estimate is exceeded (that is the
        subject of experiment E10).
    max_rounds:
        Optional safety-net for runs under permanent timing failures,
        where FLP says the loop may never exit.  A process reaching the
        bound *parks*: it stops spinning through rounds and instead polls
        ``decide`` (preserving safety; a parked process still decides when
        anyone else succeeds).  ``None`` (the default) is the paper's
        algorithm.
    """

    name = "time_resilient_consensus"

    def __init__(
        self,
        delta: float,
        namespace: Optional[RegisterNamespace] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        if max_rounds is not None and max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.delta = float(delta)
        ns = namespace if namespace is not None else RegisterNamespace.unique("consensus")
        self.x = ns.array("x", 0)  # x[r, v] bits
        self.y = ns.array("y", UNDECIDED)  # y[r] in {⊥, 0, 1}
        self.decide = ns.register("decide", UNDECIDED)
        self.max_rounds = max_rounds

    def propose(self, pid: int, value: Any) -> Program:
        """The program of process ``pid`` proposing ``value``.

        The generator's return value is the decision.  The program is
        deliberately *pure* — it emits no ``DECIDED`` label — because
        instances of Algorithm 1 nest inside larger constructions (the
        multivalued tournament, the universal construction) whose inner
        side-bit decisions must not pollute the trace's decision stream.
        Top-level drivers wrap it with :func:`labeled_decision` (as
        :func:`run_consensus` does) to record the decision in the trace.
        """
        if value is None:
            raise ValueError("proposal value must not be None (None encodes ⊥)")
        v = value
        r = 1
        while True:
            # line 1: while decide = ⊥
            decided = yield self.decide.read()
            if decided is not UNDECIDED:
                return decided
            if self.max_rounds is not None and r > self.max_rounds:
                # Parked: keep polling `decide` (stay live for adoption,
                # never endanger safety). The poll consumes a step, so a
                # parked process cannot livelock the simulator.
                continue
            # line 2: flag my preference
            yield self.x[r, v].write(1)
            # line 3: publish the round proposal if still empty
            y_val = yield self.y[r].read()
            if y_val is UNDECIDED:
                yield self.y[r].write(v)
            # line 4: check the conflicting flag
            other = yield self.x[r, _opposite(v)].read()
            if other == 0:
                yield self.decide.write(v)
                # Loop back: the re-read of `decide` at line 1 confirms the
                # decision and terminates (this is the paper's 7-step solo
                # path: read decide, write x, read y, write y, read x̄,
                # write decide, read decide).
                continue
            # lines 5-7: conflict — wait out the round and adopt y[r]
            yield ops.delay(self.delta)
            y_val = yield self.y[r].read()
            if y_val is not UNDECIDED:
                v = y_val
            r += 1

    def __repr__(self) -> str:
        return (
            f"TimeResilientConsensus(delta={self.delta}, "
            f"max_rounds={self.max_rounds})"
        )


def labeled_decision(program: Program) -> Program:
    """Wrap a decision-returning program with a ``DECIDED`` trace label.

    The label carries the decision and is emitted at the instant the
    program returns, so the spec checkers can read per-process decision
    values and times off the trace.
    """
    decision = yield from program
    yield ops.label(ops.DECIDED, decision)
    return decision


def _opposite(v: Any) -> Any:
    """The conflicting binary preference ``¬v``.

    Algorithm 1 is specified for binary consensus; multivalued consensus
    is obtained in the standard way (agree bit-by-bit, or use the derived
    objects in :mod:`repro.core.derived`).
    """
    if v == 0:
        return 1
    if v == 1:
        return 0
    raise ValueError(f"Algorithm 1 is binary consensus; got proposal {v!r}")


@dataclass
class ConsensusResult:
    """Packaged outcome of :func:`run_consensus`."""

    run: RunResult
    inputs: Dict[int, Any]
    verdict: ConsensusVerdict
    delta: float

    @property
    def decisions(self) -> Dict[int, Any]:
        return self.verdict.decisions

    @property
    def agreed(self) -> bool:
        return self.verdict.agreed

    @property
    def value(self) -> Any:
        """The agreed value (when anyone decided)."""
        for v in self.decisions.values():
            return v
        return None

    def decision_time(self, pid: int) -> Optional[float]:
        return self.run.trace.decision_time(pid)

    @property
    def max_decision_time(self) -> Optional[float]:
        times = [
            self.run.trace.decision_time(pid) for pid in self.decisions
        ]
        times = [t for t in times if t is not None]
        return max(times) if times else None

    @property
    def max_decision_time_in_deltas(self) -> Optional[float]:
        t = self.max_decision_time
        return None if t is None else t / self.delta

    def __repr__(self) -> str:
        return (
            f"ConsensusResult(value={self.value!r}, agreed={self.agreed}, "
            f"max_time={self.max_decision_time})"
        )


def run_consensus(
    inputs: Sequence[Any],
    delta: float,
    timing: Optional[TimingModel] = None,
    tie_break: Optional[TieBreak] = None,
    crashes: Optional[CrashSchedule] = None,
    max_time: float = math.inf,
    max_total_steps: float = 1_000_000,
    max_rounds: Optional[int] = None,
    algorithm_delta: Optional[float] = None,
    start_times: Optional[Sequence[float]] = None,
) -> ConsensusResult:
    """Run Algorithm 1 once in the simulator and check the spec.

    ``inputs[i]`` is process ``i``'s proposal.  ``algorithm_delta`` lets
    the algorithm use an (optimistic) estimate different from the system's
    true ``delta``; by default they coincide.  ``start_times`` staggers
    process arrivals (contention studies).
    """
    if timing is None:
        timing = ConstantTiming(step=delta)
    consensus = TimeResilientConsensus(
        delta=algorithm_delta if algorithm_delta is not None else delta,
        max_rounds=max_rounds,
    )
    engine = Engine(
        delta=delta,
        timing=timing,
        tie_break=tie_break,
        crashes=crashes,
        max_time=max_time,
        max_total_steps=max_total_steps,
    )
    input_map: Dict[int, Any] = {}
    for pid, value in enumerate(inputs):
        input_map[pid] = value
        start = 0.0 if start_times is None else start_times[pid]
        engine.spawn(
            labeled_decision(consensus.propose(pid, value)),
            pid=pid,
            start_time=start,
        )
    run = engine.run()
    verdict = check_consensus(
        run, input_map, require_termination=(run.status is RunStatus.COMPLETED)
    )
    return ConsensusResult(run=run, inputs=input_map, verdict=verdict, delta=delta)
