"""Algorithm 3 with an online-estimated Δ (§3.3, closing remark).

"If Δ (or optimistic(Δ)) is *not* a priori known, we can start with a
small estimated value and change it over time.  One potential way to
estimate Δ is to use a technique similar to the one used in TCP
congestion control."

:class:`AdaptiveMutex` realizes that remark.  The doorway delays for the
current value of a shared ``estimate`` register instead of a fixed ``Δ``:

* **safety needs nothing** — mutual exclusion comes from the embedded
  asynchronous lock ``A``, so a hopeless underestimate merely floods
  ``A`` (exactly what a timing failure would do);
* the **feedback signal** is that flood itself, sensed two ways: waiting
  at the Bar-David gate, and — the watertight one — a CS sequence number
  that changed between a process's doorway clearance and its own CS entry
  (of any two co-occupants of ``A``, the one entering the CS second
  always observes the first's increment).  Either signal *doubles* the
  shared estimate (multiplicative increase);
* after ``shrink_after`` consecutive uncontended acquisitions, a process
  nudges the estimate back down by ``shrink_step`` (additive decrease),
  restoring optimism when the environment calms.

Updates to ``estimate`` race benignly: it is a performance knob, monotone
under concurrent doublings up to interleaving noise, and never consulted
for safety.  The test suite drives the full arc: a tiny initial estimate
floods ``A``; the estimate grows past the true bound; the doorway
serializes again (embedded population returns to 1).
"""

# repro-lint: registers-only  (self-tuning Algorithm 3, atomic registers alone)

from __future__ import annotations

from typing import Optional

from ..algorithms.bar_david import BarDavidLock
from ..algorithms.base import MutexAlgorithm, MutexProperties
from ..algorithms.lamport_fast import LamportFastLock
from ..sim import ops
from ..sim.process import Program
from ..sim.registers import RegisterNamespace

__all__ = ["AdaptiveMutex", "default_adaptive_mutex"]

_FREE = None


class AdaptiveMutex(MutexAlgorithm):
    """Algorithm 3 with a self-tuning doorway delay.

    Parameters
    ----------
    inner:
        The embedded asynchronous lock ``A``.  Contention detection is
        built on the Bar-David wrapper's gate, so ``inner`` must be a
        :class:`~repro.algorithms.bar_david.BarDavidLock` (use
        :func:`default_adaptive_mutex` for the standard instantiation).
    initial_estimate:
        The optimistic starting value for the doorway delay.
    growth:
        Multiplier applied to the shared estimate on observed contention.
    shrink_after / shrink_step:
        Additive decrease after that many consecutive uncontended
        acquisitions (0 disables shrinking).
    ceiling:
        Upper clamp for the estimate.
    """

    name = "adaptive_mutex"

    def __init__(
        self,
        inner: BarDavidLock,
        initial_estimate: float,
        growth: float = 2.0,
        shrink_after: int = 0,
        shrink_step: float = 0.0,
        ceiling: float = float("inf"),
        namespace: Optional[RegisterNamespace] = None,
    ) -> None:
        if initial_estimate <= 0:
            raise ValueError(
                f"initial_estimate must be positive, got {initial_estimate}"
            )
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if shrink_after < 0 or shrink_step < 0:
            raise ValueError("shrink parameters must be >= 0")
        self.inner = inner
        ns = namespace if namespace is not None else RegisterNamespace.unique("adaptive")
        self.x = ns.register("x", _FREE)
        self.estimate = ns.register("estimate", float(initial_estimate))
        self.cs_seq = ns.register("cs_seq", 0)
        self.growth = float(growth)
        self.shrink_after = shrink_after
        self.shrink_step = float(shrink_step)
        self.ceiling = float(ceiling)
        # Per-process uncontended streaks.  Each process reads and writes
        # only its own cell, so these are honest single-writer registers —
        # keeping them in shared memory (rather than instance state) keeps
        # the model checker's fingerprints and the threaded backend sound.
        self.streaks = ns.array("streak", 0)  # repro-lint: single-writer
        self.name = f"adaptive({inner.name})"

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=False,
            fast=self.inner.properties.fast,
            timing_based=True,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> Optional[int]:
        inner_count = self.inner.register_count(n)
        if inner_count is None:
            return None
        # x, estimate, cs_seq; plus one streak cell per process when the
        # shrink policy is active (the only regime that touches them).
        extra = n if self.shrink_after else 0
        return inner_count + 3 + extra

    def entry(self, pid: int) -> Program:
        # Doorway with the *current shared estimate* as the delay.
        while True:
            while True:
                value = yield self.x.read()
                if value is _FREE:
                    break
            yield self.x.write(pid)
            current = yield self.estimate.read()
            yield ops.delay(current)
            value = yield self.x.read()
            if value == pid:
                break
        # Breach sensing: remember the critical-section sequence number at
        # doorway clearance and compare it on CS entry.  In the serialized
        # regime nobody enters the CS between the two points (the previous
        # holder's increment happened before it re-opened the doorway), so
        # the number is unchanged.  When the doorway is breached, of any
        # two co-occupants of A the one entering the CS second observes the
        # first's increment — every co-occupancy is detected, with no false
        # positives.  (cs_seq is only written inside the CS, so the
        # increment is race-free.)
        seq_at_doorway = yield self.cs_seq.read()
        gate = self.inner
        yield gate.interested[pid].write(True)
        waited = 0
        while True:
            t = yield gate.turn.read()
            if t == pid:
                break
            holder_interested = yield gate.interested[t].read()
            if not holder_interested:
                break
            yield gate.cont.write(True)
            waited += 1
        yield from gate.inner.entry(pid)
        seq_at_entry = yield self.cs_seq.read()
        yield self.cs_seq.write(seq_at_entry + 1)
        breached = seq_at_entry != seq_at_doorway

        if waited > 0 or breached:
            # The doorway was breached: the estimate lost to real step
            # times.  Multiplicative increase (racy, harmless).
            if self.shrink_after:
                yield self.streaks[pid].write(0)
            current = yield self.estimate.read()
            yield self.estimate.write(min(current * self.growth, self.ceiling))
        elif self.shrink_after:
            streak = (yield self.streaks[pid].read()) + 1
            if streak >= self.shrink_after:
                yield self.streaks[pid].write(0)
                current = yield self.estimate.read()
                shrunk = max(current - self.shrink_step, 1e-9)
                yield self.estimate.write(shrunk)
            else:
                yield self.streaks[pid].write(streak)

    def exit(self, pid: int) -> Program:
        yield from self.inner.exit(pid)
        value = yield self.x.read()
        if value == pid:
            yield self.x.write(_FREE)

    def __repr__(self) -> str:
        return f"AdaptiveMutex(inner={self.inner!r})"


def default_adaptive_mutex(
    n: int,
    initial_estimate: float,
    namespace: Optional[RegisterNamespace] = None,
    **kwargs: float,
) -> AdaptiveMutex:
    """The standard instantiation: Bar-David(Lamport-fast) inside."""
    ns = namespace if namespace is not None else RegisterNamespace.unique("adm")
    inner = BarDavidLock(
        LamportFastLock(n, namespace=ns.child("lamport")),
        n,
        namespace=ns.child("gate"),
    )
    return AdaptiveMutex(
        inner=inner,
        initial_estimate=initial_estimate,
        namespace=ns.child("doorway"),
        **kwargs,  # type: ignore[arg-type]
    )
