"""The paper's contributions: Algorithm 1, Algorithm 3, the resilience
definition as a checker, optimistic(Δ) tuning, and the derived objects."""

from .adaptive import AdaptiveMutex, default_adaptive_mutex
from .bounded import BoundedConsensus, RoundBudgetExceeded
from .consensus import (
    UNDECIDED,
    ConsensusResult,
    TimeResilientConsensus,
    labeled_decision,
    run_consensus,
)
from .mutex import TimeResilientMutex, default_time_resilient_mutex
from .optimistic import (
    AimdEstimator,
    DeltaEstimator,
    FixedEstimate,
    SlowStartEstimator,
    TuningStep,
    tune,
)
from .resilience import (
    ResilienceReport,
    check_consensus_resilience,
    check_resilience,
)

__all__ = [
    "AdaptiveMutex",
    "default_adaptive_mutex",
    "BoundedConsensus",
    "RoundBudgetExceeded",
    "UNDECIDED",
    "TimeResilientConsensus",
    "ConsensusResult",
    "run_consensus",
    "labeled_decision",
    "TimeResilientMutex",
    "default_time_resilient_mutex",
    "ResilienceReport",
    "check_resilience",
    "check_consensus_resilience",
    "DeltaEstimator",
    "FixedEstimate",
    "AimdEstimator",
    "SlowStartEstimator",
    "TuningStep",
    "tune",
]
