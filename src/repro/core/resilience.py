"""Machine-checkable form of the paper's resilience definition (§1.3).

An algorithm is *resilient to timing failures w.r.t. time complexity ψ*
when three requirements hold:

1. **Stabilization** — safety always holds, even during timing failures,
   and all properties hold immediately once failures stop;
2. **Efficiency** — without timing failures the time complexity is ψ;
3. **Convergence** — a finite time after failures stop, the time
   complexity is ψ again.

For long-lived algorithms (mutual exclusion) the time complexity is the
paper's metric from :func:`repro.spec.mutex_spec.time_complexity`; for
one-shot algorithms (consensus) it is the worst decision time.  In all of
the paper's algorithms ψ = c·Δ for a small constant c, so callers express
ψ as ``psi_deltas`` (the constant c) and this module multiplies by ``Δ``.

:func:`check_resilience` evaluates a mutual-exclusion trace;
:func:`check_consensus_resilience` evaluates a consensus run.  Both
return a :class:`ResilienceReport` with the measured convergence time —
the quantity experiment E8 sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.trace import Trace
from ..spec.mutex_spec import check_mutual_exclusion, time_complexity, unserved_intervals

__all__ = ["ResilienceReport", "check_resilience", "check_consensus_resilience"]


@dataclass
class ResilienceReport:
    """Verdict on the three resilience requirements for one execution."""

    psi: float  # the time-complexity budget ψ, in time units
    delta: float
    safety_ok: bool
    efficiency_value: float  # measured time complexity ignoring failures
    efficiency_ok: bool
    last_failure: float  # when timing failures stopped (0 = none)
    convergence_time: Optional[float]  # None = never converged in the trace
    violations: List[str] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return self.convergence_time is not None

    @property
    def resilient(self) -> bool:
        return self.safety_ok and self.efficiency_ok and self.converged

    def __repr__(self) -> str:
        conv = (
            f"{self.convergence_time:.3f}" if self.convergence_time is not None else "never"
        )
        return (
            f"ResilienceReport(resilient={self.resilient}, "
            f"efficiency={self.efficiency_value:.3f}/{self.psi:.3f}, "
            f"convergence_time={conv})"
        )


def check_resilience(
    trace: Trace,
    psi_deltas: float,
    last_failure: Optional[float] = None,
    settle: float = 0.0,
) -> ResilienceReport:
    """Evaluate a mutual-exclusion trace against the resilience definition.

    Parameters
    ----------
    trace:
        The execution (typically containing a timing-failure window).
    psi_deltas:
        The budget constant ``c`` in ψ = c·Δ.
    last_failure:
        When timing failures stopped.  Defaults to the completion time of
        the last step that exceeded ``Δ`` in the trace.
    settle:
        Extra slack subtracted from nothing but granted to the efficiency
        measurement of the *pre-failure* period (0 is strict).

    Convergence time is measured as the paper defines it: the time after
    ``last_failure`` until the execution reaches a configuration from
    which the time complexity stays within ψ — concretely, the end of the
    last unserved interval longer than ψ (0 when there is none).
    """
    psi = psi_deltas * trace.delta
    violations: List[str] = []

    overlaps = check_mutual_exclusion(trace)
    safety_ok = not overlaps
    if overlaps:
        violations.append(
            f"stabilization: mutual exclusion violated {len(overlaps)} time(s)"
        )

    failure_end = (
        last_failure if last_failure is not None else trace.last_failure_time
    )

    # Efficiency: the metric restricted to the failure-free era.  When the
    # whole trace is failure-free this is the paper's Efficiency clause
    # verbatim; otherwise we evaluate the pre-failure prefix (if any).
    failures = trace.timing_failures()
    if failures:
        first_failure = min(e.issued for e in failures)
        efficiency_value = time_complexity(trace, until=max(first_failure - settle, 0.0))
    else:
        efficiency_value = time_complexity(trace)
    efficiency_ok = efficiency_value <= psi + 1e-9
    if not efficiency_ok:
        violations.append(
            f"efficiency: time complexity {efficiency_value:.3f} exceeds "
            f"ψ = {psi:.3f} in the absence of timing failures"
        )

    # Convergence: after `failure_end`, when does the metric drop back
    # under ψ for good?  Convergence is only promised — and only
    # observable — once failures actually stop: when they persist to the
    # end of the trace (or beyond: an open-ended window) there is no
    # failure-free suffix to certify, so the verdict is "not converged",
    # never a vacuous pass.
    convergence_time: Optional[float]
    if failure_end > 0 and failure_end >= trace.end_time - 1e-9:
        violations.append(
            "convergence: timing failures persist to the end of the trace; "
            "no failure-free suffix to certify"
        )
        return ResilienceReport(
            psi=psi,
            delta=trace.delta,
            safety_ok=safety_ok,
            efficiency_value=efficiency_value,
            efficiency_ok=efficiency_ok,
            last_failure=failure_end,
            convergence_time=None,
            violations=violations,
        )
    late_intervals = [
        (lo, hi)
        for lo, hi in unserved_intervals(trace, since=failure_end)
        if hi - lo > psi + 1e-9
    ]
    if not late_intervals:
        convergence_time = 0.0
    else:
        last_bad_end = max(hi for _, hi in late_intervals)
        if last_bad_end >= trace.end_time - 1e-9:
            # Still violating ψ when the observation window closed: we
            # cannot certify convergence from this trace.
            convergence_time = None
            violations.append(
                f"convergence: time complexity still above ψ = {psi:.3f} at "
                f"the end of the trace"
            )
        else:
            convergence_time = last_bad_end - failure_end

    return ResilienceReport(
        psi=psi,
        delta=trace.delta,
        safety_ok=safety_ok,
        efficiency_value=efficiency_value,
        efficiency_ok=efficiency_ok,
        last_failure=failure_end,
        convergence_time=convergence_time,
        violations=violations,
    )


def check_consensus_resilience(
    trace: Trace,
    psi_deltas: float,
    decided_pids: Optional[List[int]] = None,
    last_failure: Optional[float] = None,
) -> ResilienceReport:
    """Evaluate a consensus run: all decisions within ψ of failures ending.

    Safety (validity/agreement) is checked separately by
    :func:`repro.spec.consensus_spec.check_consensus`; this report focuses
    on the timing half: in a failure-free run every decision must land
    within ψ of the start; otherwise within ψ of ``last_failure``.
    """
    psi = psi_deltas * trace.delta
    violations: List[str] = []
    failure_end = (
        last_failure if last_failure is not None else trace.last_failure_time
    )
    decisions = trace.decisions()
    pids = decided_pids if decided_pids is not None else sorted(decisions)

    worst = 0.0
    missing = [pid for pid in pids if pid not in decisions]
    for pid in pids:
        if pid in decisions:
            t, _ = decisions[pid]
            worst = max(worst, t)
    if missing:
        violations.append(f"convergence: pids {missing} never decided")
        convergence_time: Optional[float] = None
    else:
        convergence_time = max(0.0, worst - failure_end)
        if convergence_time > psi + 1e-9:
            violations.append(
                f"convergence: last decision {convergence_time:.3f} after "
                f"failures stopped exceeds ψ = {psi:.3f}"
            )

    failures = trace.timing_failures()
    if failures:
        efficiency_value = math.nan  # not measurable on a failure-laden run
        efficiency_ok = True
    else:
        efficiency_value = worst
        efficiency_ok = worst <= psi + 1e-9
        if not efficiency_ok:
            violations.append(
                f"efficiency: decision time {worst:.3f} exceeds ψ = {psi:.3f} "
                f"without timing failures"
            )

    ok_convergence = convergence_time is not None and convergence_time <= psi + 1e-9
    return ResilienceReport(
        psi=psi,
        delta=trace.delta,
        safety_ok=True,  # caller combines with check_consensus().safe
        efficiency_value=efficiency_value,
        efficiency_ok=efficiency_ok,
        last_failure=failure_end,
        convergence_time=convergence_time if ok_convergence or convergence_time is None else convergence_time,
        violations=violations,
    )
