"""A wait-free test-and-set object from atomic registers.

§1.4 of the paper lists "a wait-free implementation of a test-and-set
object from atomic registers" among the corollaries of the consensus
algorithm.  One-shot TAS is interprocess racing in its purest form: every
caller invokes ``test_and_set()``; exactly one receives 0 (the winner),
everyone else receives 1.

Construction: leader election on the callers; the elected pid maps to
return value 0.  Linearizability holds because a caller that runs alone
to completion always elects itself (it decides every tournament node
before anyone else proposes), so a loser must have overlapped the winner
— giving the winner a legal first position in the linearization order.

The object records ``obj_invoke``/``obj_respond`` labels so executions
can be validated with :mod:`repro.spec.linearizability` against
:class:`~repro.spec.linearizability.TestAndSetModel`.
"""

from __future__ import annotations

from typing import Optional

from ...sim import ops
from ...sim.process import Program
from ...sim.registers import RegisterNamespace
from ...spec.histories import INVOKE, RESPOND
from .multivalued import MultivaluedConsensus

__all__ = ["TestAndSet"]


class TestAndSet:
    """One-shot n-process test-and-set (pids ``0..n-1``)."""

    name = "test_and_set"
    __test__ = False  # pytest: a library class, not a test case

    def __init__(
        self,
        n: int,
        delta: float,
        namespace: Optional[RegisterNamespace] = None,
        max_rounds: Optional[int] = None,
        object_id: str = "tas",
    ) -> None:
        ns = namespace if namespace is not None else RegisterNamespace.unique("tas")
        self._consensus = MultivaluedConsensus(
            n=n, delta=delta, namespace=ns, max_rounds=max_rounds
        )
        self.n = n
        self.object_id = object_id

    def test_and_set(self, pid: int) -> Program:
        """Returns 0 to exactly one caller, 1 to all others."""
        yield ops.label(INVOKE, (self.object_id, "test_and_set", ()))
        winner = yield from self._consensus.propose(pid, pid)
        result = 0 if winner == pid else 1
        yield ops.label(RESPOND, (self.object_id, result))
        return result

    def __repr__(self) -> str:
        return f"TestAndSet(n={self.n}, object_id={self.object_id!r})"
