"""A universal construction from time-resilient consensus (Herlihy).

The paper (§1.4) invokes Herlihy's universality result [24]: given
wait-free consensus from atomic registers, *any* object with a sequential
specification has a wait-free implementation from atomic registers — and
because our consensus is resilient to timing failures, so is the
constructed object.

The construction is the classic state-machine one:

* every operation is *announced* in ``announce[pid]``;
* an unbounded sequence of multivalued consensus instances — *slots* —
  decides the total order of operations;
* each process replays decided slots in order against a local replica of
  the sequential specification (:class:`~repro.spec.linearizability.SequentialModel`);
* **helping** makes it wait-free: at slot ``s``, every process whose own
  operation is not the obvious proposal proposes the announced pending
  operation of process ``s mod n``; within ``n`` slots of announcing,
  some slot is unanimously your operation, so it gets decided no matter
  how the adversary schedules you.

Duplicate decisions (the same operation winning two slots, possible when
both its owner and a helper proposed it in different slots) are filtered
by operation id during replay, as in Herlihy's original.

Linearizability: the slot order is a legal sequential history (each
process computes results by replaying the same prefix), and it respects
real time (an operation is only proposed after its invocation and its
response follows its deciding slot).  Executions are checked against the
sequential model by the tests via :mod:`repro.spec.linearizability`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ...sim import ops
from ...sim.process import Program
from ...sim.registers import RegisterNamespace
from ...spec.histories import INVOKE, RESPOND
from ...spec.linearizability import SequentialModel
from .multivalued import MultivaluedConsensus

__all__ = ["Universal", "UniversalClient"]

_NO_OP = None


class Universal:
    """The shared side of a universal object (one per object).

    Parameters
    ----------
    n:
        Number of client processes (pids ``0..n-1``).
    delta:
        Delay bound for the embedded consensus instances.
    model:
        The object's sequential specification.
    object_id:
        Identifier used in the ``obj_invoke``/``obj_respond`` labels.
    """

    name = "universal"

    def __init__(
        self,
        n: int,
        delta: float,
        model: SequentialModel,
        namespace: Optional[RegisterNamespace] = None,
        max_rounds: Optional[int] = None,
        object_id: str = "universal",
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.delta = float(delta)
        self.model = model
        self.object_id = object_id
        self._max_rounds = max_rounds
        self._ns = namespace if namespace is not None else RegisterNamespace.unique("universal")
        self.announce = self._ns.array("announce", _NO_OP)
        self._slots: Dict[int, MultivaluedConsensus] = {}

    def slot(self, index: int) -> MultivaluedConsensus:
        """Get-or-create the consensus instance deciding slot ``index``.

        Instances are created deterministically from the namespace, so
        every process resolves the same slot to the same registers.
        """
        instance = self._slots.get(index)
        if instance is None:
            instance = MultivaluedConsensus(
                n=self.n,
                delta=self.delta,
                namespace=self._ns.child(("slot", index)),
                max_rounds=self._max_rounds,
            )
            self._slots[index] = instance
        return instance

    def client(self, pid: int) -> "UniversalClient":
        """A per-process handle (owns the local replica; not shared)."""
        return UniversalClient(self, pid)

    def __repr__(self) -> str:
        return f"Universal(n={self.n}, object_id={self.object_id!r})"


class UniversalClient:
    """Per-process replica and invocation logic for a :class:`Universal`."""

    def __init__(self, universal: Universal, pid: int) -> None:
        if not (0 <= pid < universal.n):
            raise ValueError(f"pid {pid} out of range for n={universal.n}")
        self.universal = universal
        self.pid = pid
        self._state = universal.model.initial()
        self._next_slot = 0
        self._applied: set = set()
        self._op_counter = 0

    def invoke(self, name: str, *args: Any) -> Program:
        """Apply one operation; the generator returns its result."""
        u = self.universal
        op_id = (self.pid, self._op_counter)
        # The three disabled mutations below touch this client's *own*
        # replica only: a UniversalClient is constructed per process
        # (Universal.client) and never shared, so the state is process-
        # local by construction — the model's "local computation".
        self._op_counter += 1  # repro-lint: disable=TMF003
        my_op: Tuple[Any, str, Tuple[Any, ...]] = (op_id, name, tuple(args))
        yield ops.label(INVOKE, (u.object_id, name, tuple(args)))
        yield u.announce[self.pid].write(my_op)

        result: Any = None
        while True:
            slot_index = self._next_slot
            # Helping: at slot s, favor the announced pending operation of
            # process (s mod n); this guarantees a unanimous slot for every
            # announced operation within n slots.
            helped = self.pid != slot_index % u.n
            proposal = my_op
            if helped:
                candidate = yield u.announce[slot_index % u.n].read()
                if candidate is not _NO_OP and candidate[0] not in self._applied:
                    proposal = candidate
            decided = yield from u.slot(slot_index).propose(self.pid, proposal)
            self._next_slot += 1  # repro-lint: disable=TMF003
            decided_id, decided_name, decided_args = decided
            if decided_id in self._applied:
                continue  # duplicate win of an already-applied operation
            self._applied.add(decided_id)  # repro-lint: disable=TMF003
            self._state, decided_result = u.model.apply(
                self._state, decided_name, decided_args
            )
            if decided_id == op_id:
                result = decided_result
                break
        yield ops.label(RESPOND, (u.object_id, result))
        return result

    @property
    def local_state(self) -> Any:
        """This replica's current state (for inspection in tests)."""
        return self._state

    def __repr__(self) -> str:
        return f"UniversalClient(pid={self.pid}, next_slot={self._next_slot})"
