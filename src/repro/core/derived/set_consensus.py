"""Wait-free k-set consensus, resilient to timing failures.

§2.1 of the paper: "it is easy to construct algorithms that are resilient
to timing failures for ... election, set-consensus and renaming".

k-set consensus relaxes agreement: every process decides a proposed value
and *at most k distinct* values are decided.  The classical reduction
from consensus: statically partition the ``n`` processes into ``k``
groups; each group runs one (full) consensus among its members.  Each
group decides one value, so at most ``k`` values are decided system-wide;
validity and wait-freedom are the group consensus's own.  Resilience is
inherited instance-by-instance.

(For registers alone and k < n, k-set consensus is *impossible* in a
fully asynchronous system — Herlihy–Shavit / Borowsky–Gafni / Saks–
Zaharoglou — so, exactly as with consensus, the timing-based escape is
the whole point.)
"""

from __future__ import annotations

from typing import Any, Optional

from ...sim import ops
from ...sim.process import Program
from ...sim.registers import RegisterNamespace
from .multivalued import MultivaluedConsensus

__all__ = ["SetConsensus"]


class SetConsensus:
    """One-shot n-process k-set consensus (pids ``0..n-1``)."""

    name = "set_consensus"

    def __init__(
        self,
        n: int,
        k: int,
        delta: float,
        namespace: Optional[RegisterNamespace] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if not (1 <= k <= n):
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        self.n = n
        self.k = k
        ns = namespace if namespace is not None else RegisterNamespace.unique("set_consensus")
        # Group g = pid % k; group sizes differ by at most one.
        self._group_sizes = [len(range(g, n, k)) for g in range(k)]
        self._groups = [
            MultivaluedConsensus(
                n=self._group_sizes[g],
                delta=delta,
                namespace=ns.child(("group", g)),
                max_rounds=max_rounds,
            )
            for g in range(k)
        ]

    def group_of(self, pid: int) -> int:
        """The consensus group ``pid`` belongs to."""
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        return pid % self.k

    def propose(self, pid: int, value: Any) -> Program:
        """Propose ``value``; the generator returns this group's decision."""
        group = self.group_of(pid)
        # Index within the group (pids g, g+k, g+2k, ... map to 0, 1, ...).
        local_pid = pid // self.k
        decision = yield from self._groups[group].propose(local_pid, value)
        yield ops.label(ops.DECIDED, decision)
        return decision

    def __repr__(self) -> str:
        return f"SetConsensus(n={self.n}, k={self.k})"
