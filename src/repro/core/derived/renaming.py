"""Wait-free n-renaming, resilient to timing failures.

§1.4 of the paper lists "wait-free n-renaming" among the corollaries:
``n`` processes with arbitrary distinct ids acquire distinct names from
the tight space ``{1..n}``.

Construction — a ladder of multivalued consensus instances, one per name:
every competitor proposes itself for name 1; the decided pid takes the
name and stops; losers move on to name 2; and so on.  Per slot the winner
is unique, and a pid that won slot ``s`` never proposes at a later slot,
so no pid wins twice — names are distinct.  A process wins at latest at
slot ``n`` (each earlier slot retired a distinct competitor), so the name
space ``{1..n}`` suffices and the construction is wait-free: a process
never waits for others, it merely runs at most ``n`` wait-free consensus
instances.

Resilience is inherited: name uniqueness (safety) is immune to timing
failures; acquisition latency is ``O(n·Δ·log n)`` once the timing
constraints hold.
"""

from __future__ import annotations

from typing import Optional

from ...sim import ops
from ...sim.process import Program
from ...sim.registers import RegisterNamespace
from .multivalued import MultivaluedConsensus

__all__ = ["Renaming"]


class Renaming:
    """One-shot tight n-renaming (pids ``0..n-1``, names ``1..n``)."""

    name = "renaming"

    def __init__(
        self,
        n: int,
        delta: float,
        namespace: Optional[RegisterNamespace] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        ns = namespace if namespace is not None else RegisterNamespace.unique("renaming")
        self.n = n
        self._slots = [
            MultivaluedConsensus(
                n=n,
                delta=delta,
                namespace=ns.child(("slot", s)),
                max_rounds=max_rounds,
            )
            for s in range(n)
        ]

    def acquire(self, pid: int) -> Program:
        """Acquire a name; the generator returns it (an int in 1..n)."""
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        for s, slot in enumerate(self._slots):
            winner = yield from slot.propose(pid, pid)
            if winner == pid:
                name = s + 1
                yield ops.label(ops.DECIDED, name)
                return name
        raise AssertionError(
            f"pid {pid} lost all {self.n} slots — impossible: every slot "
            f"retires a distinct winner"
        )

    def __repr__(self) -> str:
        return f"Renaming(n={self.n})"
