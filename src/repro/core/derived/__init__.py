"""Wait-free objects derived from time-resilient consensus (paper §1.4).

All of these inherit Algorithm 1's resilience: safety under arbitrary
timing failures, liveness as soon as the timing constraints hold, any
number of crash failures tolerated.
"""

from .election import LeaderElection
from .long_lived import ConsensusService
from .multivalued import MultivaluedConsensus
from .renaming import Renaming
from .set_consensus import SetConsensus
from .test_and_set import TestAndSet
from .universal import Universal, UniversalClient

__all__ = [
    "MultivaluedConsensus",
    "LeaderElection",
    "TestAndSet",
    "Renaming",
    "SetConsensus",
    "Universal",
    "UniversalClient",
    "ConsensusService",
]
