"""Multivalued consensus from binary time-resilient consensus.

Algorithm 1 is binary.  The paper points out (§1.4, §2.1) that it is
"easy to construct" the other classical objects from it; this module
supplies the bridge: an ``n``-process *multivalued* consensus object that
inherits Algorithm 1's resilience to timing failures.

Construction — a tournament of binary instances:

* each process owns a leaf of a complete binary tree over ``n`` slots and
  *announces* its proposal in ``announce[pid]``;
* climbing its leaf-to-root path, at every internal node it runs one
  binary Algorithm 1 instance, proposing the (static) side its subtree
  lies on;
* after the climb it descends from the root following decided sides;
  every node on the descent path is already decided (whoever decided a
  node had decided the node's winning child first), so the descent is
  wait-free and lands on a unique leaf — the *winner*;
* the decision is ``announce[winner]``.

Validity: each decided side contains a proposer (binary validity), so
inductively the winning leaf belongs to a process that announced before
proposing.  Agreement: decisions at nodes are unique, so every process
descends the same path.  Wait-freedom and resilience to timing failures
are inherited from Algorithm 1 node-by-node.

Cost: ``O(log n)`` binary instances per operation — ``O(Δ·log n)`` time
when the timing constraints hold.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...sim.process import Program
from ...sim.registers import RegisterNamespace
from ..consensus import TimeResilientConsensus

__all__ = ["MultivaluedConsensus"]

_NOT_ANNOUNCED = None


class MultivaluedConsensus:
    """n-process multivalued consensus, resilient to timing failures.

    Parameters
    ----------
    n:
        Maximum number of participants (pids ``0..n-1``).  Unlike binary
        Algorithm 1, the tournament needs to know ``n``.
    delta:
        The delay bound handed to every binary instance.
    max_rounds:
        Optional per-instance round bound (see
        :class:`~repro.core.consensus.TimeResilientConsensus`).
    """

    name = "multivalued_consensus"

    def __init__(
        self,
        n: int,
        delta: float,
        namespace: Optional[RegisterNamespace] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.delta = float(delta)
        ns = namespace if namespace is not None else RegisterNamespace.unique("mv_consensus")
        self.announce = ns.array("announce", _NOT_ANNOUNCED)
        self.levels = 0
        while (1 << self.levels) < max(n, 2):
            self.levels += 1
        # One binary instance per internal node, heap-numbered 1..2^L - 1.
        self._nodes: Dict[int, TimeResilientConsensus] = {}
        for node in range(1, 1 << self.levels):
            self._nodes[node] = TimeResilientConsensus(
                delta=delta,
                namespace=ns.child(("node", node)),
                max_rounds=max_rounds,
            )

    def _path(self, pid: int) -> List[Tuple[int, int]]:
        """(node, side) pairs from leaf to root for ``pid``."""
        node = pid + (1 << self.levels)
        path: List[Tuple[int, int]] = []
        while node > 1:
            side = node & 1
            node >>= 1
            path.append((node, side))
        return path

    def propose(self, pid: int, value: Any) -> Program:
        """Propose ``value``; the generator returns the decided value."""
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        if value is _NOT_ANNOUNCED:
            raise ValueError("proposal must not be None (None encodes 'no value')")
        yield self.announce[pid].write(value)
        # Climb: one binary consensus per node on my path, proposing the
        # static side my subtree lies on.
        for node, side in self._path(pid):
            yield from self._nodes[node].propose(pid, side)
        # Descend: follow decided sides to the winning leaf.  Every node on
        # this path was decided before the root was (the root's decider
        # climbed through it), so each embedded propose() terminates on its
        # fast path or by adopting the standing decision.
        winner = yield from self.winner_from_root(pid)
        decision = yield self.announce[winner].read()
        return decision

    def winner_from_root(self, pid: int) -> Program:
        """Descend the decided tournament tree; returns the winning pid.

        Proposing our own (arbitrary) side at an already-decided node just
        adopts the standing decision — Algorithm 1 reads ``decide`` first,
        so the descent is read-mostly and wait-free.
        """
        node = 1
        for _ in range(self.levels):
            side = yield from self._nodes[node].propose(pid, 0)
            node = (node << 1) | side
        return node - (1 << self.levels)

    def __repr__(self) -> str:
        return f"MultivaluedConsensus(n={self.n}, delta={self.delta})"
