"""Wait-free leader election, resilient to timing failures.

§1.4 of the paper: "Using the consensus algorithm as a building block, it
is easy to design ... wait-free leader election".  Here the construction
is a direct multivalued consensus on the candidates' pids: every
participant proposes itself, the decision is the leader.

All properties are inherited: safety (a unique leader, which is a
participant) holds under arbitrary timing failures; once the timing
constraints hold, every nonfaulty candidate learns the leader within
``O(Δ·log n)`` regardless of crashes.
"""

from __future__ import annotations

from typing import Optional

from ...sim import ops
from ...sim.process import Program
from ...sim.registers import RegisterNamespace
from .multivalued import MultivaluedConsensus

__all__ = ["LeaderElection"]


class LeaderElection:
    """One-shot n-process leader election (pids ``0..n-1``)."""

    name = "leader_election"

    def __init__(
        self,
        n: int,
        delta: float,
        namespace: Optional[RegisterNamespace] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        ns = namespace if namespace is not None else RegisterNamespace.unique("election")
        self._consensus = MultivaluedConsensus(
            n=n, delta=delta, namespace=ns, max_rounds=max_rounds
        )
        self.n = n

    def elect(self, pid: int) -> Program:
        """Participate; the generator returns the elected leader's pid.

        Emits a ``DECIDED`` label carrying the leader, so election traces
        can be checked with the consensus spec checker (inputs = pids).
        """
        # Announce-and-tournament; proposing `pid` makes "the decided value
        # is some participant" exactly the validity property.
        leader = yield from self._consensus.propose(pid, pid)
        yield ops.label(ops.DECIDED, leader)
        return leader

    @property
    def am_leader_name(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"LeaderElection(n={self.n})"
