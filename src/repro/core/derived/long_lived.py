"""A long-lived, multi-instance consensus service.

Consensus is one-shot; long-lived coordination (a replicated log, a
sequence of configuration epochs) needs a fresh instance per decision.
:class:`ConsensusService` manages a deterministic registry of
time-resilient consensus instances keyed by an application-chosen
instance id, so independent decisions never share registers.

This is the shape the ``election_service`` example uses: one instance per
leadership epoch, with the timing-failure resilience of each instance
carrying over to the whole service (safety per epoch is unconditional;
liveness per epoch resumes when the timing constraints hold).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from ...sim.process import Program
from ...sim.registers import RegisterNamespace
from ..consensus import TimeResilientConsensus
from .multivalued import MultivaluedConsensus

__all__ = ["ConsensusService"]


class ConsensusService:
    """A registry of per-instance consensus objects.

    Parameters
    ----------
    delta:
        Delay bound for every instance.
    n:
        When given, instances are *multivalued* (tournament over ``n``
        pids); when ``None``, instances are binary Algorithm 1 objects
        and support unboundedly many participants.
    """

    def __init__(
        self,
        delta: float,
        n: Optional[int] = None,
        namespace: Optional[RegisterNamespace] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.n = n
        self._max_rounds = max_rounds
        self._ns = namespace if namespace is not None else RegisterNamespace.unique("service")
        self._instances: Dict[Hashable, Any] = {}

    def instance(self, key: Hashable) -> Any:
        """Get-or-create the consensus object for ``key``."""
        obj = self._instances.get(key)
        if obj is None:
            ns = self._ns.child(("instance", key))
            if self.n is None:
                obj = TimeResilientConsensus(
                    delta=self.delta, namespace=ns, max_rounds=self._max_rounds
                )
            else:
                obj = MultivaluedConsensus(
                    n=self.n,
                    delta=self.delta,
                    namespace=ns,
                    max_rounds=self._max_rounds,
                )
            self._instances[key] = obj
        return obj

    def propose(self, key: Hashable, pid: int, value: Any) -> Program:
        """Propose ``value`` in the instance for ``key``; returns decision."""
        decision = yield from self.instance(key).propose(pid, value)
        return decision

    def __repr__(self) -> str:
        kind = "binary" if self.n is None else f"multivalued(n={self.n})"
        return f"ConsensusService({kind}, instances={len(self._instances)})"
