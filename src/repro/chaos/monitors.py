"""Online resilience monitors for chaos runs.

The fuzzers check safety properties post-step and the resilience
checker (:func:`repro.core.resilience.check_resilience`) evaluates a
finished trace; a chaos run wants both *while the run is happening*,
judged against the campaign's declared failure-free suffix (everything
after :attr:`Campaign.last_disruption_end`).  A
:class:`ChaosMonitor` is stepped by the runner after every sandbox
transition:

* :class:`SafetyMonitor` wraps any
  :class:`~repro.verify.properties.SafetyProperty` — stabilization: the
  property must hold at every state, *including during fault windows*;
* :class:`ConvergenceMonitor` watches the logical clock: once the
  campaign's last disruption has passed plus a step budget, every
  process that was not crashed or suspended must have finished —
  failures stopped, so progress must resume;
* :class:`TraceResilienceMonitor` bridges to the timed world: given a
  finished :class:`~repro.sim.trace.Trace` it runs the paper's full
  three-clause resilience check with the campaign's declared failure
  end, so timed chaos runs (engine or net substrate) get the same
  verdict vocabulary.

A monitor fires **at most once** — the first violation is the
counterexample worth shrinking; repeats of the same broken state would
only flood the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from ..core.resilience import ResilienceReport, check_resilience
from ..sim.trace import Trace
from ..verify.properties import SafetyProperty
from ..verify.sandbox import Sandbox
from .plan import Campaign

__all__ = [
    "ChaosViolation",
    "ChaosMonitor",
    "SafetyMonitor",
    "ConvergenceMonitor",
    "StabilizationMonitor",
    "TraceResilienceMonitor",
    "default_monitors",
    "stabilization_monitors",
]


@dataclass(frozen=True)
class ChaosViolation:
    """One monitor firing: what broke, the message, and when (logical)."""

    monitor: str
    message: str
    step: int  # logical clock value (shared steps executed) when it fired

    def __repr__(self) -> str:
        return f"ChaosViolation({self.monitor} @step {self.step}: {self.message})"


class ChaosMonitor:
    """Base class: the runner calls :meth:`on_step` after every step."""

    name = "monitor"

    def reset(self) -> None:
        """Prepare for a fresh run (monitors are reused across schedules)."""

    def on_step(
        self, sandbox: Sandbox, clock: int, halted: FrozenSet[int]
    ) -> Optional[str]:
        """Violation message, or ``None``.  ``halted`` = crashed pids."""
        return None

    def finalize(
        self, sandbox: Sandbox, clock: int, halted: FrozenSet[int]
    ) -> Optional[str]:
        """One last check when the run ends (quiescence, budget, limits)."""
        return None


class SafetyMonitor(ChaosMonitor):
    """Stabilization: a safety property checked at every state.

    Fires once; the underlying property's first violation message is the
    counterexample the shrinker minimizes.
    """

    def __init__(self, prop: SafetyProperty) -> None:
        self.prop = prop
        self.name = prop.name
        self._fired = False

    def reset(self) -> None:
        self._fired = False

    def on_step(
        self, sandbox: Sandbox, clock: int, halted: FrozenSet[int]
    ) -> Optional[str]:
        if self._fired:
            return None
        message = self.prop.check(sandbox)
        if message is not None:
            self._fired = True
        return message


class ConvergenceMonitor(ChaosMonitor):
    """Progress must resume once the campaign's faults have stopped.

    The campaign declares its failure-free suffix
    (:attr:`Campaign.last_disruption_end`); once it starts, lack of
    progress is a violation — the online analogue of the resilience
    definition's convergence clause.  Two distinguishable failure shapes:

    * **still churning** — ``budget`` steps after the last transient fault
      window closed, some process still has steps to take.  Size
      ``budget`` generously (the runner defaults it to twice the target's
      total op budget) because busy-wait algorithms have unbounded step
      complexity under adversarial interleavings — that is the paper's
      premise, not a bug;
    * **wedged** — at the end of the run a non-crashed process exhausted
      its entire per-process op budget without completing.  This is only
      evidence of non-convergence when the campaign contains *structural*
      faults (crashes, corruptions) that can permanently wedge the system
      — e.g. a process crashed inside its critical section.  Under pure
      timing windows (which only delay) an op-bound suspension is an
      exploration cutoff, not a verdict, and is deliberately ignored.
    """

    name = "convergence"

    def __init__(self, campaign: Campaign, budget: int = 200) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.quiet_after = campaign.last_disruption_end
        self.budget = budget
        self.structural = bool(
            campaign.crash_at or campaign.crash_after or campaign.corruptions
        )
        self._fired = False

    def reset(self) -> None:
        self._fired = False

    def on_step(
        self, sandbox: Sandbox, clock: int, halted: FrozenSet[int]
    ) -> Optional[str]:
        if self._fired or clock < self.quiet_after + self.budget:
            return None
        laggards = [pid for pid in sandbox.enabled() if pid not in halted]
        if laggards:
            self._fired = True
            return (
                f"pids {laggards} still running {self.budget} steps after "
                f"the last fault window closed at {self.quiet_after:g}"
            )
        return None

    def finalize(
        self, sandbox: Sandbox, clock: int, halted: FrozenSet[int]
    ) -> Optional[str]:
        if self._fired or not self.structural:
            return None
        wedged = [pid for pid in sandbox.suspended() if pid not in halted]
        if wedged:
            self._fired = True
            return (
                f"pids {wedged} exhausted their op budget without "
                f"completing under a campaign with crashes/corruptions"
            )
        return None


class TraceResilienceMonitor(ChaosMonitor):
    """The paper's three-clause resilience check, campaign-aware.

    For timed chaos runs (through :class:`~repro.sim.Engine` with
    :meth:`Campaign.timing_model`, or the net substrate) — call
    :meth:`check_trace` on the finished trace.  The campaign's declared
    ``last_disruption_end`` overrides the trace-derived failure end, so
    the convergence clock starts where the *plan* says failures stop
    even when the trace's last stretched step completed earlier.
    """

    name = "resilience"

    def __init__(self, campaign: Campaign, psi_deltas: float) -> None:
        self.campaign = campaign
        self.psi_deltas = psi_deltas
        self.report: Optional[ResilienceReport] = None

    def reset(self) -> None:
        self.report = None

    def check_trace(self, trace: Trace) -> Optional[str]:
        """Run :func:`check_resilience`; a violation message or ``None``."""
        last = self.campaign.last_disruption_end
        self.report = check_resilience(
            trace,
            psi_deltas=self.psi_deltas,
            # Crash-recovery: a restart is the end of a transient fault,
            # so the convergence clock must not start before the last one.
            last_failure=max(
                last, trace.last_failure_time, trace.last_restart_time
            ),
        )
        if self.report.resilient:
            return None
        return "; ".join(self.report.violations) or "not resilient"


class StabilizationMonitor(ChaosMonitor):
    """Self-stabilization: transient fault → finite convergence to legality.

    The inversion of :class:`SafetyMonitor`: a stabilizing target is
    *allowed* to violate its safety properties while the campaign's faults
    are active and for a ``window`` of steps afterwards — that is what
    "arbitrary transient state" means.  What it must do is **converge**:
    once the stabilization window closes at
    ``last_disruption_end + window``, any further violation of any
    property is a real failure and fires once, like every chaos monitor.

    A run that ends without firing produces a **verdict** instead — a
    :class:`ChaosViolation`-shaped record (``monitor="stabilization"``)
    stating how many violating states were tolerated and how many steps
    past the last fault the system took to settle.  The verdict is the
    evidence a committed artifact replays bit-identically: same campaign,
    same schedule, same convergence measurement.  No verdict is produced
    when a non-crashed process failed to finish — non-convergence is the
    :class:`ConvergenceMonitor`'s verdict to give.
    """

    name = "stabilization"

    def __init__(
        self,
        properties: List[SafetyProperty],
        campaign: Campaign,
        window: int = 200,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.properties = list(properties)
        self.quiet_after = campaign.last_disruption_end
        self.window = window
        self._fired = False
        self._tolerated = 0  # violating states inside the window
        self._settled_at: Optional[int] = None  # clock of the last one
        self.verdict: Optional[ChaosViolation] = None

    @property
    def deadline(self) -> float:
        """First logical instant at which violations stop being tolerated."""
        return self.quiet_after + self.window

    def reset(self) -> None:
        self._fired = False
        self._tolerated = 0
        self._settled_at = None
        self.verdict = None

    def on_step(
        self, sandbox: Sandbox, clock: int, halted: FrozenSet[int]
    ) -> Optional[str]:
        if self._fired:
            return None
        for prop in self.properties:
            message = prop.check(sandbox)
            if message is None:
                continue
            if clock < self.deadline:
                self._tolerated += 1
                self._settled_at = clock
                return None
            self._fired = True
            return (
                f"{prop.name} still violated at step {clock}, after the "
                f"stabilization window closed at {self.deadline:g}: {message}"
            )
        return None

    def finalize(
        self, sandbox: Sandbox, clock: int, halted: FrozenSet[int]
    ) -> Optional[str]:
        if self._fired:
            return None
        unfinished = [
            pid
            for pid in (*sandbox.enabled(), *sandbox.suspended())
            if pid not in halted
        ]
        if unfinished:
            return None  # not converged — the convergence monitor's call
        settled = (
            0.0
            if self._settled_at is None
            else max(0.0, self._settled_at - self.quiet_after)
        )
        self.verdict = ChaosViolation(
            monitor=self.name,
            message=(
                f"converged: tolerated {self._tolerated} violating state(s) "
                f"inside the stabilization window, settled {settled:g} "
                f"step(s) after the last fault at {self.quiet_after:g}"
            ),
            step=clock,
        )
        return None


def default_monitors(
    properties: List[SafetyProperty],
    campaign: Campaign,
    convergence_budget: int = 200,
) -> List[ChaosMonitor]:
    """The standard monitor set: every property + the convergence clock."""
    monitors: List[ChaosMonitor] = [SafetyMonitor(p) for p in properties]
    monitors.append(ConvergenceMonitor(campaign, budget=convergence_budget))
    return monitors


def stabilization_monitors(
    properties: List[SafetyProperty],
    campaign: Campaign,
    convergence_budget: int = 200,
    window: Optional[int] = None,
) -> List[ChaosMonitor]:
    """The monitor set for self-stabilizing/recoverable targets.

    One :class:`StabilizationMonitor` guards *all* properties (tolerating
    transient violations inside the window, verdicting on convergence),
    and the :class:`ConvergenceMonitor` still demands termination.
    ``window`` defaults to the convergence budget, but callers usually
    want it much tighter: the budget bounds *termination* of busy-wait
    code (generously), while the window bounds how long illegal states
    may linger — a window wider than the run proves nothing.
    """
    return [
        StabilizationMonitor(
            properties, campaign,
            window=convergence_budget if window is None else window,
        ),
        ConvergenceMonitor(campaign, budget=convergence_budget),
    ]
