"""Deterministic repro artifacts: a failing chaos run as a JSON file.

An artifact captures everything needed to reproduce a violation on any
machine: the campaign (pure data), the payload (pid schedule or client
workload), the run seed, and the violation that is *expected* back —
monitor, message, and firing step.  :func:`replay` re-executes the run
and verifies the violation reproduces **identically**; any drift (a
different message, a different step) is reported as a mismatch rather
than papered over, because an artifact whose replay drifts is a
determinism bug in the substrate and we want CI to catch exactly that.

The JSON is written with sorted keys and a fixed schema version so
artifacts diff cleanly in review and survive being archived by CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace as dataclass_replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .monitors import ChaosViolation
from .plan import Campaign, campaign_from_dict, campaign_to_dict
from .runner import (
    DEFAULT_MAX_STEPS,
    NetOutcome,
    NetParams,
    SimOutcome,
    run_net,
    run_sim,
    sim_target,
)
from .shrink import ShrinkResult

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_KINDS",
    "Artifact",
    "artifact_from_sim",
    "artifact_from_sim_verdict",
    "artifact_from_net",
    "attach_observability",
    "save_artifact",
    "load_artifact",
    "ReplayReport",
    "replay",
]

# Schema history:
#   1 — original format (campaign, payload, violation, provenance).
#   2 — adds optional observability sidecars: "net_stats" (transport
#       counters of the failing run) and "timeliness" (the mined
#       timeliness graph of the replayed trace, repro.obs.timeliness).
#       Loading stays tolerant of schema-1 files: the sidecars are
#       simply absent.
#   3 — adds "kind": "violation" (the default; absent in older files)
#       archives a failing run, "stabilization" archives a *converged*
#       recover run whose "violation" slot holds the stabilization
#       verdict — replay then demands zero violations plus the identical
#       verdict, instead of an identical violation.
SCHEMA_VERSION = 3
_READABLE_SCHEMAS = (1, 2, 3)
ARTIFACT_KINDS = ("violation", "stabilization")


@dataclass(frozen=True)
class Artifact:
    """One archived failing run.  ``payload`` is the schedule (sim) or
    workload (net); ``provenance`` records what shrinking achieved."""

    substrate: str
    campaign: Campaign
    payload: Any
    violation: ChaosViolation
    # "violation" or "stabilization"; for the latter ``violation`` holds
    # the convergence verdict (a ChaosViolation-shaped measurement).
    kind: str = "violation"
    target: Optional[str] = None  # sim: SIM_TARGETS name
    run_seed: Optional[str] = None
    max_steps: int = DEFAULT_MAX_STEPS  # sim replay budget
    net_params: Optional[NetParams] = None
    provenance: Dict[str, Any] = field(default_factory=dict, compare=False)
    # Observability sidecars (schema >= 2); never part of identity.
    net_stats: Optional[Dict[str, int]] = field(default=None, compare=False)
    timeliness: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ARTIFACT_KINDS:
            raise ValueError(
                f"kind must be one of {ARTIFACT_KINDS}, got {self.kind!r}"
            )
        if self.kind == "stabilization" and self.substrate != "sim":
            raise ValueError("stabilization artifacts are sim-only")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "kind": self.kind,
            "substrate": self.substrate,
            "campaign": campaign_to_dict(self.campaign),
            "violation": {
                "monitor": self.violation.monitor,
                "message": self.violation.message,
                "step": self.violation.step,
            },
            "run_seed": self.run_seed,
            "provenance": dict(self.provenance),
        }
        if self.substrate == "sim":
            data["target"] = self.target
            data["schedule"] = list(self.payload)
            data["max_steps"] = self.max_steps
        else:
            data["workload"] = [
                [list(op) for op in client_ops] for client_ops in self.payload
            ]
            data["net_params"] = (self.net_params or NetParams()).to_dict()
        if self.net_stats is not None:
            data["net_stats"] = dict(self.net_stats)
        if self.timeliness is not None:
            data["timeliness"] = self.timeliness
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Artifact":
        schema = data.get("schema")
        if schema not in _READABLE_SCHEMAS:
            raise ValueError(
                f"unsupported artifact schema {schema!r} "
                f"(this build reads schemas {_READABLE_SCHEMAS})"
            )
        substrate = data["substrate"]
        violation = ChaosViolation(
            monitor=data["violation"]["monitor"],
            message=data["violation"]["message"],
            step=int(data["violation"]["step"]),
        )
        if substrate == "sim":
            payload: Any = tuple(int(pid) for pid in data["schedule"])
            net_params = None
            max_steps = int(data.get("max_steps", DEFAULT_MAX_STEPS))
        else:
            payload = tuple(
                tuple((op[0], int(op[1]), op[2]) for op in client_ops)
                for client_ops in data["workload"]
            )
            net_params = NetParams.from_dict(data["net_params"])
            max_steps = DEFAULT_MAX_STEPS
        return cls(
            substrate=substrate,
            campaign=campaign_from_dict(data["campaign"]),
            payload=payload,
            violation=violation,
            kind=data.get("kind", "violation"),
            target=data.get("target"),
            run_seed=data.get("run_seed"),
            max_steps=max_steps,
            net_params=net_params,
            provenance=dict(data.get("provenance", {})),
            net_stats=data.get("net_stats"),
            timeliness=data.get("timeliness"),
        )


def _provenance(shrunk: Optional[ShrinkResult]) -> Dict[str, Any]:
    if shrunk is None:
        return {}
    from .shrink import _payload_size

    return {
        "original_fault_count": shrunk.original_campaign.fault_count,
        "original_payload_size": _payload_size(shrunk.original_payload),
        "shrunk_fault_count": shrunk.campaign.fault_count,
        "shrunk_payload_size": _payload_size(shrunk.payload),
        "shrink_executions": shrunk.executions,
        "shrink_rounds": shrunk.rounds,
    }


def artifact_from_sim(
    target_name: str,
    outcome: SimOutcome,
    violation: Optional[ChaosViolation] = None,
    shrunk: Optional[ShrinkResult] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Artifact:
    """Package a failing sim run (optionally its shrunk form)."""
    campaign = outcome.campaign
    payload: Any = outcome.schedule
    if violation is None:
        violation = outcome.violations[0]
    if shrunk is not None:
        campaign, payload, violation = shrunk.campaign, shrunk.payload, shrunk.violation
    return Artifact(
        substrate="sim",
        campaign=campaign,
        payload=payload,
        violation=violation,
        target=target_name,
        run_seed=outcome.run_seed,
        max_steps=max_steps,
        provenance=_provenance(shrunk),
    )


def artifact_from_sim_verdict(
    target_name: str,
    outcome: SimOutcome,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Artifact:
    """Package a *converged* recover run as a stabilization artifact.

    The archived evidence is the stabilization verdict: replay re-runs
    the schedule and demands zero violations plus the byte-identical
    verdict — same tolerated count, same settle time.
    """
    if outcome.violations:
        raise ValueError("a stabilization artifact needs a violation-free run")
    if not outcome.verdicts:
        raise ValueError(
            "the run produced no stabilization verdict (did it converge, "
            "and was the target a recover target?)"
        )
    return Artifact(
        substrate="sim",
        campaign=outcome.campaign,
        payload=outcome.schedule,
        violation=outcome.verdicts[0],
        kind="stabilization",
        target=target_name,
        run_seed=outcome.run_seed,
        max_steps=max_steps,
    )


def artifact_from_net(
    outcome: NetOutcome,
    params: NetParams,
    violation: Optional[ChaosViolation] = None,
    shrunk: Optional[ShrinkResult] = None,
) -> Artifact:
    """Package a failing net run (optionally its shrunk form)."""
    campaign = outcome.campaign
    payload: Any = outcome.workload
    if violation is None:
        violation = outcome.violations[0]
    if shrunk is not None:
        campaign, payload, violation = shrunk.campaign, shrunk.payload, shrunk.violation
    return Artifact(
        substrate="net",
        campaign=campaign,
        payload=payload,
        violation=violation,
        run_seed=outcome.run_seed,
        net_params=params,
        provenance=_provenance(shrunk),
        # Stats describe the archived triple; a shrunk triple's stats
        # come from re-running it (attach_observability), not from the
        # original unshrunk outcome.
        net_stats=outcome.net_stats if shrunk is None else None,
    )


def attach_observability(artifact: Artifact) -> Artifact:
    """Re-run the artifact's triple under a local tracer and embed the
    mined timeliness graph (plus, for net, the transport counters).

    The re-run is the same deterministic replay :func:`replay` performs,
    so the embedded report is byte-identical to what
    ``repro.chaos replay --trace t.json`` + ``repro.obs timeliness``
    would produce for this artifact.
    """
    from repro.obs import Tracer, trace_scope
    from repro.obs.timeliness import mine_timeliness

    tracer = Tracer()
    net_stats = artifact.net_stats
    with trace_scope(tracer):
        if artifact.substrate == "sim":
            run_sim(
                sim_target(artifact.target),
                artifact.campaign,
                schedule=list(artifact.payload),
                max_steps=artifact.max_steps,
                # A stabilization artifact's replay runs to completion
                # (the verdict lives in finalize); a violation artifact
                # stops where the archived monitor fires.
                stop_monitor=(
                    None
                    if artifact.kind == "stabilization"
                    else artifact.violation.monitor
                ),
            )
        else:
            outcome = run_net(
                artifact.campaign,
                artifact.payload,
                params=artifact.net_params or NetParams(),
                run_seed=artifact.run_seed,
            )
            net_stats = outcome.net_stats
    report = mine_timeliness(tracer.take())
    return dataclass_replace(artifact, net_stats=net_stats, timeliness=report)


def save_artifact(artifact: Artifact, path: Union[str, Path]) -> Path:
    """Write the artifact as reviewable JSON (sorted keys, indented)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_artifact(path: Union[str, Path]) -> Artifact:
    return Artifact.from_dict(json.loads(Path(path).read_text()))


@dataclass
class ReplayReport:
    """Did the archived violation reproduce *identically*?"""

    ok: bool
    expected: ChaosViolation
    actual: Optional[ChaosViolation]
    detail: str

    def __repr__(self) -> str:
        status = "reproduced" if self.ok else "MISMATCH"
        return f"ReplayReport({status}: {self.detail})"


def _replay_stabilization(artifact: Artifact) -> ReplayReport:
    """Stabilization artifacts replay to *convergence*, not to a failure:
    the run must stay violation-free and re-derive the identical verdict."""
    expected = artifact.violation
    outcome = run_sim(
        sim_target(artifact.target),
        artifact.campaign,
        schedule=list(artifact.payload),
        max_steps=artifact.max_steps,
    )
    if outcome.violations:
        actual = outcome.violations[0]
        return ReplayReport(
            ok=False,
            expected=expected,
            actual=actual,
            detail=f"replay did not converge: {actual!r}",
        )
    actual = next(
        (v for v in outcome.verdicts if v.monitor == expected.monitor), None
    )
    if actual is None:
        return ReplayReport(
            ok=False,
            expected=expected,
            actual=None,
            detail=f"replay produced no {expected.monitor!r} verdict",
        )
    if actual != expected:
        return ReplayReport(
            ok=False,
            expected=expected,
            actual=actual,
            detail=f"verdict drifted: expected {expected!r}, got {actual!r}",
        )
    return ReplayReport(
        ok=True,
        expected=expected,
        actual=actual,
        detail=(
            f"{expected.monitor} verdict @step {expected.step} reproduced; "
            f"zero violations"
        ),
    )


def replay(artifact: Artifact) -> ReplayReport:
    """Re-execute the artifact's run and compare violations exactly."""
    if artifact.kind == "stabilization":
        return _replay_stabilization(artifact)
    expected = artifact.violation
    if artifact.substrate == "sim":
        outcome = run_sim(
            sim_target(artifact.target),
            artifact.campaign,
            schedule=list(artifact.payload),
            max_steps=artifact.max_steps,
            stop_monitor=expected.monitor,
        )
        actual = outcome.find(expected.monitor)
    else:
        net_outcome = run_net(
            artifact.campaign,
            artifact.payload,
            params=artifact.net_params or NetParams(),
            run_seed=artifact.run_seed,
        )
        actual = None
        for candidate in net_outcome.violations:
            if candidate.monitor == expected.monitor:
                actual = candidate
                break
    if actual is None:
        return ReplayReport(
            ok=False,
            expected=expected,
            actual=None,
            detail=f"monitor {expected.monitor!r} did not fire on replay",
        )
    if actual != expected:
        return ReplayReport(
            ok=False,
            expected=expected,
            actual=actual,
            detail=(
                f"violation drifted: expected {expected!r}, got {actual!r}"
            ),
        )
    return ReplayReport(
        ok=True,
        expected=expected,
        actual=actual,
        detail=f"{expected.monitor} @step {expected.step} reproduced",
    )
