"""``repro.chaos`` — cross-substrate fault campaigns, shrinking, artifacts.

The robustness layer: one :class:`~repro.chaos.plan.Campaign` algebra
composes sim-side faults (timing windows, crashes, crash-recovery
restarts, memory corruptions) and net-side faults (loss, delay spikes,
partitions); online monitors check stabilization and convergence
*during* runs — including the recover discipline, where transient
violations are tolerated inside a stabilization window and convergence
afterwards is the archived evidence; a delta-debugging shrinker
minimizes failing ``(campaign, payload, seed)`` triples; and JSON
artifacts replay violations (or convergence verdicts) bit-identically
anywhere (``python -m repro.chaos run|shrink|replay``).
"""

from .artifact import (
    Artifact,
    ReplayReport,
    artifact_from_net,
    artifact_from_sim,
    artifact_from_sim_verdict,
    load_artifact,
    replay,
    save_artifact,
)
from .monitors import (
    ChaosMonitor,
    ChaosViolation,
    ConvergenceMonitor,
    SafetyMonitor,
    StabilizationMonitor,
    TraceResilienceMonitor,
    default_monitors,
    stabilization_monitors,
)
from .plan import (
    Campaign,
    MemCorruption,
    campaign_from_dict,
    campaign_to_dict,
    sample_net_campaign,
    sample_recover_campaign,
    sample_sim_campaign,
)
from .runner import (
    SIM_TARGETS,
    CampaignReport,
    NetOutcome,
    NetParams,
    SimOutcome,
    SimTarget,
    run_net,
    run_net_campaign,
    run_sim,
    run_sim_campaign,
    sample_net_workload,
    sim_target,
)
from .shrink import ShrinkResult, ddmin, shrink_net, shrink_sim

__all__ = [
    "Campaign",
    "MemCorruption",
    "campaign_to_dict",
    "campaign_from_dict",
    "sample_sim_campaign",
    "sample_net_campaign",
    "sample_recover_campaign",
    "ChaosMonitor",
    "ChaosViolation",
    "SafetyMonitor",
    "ConvergenceMonitor",
    "StabilizationMonitor",
    "TraceResilienceMonitor",
    "default_monitors",
    "stabilization_monitors",
    "SimTarget",
    "SIM_TARGETS",
    "sim_target",
    "SimOutcome",
    "NetOutcome",
    "NetParams",
    "CampaignReport",
    "run_sim",
    "run_sim_campaign",
    "run_net",
    "run_net_campaign",
    "sample_net_workload",
    "ddmin",
    "ShrinkResult",
    "shrink_sim",
    "shrink_net",
    "Artifact",
    "ReplayReport",
    "artifact_from_sim",
    "artifact_from_sim_verdict",
    "artifact_from_net",
    "save_artifact",
    "load_artifact",
    "replay",
]
