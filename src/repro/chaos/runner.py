"""Executing campaigns: targets, schedule generation, deterministic replay.

**Sim substrate.**  A chaos run drives the asynchronous sandbox
(:class:`~repro.verify.sandbox.Sandbox`) with a *campaign-aware* random
scheduler over the logical clock (number of shared steps executed):

* a :class:`~repro.sim.failures.TimingFailureWindow` active at the
  current clock **stalls** its affected processes — their pending step
  "takes longer than Δ", i.e. it completes only once the scheduler
  leaves the window (unless every runnable process is stalled, in which
  case one of them completes anyway: a timing failure delays steps, it
  cannot stop the whole system);
* crash entries permanently remove a process from scheduling at a
  logical time (``crash_at``) or after a number of its own steps
  (``crash_after``);
* :class:`~repro.chaos.plan.MemCorruption` entries poke the named
  register at their logical instant.

The recorded pid sequence plus the campaign's *state-affecting* faults
(crashes, corruptions) fully determine the run, so
:func:`run_sim` doubles as the deterministic replay function: pass the
recorded ``schedule`` back and the identical execution — violations
included — is reproduced.  Replay is *tolerant*: a scheduled pid that is
finished, crashed, or suspended is skipped without advancing the clock,
which is what lets the shrinker evaluate arbitrary subsequences.
(Timing windows bias generation only; under the asynchronous semantics
any recorded schedule is self-justifying, which is why the shrinker can
usually delete every window — see :mod:`repro.chaos.shrink`.)

**Net substrate.**  A chaos run is a seeded client workload over the ABD
quorum emulation under the campaign's fault plan, checked against the
atomic-register linearizability spec — the same harness as
:mod:`repro.net.fuzz`, but with the explicit (campaign, workload, seed)
triple the shrinker and the artifacts need.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.tracer import active_tracer

from ..sim import ops
from ..sim.registers import Register
from ..verify.properties import (
    AgreementProperty,
    MutualExclusionProperty,
    SafetyProperty,
    ValidityProperty,
)
from ..verify.sandbox import ProgramFactory, Sandbox, op_kind, op_register
from .monitors import (
    ChaosMonitor,
    ChaosViolation,
    default_monitors,
    stabilization_monitors,
)
from .plan import Campaign

__all__ = [
    "SimTarget",
    "SIM_TARGETS",
    "sim_target",
    "SimOutcome",
    "run_sim",
    "CampaignReport",
    "run_sim_campaign",
    "NetParams",
    "NetOutcome",
    "sample_net_workload",
    "run_net",
    "run_net_campaign",
]

DEFAULT_MAX_STEPS = 400

# Post-fault steps a recover target gets to become legal again before any
# further safety violation is a real failure.  Deliberately much tighter
# than the convergence budget (which bounds *termination*): Dijkstra's
# ring drains corruption in O(n·(n+K)) moves, so 150 logical steps is
# generous for the n=3 targets while keeping the window's close well
# inside the default step budget — a window the run never outlives would
# make "no violations after the window" vacuous.
STABILIZATION_WINDOW = 150


# ---------------------------------------------------------------------------
# Sim targets: named program-under-test configurations.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimTarget:
    """A named sandbox configuration a campaign can be thrown at.

    ``build`` returns fresh ``(factories, properties, registers)`` per
    run — generators cannot be rewound, and ``registers`` (name ->
    handle) is how :class:`~repro.chaos.plan.MemCorruption` entries are
    resolved.
    """

    name: str
    description: str
    build: Callable[
        [], Tuple[Dict[int, ProgramFactory], List[SafetyProperty], Dict[str, Register]]
    ]
    max_ops: int
    pids: Tuple[int, ...]
    expect_violation: bool  # documentation: does a violation exist at all?
    # Stabilizing/recoverable targets: judged with stabilization monitors
    # (transient violations tolerated inside the window, convergence
    # verdicted) instead of the default set, and the natural prey of
    # recover campaigns (crash+restart pairs, corruption bursts).
    recover: bool = False
    # Register names a recover campaign may corrupt.  Sampling guidance
    # only — resolution still goes through the ``build()`` registers
    # table, which stays the single source of truth for validation.
    corruptible: Tuple[str, ...] = ()


def _build_fischer_n3():
    from ..algorithms import FischerLock, mutex_session

    lock = FischerLock(delta=1.0)
    factories = {
        pid: (lambda p: mutex_session(lock, p, sessions=2, cs_duration=1.0))
        for pid in range(3)
    }
    return factories, [MutualExclusionProperty()], {"x": lock.x}


def _build_alg3_n4():
    from ..algorithms import mutex_session
    from ..core.mutex import default_time_resilient_mutex

    lock = default_time_resilient_mutex(4, delta=1.0)
    factories = {
        pid: (lambda p: mutex_session(lock, p, sessions=1, cs_duration=1.0))
        for pid in range(4)
    }
    return factories, [MutualExclusionProperty()], {}


def _build_consensus_n4():
    from ..core.consensus import TimeResilientConsensus, labeled_decision

    consensus = TimeResilientConsensus(delta=1.0, max_rounds=3)
    inputs = {pid: pid % 2 for pid in range(4)}
    factories = {
        pid: (lambda p: labeled_decision(consensus.propose(p, inputs[p])))
        for pid in inputs
    }
    return factories, [AgreementProperty(), ValidityProperty(inputs)], {}


def _build_dg_mutex_n3():
    from ..algorithms import stabilizing_ring

    lock, factory = stabilizing_ring(3, sessions=1, cs_duration=1.0)
    factories = {pid: factory for pid in range(3)}
    registers = {f"S{i}": lock.cells[i] for i in range(3)}
    return factories, [MutualExclusionProperty()], registers


def _build_golab_consensus_n3():
    from ..algorithms import RecoverableConsensus

    consensus = RecoverableConsensus()
    inputs = {pid: pid + 1 for pid in range(3)}  # None encodes ⊥: stay nonzero
    factories = {
        pid: (lambda p: consensus.propose(p, inputs[p])) for pid in inputs
    }
    # No corruptible registers: scrambling the persistent decision record
    # forges a decision, which is outside the crash-recovery contract
    # (see repro.algorithms.recoverable) — so none are declared.
    return factories, [AgreementProperty(), ValidityProperty(inputs)], {}


SIM_TARGETS: Dict[str, SimTarget] = {
    t.name: t
    for t in (
        SimTarget(
            "fischer_n3",
            "Fischer's lock, 3 processes, 2 sessions (violation exists)",
            _build_fischer_n3,
            max_ops=40,
            pids=(0, 1, 2),
            expect_violation=True,
        ),
        SimTarget(
            "alg3_n4",
            "Algorithm 3 mutex, 4 processes (must stay safe)",
            _build_alg3_n4,
            max_ops=120,
            pids=(0, 1, 2, 3),
            expect_violation=False,
        ),
        SimTarget(
            "consensus_n4",
            "Algorithm 1 consensus, 4 processes (must stay safe)",
            _build_consensus_n4,
            max_ops=80,
            pids=(0, 1, 2, 3),
            expect_violation=False,
        ),
        SimTarget(
            "dg_mutex_n3",
            "DG self-stabilizing token mutex, 3 processes (must converge)",
            _build_dg_mutex_n3,
            max_ops=300,
            pids=(0, 1, 2),
            expect_violation=False,
            recover=True,
            corruptible=("S0", "S1", "S2"),
        ),
        SimTarget(
            "golab_consensus_n3",
            "Golab recoverable consensus, 3 processes (survives restarts)",
            _build_golab_consensus_n3,
            max_ops=60,
            pids=(0, 1, 2),
            expect_violation=False,
            recover=True,
        ),
    )
}


def sim_target(name: str) -> SimTarget:
    try:
        return SIM_TARGETS[name]
    except KeyError:
        raise KeyError(
            f"unknown sim target {name!r}; known: {', '.join(sorted(SIM_TARGETS))}"
        ) from None


# ---------------------------------------------------------------------------
# Sim execution: one function for generation AND replay.
# ---------------------------------------------------------------------------


@dataclass
class SimOutcome:
    """One sim chaos execution, generated or replayed."""

    campaign: Campaign
    schedule: Tuple[int, ...]
    violations: List[ChaosViolation] = field(default_factory=list)
    steps: int = 0
    done: bool = False  # every process ran to completion
    run_seed: Optional[str] = None
    # Positive evidence from monitors that measure rather than reject —
    # e.g. the StabilizationMonitor's convergence verdict.  Only produced
    # on runs that end without a violation stopping them.
    verdicts: List[ChaosViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def find(self, monitor: str) -> Optional[ChaosViolation]:
        """The first violation from the named monitor, if any."""
        for violation in self.violations:
            if violation.monitor == monitor:
                return violation
        return None

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"SimOutcome({status}, steps={self.steps}, "
            f"schedule_len={len(self.schedule)}, done={self.done})"
        )


def run_sim(
    target: SimTarget,
    campaign: Campaign,
    schedule: Optional[Sequence[int]] = None,
    run_seed: Optional[str] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    monitors: Optional[List[ChaosMonitor]] = None,
    stop_monitor: Optional[str] = None,
) -> SimOutcome:
    """Execute one sim chaos run.

    With ``schedule=None`` the campaign-aware scheduler (seeded from
    ``(campaign.seed, run_seed)``) generates one; otherwise the given
    schedule is replayed deterministically.  ``stop_monitor`` stops the
    run as soon as that monitor fires (the shrinker's fast path);
    otherwise the run continues to its natural end collecting every
    monitor's first violation.
    """
    if campaign.substrate != "sim":
        raise ValueError(f"expected a sim campaign, got {campaign.substrate!r}")
    factories, properties, registers = target.build()
    # Validate the corruption plan eagerly: a typo'd register name must
    # fail loudly up front, not silently no-op because the clock never
    # reached the corruption instant (or worse, only explode mid-run).
    for corruption in campaign.corruptions:
        if corruption.register not in registers:
            raise ValueError(
                f"campaign corrupts unknown register {corruption.register!r}; "
                f"target {target.name!r} declares {sorted(registers)}"
            )
    if monitors is None:
        # Busy-wait step complexity is unbounded under adversarial
        # interleavings, so the "still churning" budget scales with the
        # target's total op budget rather than using a fixed constant.
        budget = max(200, 2 * target.max_ops * len(target.pids))
        if target.recover:
            monitors = stabilization_monitors(
                properties, campaign,
                convergence_budget=budget, window=STABILIZATION_WINDOW,
            )
        else:
            monitors = default_monitors(
                properties, campaign, convergence_budget=budget
            )
    for monitor in monitors:
        monitor.reset()
    sandbox = Sandbox(factories, max_ops=target.max_ops)

    # Ambient tracing (repro.obs): logical-clock substrate — each shared
    # step spans [clock, clock+1].  Pure observation; scheduling, RNG
    # draws and monitor decisions are identical with or without it.
    tracer = active_tracer()
    if tracer is not None:
        tracer.run_marker(
            "steps",
            target=target.name,
            seed=campaign.seed,
            run_seed=run_seed,
            pids=list(target.pids),
        )
        for window in campaign.windows:
            tracer.window(
                float(window.start),
                float(window.end),
                None if window.pids is None else sorted(window.pids),
                "timing",
            )

    crash_at = dict(campaign.crash_at)
    crash_after = dict(campaign.crash_after)
    recover_at = dict(campaign.recover_at)
    corruptions = sorted(campaign.corruptions, key=lambda c: c.at)
    next_corruption = 0
    windows = campaign.windows
    generating = schedule is None
    rng = random.Random(f"chaos:{campaign.seed}:{run_seed}") if generating else None

    recorded: List[int] = []
    violations: List[ChaosViolation] = []
    clock = 0
    halted: set = set()
    inf = math.inf

    def apply_corruptions() -> None:
        nonlocal next_corruption
        while next_corruption < len(corruptions) and corruptions[next_corruption].at <= clock:
            corruption = corruptions[next_corruption]
            sandbox.memory.poke(registers[corruption.register], corruption.value)
            if tracer is not None:
                tracer.fault(corruption.register, float(clock))
            next_corruption += 1

    def apply_recoveries() -> None:
        # Runs before refresh_halted, so a restart instant at-or-before
        # the crash instant is a no-op (entry consumed, pid not yet
        # halted) — as is an entry whose pid never crashed or finished
        # first.  Orphaned entries are legal: the shrinker relies on it.
        for pid, when in list(recover_at.items()):
            if clock < when:
                continue
            del recover_at[pid]
            if pid not in halted:
                continue
            halted.discard(pid)
            crash_at.pop(pid, None)
            crash_after.pop(pid, None)
            sandbox.restart(pid, factories[pid])
            if tracer is not None:
                tracer.restart(pid, float(clock))

    def refresh_halted() -> None:
        for pid in sandbox.enabled():
            if pid in halted:
                continue
            if clock >= crash_at.get(pid, inf) or sandbox.op_count(pid) >= crash_after.get(pid, inf):
                halted.add(pid)
                if tracer is not None:
                    tracer.crash(pid, float(clock))

    def settle() -> None:
        # Fault bookkeeping before scheduling: corruptions and restarts
        # due at the current instant, then fresh crashes.  When every
        # process is done or crashed but a restart is still scheduled,
        # idle time passes — jump the clock to the next restart instead
        # of abandoning the run with a recovery forever pending.  The
        # jump is a function of the reached state, so generation and
        # replay fast-forward identically.
        nonlocal clock
        while True:
            apply_corruptions()
            apply_recoveries()
            refresh_halted()
            if any(p not in halted for p in sandbox.enabled()):
                return
            pending = [
                when for pid, when in recover_at.items() if pid in halted
            ]
            if not pending:
                return
            # apply_recoveries consumed everything due, so the earliest
            # pending restart is strictly in the future: ceil advances.
            clock = max(clock, math.ceil(min(pending)))

    def check_monitors() -> bool:
        frozen_halted = frozenset(halted)
        for monitor in monitors:
            message = monitor.on_step(sandbox, clock, frozen_halted)
            if message is not None:
                violations.append(ChaosViolation(monitor.name, message, clock))
                if tracer is not None:
                    tracer.violation(monitor.name, float(clock))
                if stop_monitor is not None and monitor.name == stop_monitor:
                    return True
        return False

    stopped = False
    if generating:
        while clock < max_steps:
            settle()
            runnable = [p for p in sandbox.enabled() if p not in halted]
            if not runnable:
                break
            free = [
                p
                for p in runnable
                if not any(w.affects(p, clock) for w in windows)
            ]
            pid = rng.choice(free or runnable)
            pending = sandbox.pending_op(pid) if tracer is not None else None
            sandbox.step(pid)
            recorded.append(pid)
            clock += 1
            if tracer is not None:
                tracer.op(
                    op_kind(pending), pid, op_register(pending),
                    float(clock - 1), float(clock),
                )
            if check_monitors():
                stopped = True
                break
    else:
        for pid in schedule:
            settle()
            if pid in halted or pid not in sandbox.enabled():
                continue  # tolerant replay: skip unrunnable slots
            pending = sandbox.pending_op(pid) if tracer is not None else None
            sandbox.step(pid)
            recorded.append(pid)
            clock += 1
            if tracer is not None:
                tracer.op(
                    op_kind(pending), pid, op_register(pending),
                    float(clock - 1), float(clock),
                )
            if check_monitors():
                stopped = True
                break

    done = (not stopped) and all(sandbox.done(pid) for pid in factories)
    verdicts: List[ChaosViolation] = []
    if not stopped:
        frozen_halted = frozenset(halted)
        for monitor in monitors:
            message = monitor.finalize(sandbox, clock, frozen_halted)
            if message is not None:
                violations.append(ChaosViolation(monitor.name, message, clock))
                if tracer is not None:
                    tracer.violation(monitor.name, float(clock))
        verdicts = [
            monitor.verdict
            for monitor in monitors
            if getattr(monitor, "verdict", None) is not None
        ]
    if tracer is not None:
        for pid in sorted(factories):
            if sandbox.done(pid):
                tracer.done(pid, float(clock))
    return SimOutcome(
        campaign=campaign,
        schedule=tuple(recorded),
        violations=violations,
        steps=clock,
        done=done,
        run_seed=run_seed,
        verdicts=verdicts,
    )


@dataclass
class CampaignReport:
    """Aggregate of many runs of one campaign."""

    campaign: Campaign
    schedules_run: int = 0
    total_steps: int = 0
    failing: Optional[Any] = None  # first failing SimOutcome / NetOutcome
    shard_timing: Optional[List[Dict[str, Any]]] = None  # telemetry only
    # Recover targets: how many runs produced a stabilization verdict,
    # and the first such verdict (the evidence --expect recover checks).
    verdicts: int = 0
    first_verdict: Optional[ChaosViolation] = None
    # (global run index, repro.obs records) per traced run, in index
    # order — same chunk discipline as the fuzzers, so concatenating is
    # byte-identical across worker counts.
    trace_chunks: List[Tuple[int, List[Dict[str, Any]]]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return self.failing is None

    @property
    def converged(self) -> bool:
        """Every run finished clean with a stabilization verdict."""
        return self.ok and self.verdicts == self.schedules_run

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"failing at run {self.failing.run_seed!r}"
        return (
            f"CampaignReport({status}, schedules={self.schedules_run}, "
            f"steps={self.total_steps})"
        )


def _traced_sim_run(
    target: SimTarget,
    campaign: Campaign,
    run_seed: str,
    max_steps: int,
    trace: bool,
) -> Tuple[SimOutcome, Optional[List[Dict[str, Any]]]]:
    """One generated run, optionally under a private tracer."""
    if not trace:
        return run_sim(
            target, campaign, run_seed=run_seed, max_steps=max_steps
        ), None
    from repro.obs import Tracer, trace_scope

    tracer = Tracer()
    with trace_scope(tracer):
        outcome = run_sim(
            target, campaign, run_seed=run_seed, max_steps=max_steps
        )
    return outcome, tracer.take()


def _sim_shard(shard, payload) -> List[Any]:
    """Shard worker: one slice of a sim campaign's run-index range.

    Module-level for the spawn pool; the target travels by *name* (its
    build closures cannot cross a process boundary) while the frozen
    campaign pickles as-is.  Each run is seeded by its global index
    exactly as in the sequential loop, and the shard stops at its own
    first failure — runs past the globally-first failure are discarded
    by the merge, so stopping early only saves work.
    """
    from ..parallel.merge import RunRecord

    target_name, campaign, max_steps, trace = payload
    target = sim_target(target_name)
    records: List[Any] = []
    for index in range(shard.start, shard.stop):
        outcome, chunk = _traced_sim_run(
            target, campaign, str(index), max_steps, trace
        )
        records.append(
            RunRecord(
                index=index,
                steps=outcome.steps,
                outcome=None if outcome.ok else outcome,
                verdict=outcome.verdicts[0] if outcome.verdicts else None,
                trace=chunk,
            )
        )
        if not outcome.ok:
            break
    return records


def _run_campaign_sharded(
    campaign: Campaign,
    schedules: int,
    worker,
    payload,
    workers: int,
    pool,
) -> CampaignReport:
    """Common sharded path for both substrates' campaign loops."""
    from ..parallel import WorkerPool, make_shards, timing_rows
    from ..parallel.merge import merge_campaign_runs

    shards = make_shards(schedules, workers, master_seed=str(campaign.seed))
    own_pool = pool is None
    if own_pool:
        pool = WorkerPool(workers)
    try:
        results = pool.run(worker, shards, payload)
    finally:
        if own_pool:
            pool.close()
    report = merge_campaign_runs(campaign, [r.value for r in results])
    report.shard_timing = timing_rows(results, campaign=str(campaign.seed))
    return report


def run_sim_campaign(
    target: SimTarget,
    campaign: Campaign,
    schedules: int = 20,
    max_steps: int = DEFAULT_MAX_STEPS,
    workers: int = 1,
    pool=None,
    trace: bool = False,
) -> CampaignReport:
    """Run ``schedules`` generated executions; stop at the first failure.

    ``workers > 1`` shards the run-index range over processes (reusing
    ``pool``, a :class:`repro.parallel.WorkerPool`, when given).  Runs
    are seeded by global index, so the report — failing outcome,
    ``schedules_run``, ``total_steps``, verdict counts, trace chunks —
    is identical to the sequential path; only ``shard_timing`` differs.
    ``trace=True`` records each run under a private ``repro.obs`` tracer
    and collects the chunks on the report in run-index order.
    """
    if workers != 1 or pool is not None:
        return _run_campaign_sharded(
            campaign, schedules, _sim_shard,
            (target.name, campaign, max_steps, trace),
            workers=workers if pool is None else pool.workers, pool=pool,
        )
    report = CampaignReport(campaign=campaign)
    for index in range(schedules):
        outcome, chunk = _traced_sim_run(
            target, campaign, str(index), max_steps, trace
        )
        report.schedules_run += 1
        report.total_steps += outcome.steps
        if chunk is not None:
            report.trace_chunks.append((index, chunk))
        if outcome.verdicts:
            report.verdicts += 1
            if report.first_verdict is None:
                report.first_verdict = outcome.verdicts[0]
        if not outcome.ok:
            report.failing = outcome
            break
    return report


# ---------------------------------------------------------------------------
# Net substrate: explicit workloads over the quorum emulation.
# ---------------------------------------------------------------------------

# A workload is one ops tuple per client; each op is ("write", reg, value)
# or ("read", reg, None).
Workload = Tuple[Tuple[Tuple[str, int, Any], ...], ...]


@dataclass(frozen=True)
class NetParams:
    """The fixed shape of a net chaos run (serialized into artifacts)."""

    clients: int = 2
    replicas: int = 3
    registers: int = 2
    ops_per_client: int = 3
    bound: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients,
            "replicas": self.replicas,
            "registers": self.registers,
            "ops_per_client": self.ops_per_client,
            "bound": self.bound,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NetParams":
        return cls(
            clients=int(data["clients"]),
            replicas=int(data["replicas"]),
            registers=int(data["registers"]),
            ops_per_client=int(data["ops_per_client"]),
            bound=float(data["bound"]),
        )


@dataclass
class NetOutcome:
    """One net chaos execution (linearizability verdict per register)."""

    campaign: Campaign
    workload: Workload
    violations: List[ChaosViolation] = field(default_factory=list)
    operations: int = 0
    pending: int = 0
    status: str = ""
    run_seed: Optional[str] = None
    # Transport telemetry (NetStats.snapshot()); serialized into repro
    # artifacts so a counterexample ships with its wire-level counters.
    net_stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"NetOutcome({status}, operations={self.operations}, "
            f"pending={self.pending}, status={self.status})"
        )


def sample_net_workload(
    campaign: Campaign, run_seed: str, params: NetParams
) -> Workload:
    """Draw the per-client read/write choices for one run."""
    rng = random.Random(f"chaos:{campaign.seed}:{run_seed}:workload")
    value = 1
    workload: List[Tuple[Tuple[str, int, Any], ...]] = []
    for _client in range(params.clients):
        choices: List[Tuple[str, int, Any]] = []
        for _ in range(params.ops_per_client):
            if rng.random() < 0.5:
                choices.append(("write", rng.randrange(params.registers), value))
                value += 1
            else:
                choices.append(("read", rng.randrange(params.registers), None))
        workload.append(tuple(choices))
    return tuple(workload)


def _net_client(
    choices: Sequence[Tuple[str, int, Any]], registers: Sequence[Register]
):
    from ..spec.histories import INVOKE, RESPOND

    for op_kind, reg_index, value in choices:
        register = registers[reg_index]
        if op_kind == "write":
            yield ops.label(INVOKE, (register.name, "write", (value,)))
            yield register.write(value)
            yield ops.label(RESPOND, (register.name, None))
        else:
            yield ops.label(INVOKE, (register.name, "read", ()))
            result = yield register.read()
            yield ops.label(RESPOND, (register.name, result))


def run_net(
    campaign: Campaign,
    workload: Workload,
    params: NetParams = NetParams(),
    run_seed: Optional[str] = None,
) -> NetOutcome:
    """Execute one net chaos run and check linearizability per register.

    Deterministic in ``(campaign, workload, run_seed)``: the transport's
    RNG is seeded from the campaign seed and ``run_seed``, the fault
    environment comes from the campaign's adapters, and the workload is
    explicit data — exactly the triple the shrinker minimizes.
    """
    from ..net.quorum import QuorumSystem
    from ..spec.histories import history_from_trace, pending_from_trace
    from ..spec.linearizability import RegisterModel, check_linearizability

    if campaign.substrate != "net":
        raise ValueError(f"expected a net campaign, got {campaign.substrate!r}")
    if len(workload) != params.clients:
        raise ValueError(
            f"workload has {len(workload)} clients, params say {params.clients}"
        )
    registers = [Register(f"r{i}") for i in range(params.registers)]
    programs = [_net_client(choices, registers) for choices in workload]
    crashes = campaign.crash_schedule()
    tracer = active_tracer()
    if tracer is not None:
        tracer.run_marker(
            "net",
            seed=campaign.seed,
            run_seed=run_seed,
            pids=list(range(params.clients + params.replicas)),
        )
        plan = campaign.net_plan()
        for loss in plan.losses:
            tracer.window(
                float(loss.start), float(loss.end),
                None if loss.pids is None else sorted(loss.pids), "loss",
            )
        for spike in plan.spikes:
            tracer.window(
                float(spike.start), float(spike.end),
                None if spike.pids is None else sorted(spike.pids), "spike",
            )
        for partition in plan.partitions:
            tracer.window(
                float(partition.start), float(partition.end),
                sorted(p for group in partition.groups for p in group),
                "partition",
            )
    system = QuorumSystem(
        params.clients,
        replicas=params.replicas,
        bound=params.bound,
        seed=f"chaos:{campaign.seed}:{run_seed}:transport",
        faults=campaign.net_plan(),
        crashes=crashes if (campaign.crash_at or campaign.crash_after) else None,
        max_time=200.0 * params.bound,
    )
    result = system.run(programs)
    outcome = NetOutcome(
        campaign=campaign,
        workload=workload,
        status=result.status.value,
        run_seed=run_seed,
        net_stats=system.transport.stats.snapshot(),
    )
    for register in registers:
        history = history_from_trace(result.trace, obj=register.name)
        pending = pending_from_trace(result.trace, obj=register.name)
        check = check_linearizability(
            history, RegisterModel(initial=register.initial), pending=pending
        )
        outcome.operations += len(history)
        outcome.pending += len(pending)
        if not check.ok:
            outcome.violations.append(
                ChaosViolation(
                    monitor="linearizability",
                    message=(
                        f"register {register.name!r}: {len(history)} completed "
                        f"+ {len(pending)} pending operations admit no legal "
                        f"sequential order"
                    ),
                    step=len(history),
                )
            )
            if tracer is not None:
                tracer.violation("linearizability", result.end_time)
    return outcome


def _net_shard(shard, payload) -> List[Any]:
    """Shard worker: one slice of a net campaign's run-index range.

    Workloads are re-sampled inside the worker from the campaign seed
    and the global run index — identical to the sequential loop's draws.
    """
    from ..parallel.merge import RunRecord

    campaign, params = payload
    records: List[Any] = []
    for index in range(shard.start, shard.stop):
        run_seed = str(index)
        workload = sample_net_workload(campaign, run_seed, params)
        outcome = run_net(campaign, workload, params=params, run_seed=run_seed)
        records.append(
            RunRecord(
                index=index,
                steps=outcome.operations,
                outcome=None if outcome.ok else outcome,
            )
        )
        if not outcome.ok:
            break
    return records


def run_net_campaign(
    campaign: Campaign,
    schedules: int = 10,
    params: NetParams = NetParams(),
    workers: int = 1,
    pool=None,
) -> CampaignReport:
    """Run ``schedules`` sampled workloads; stop at the first failure.

    Sharding semantics are those of :func:`run_sim_campaign`: worker
    count never changes the report, only ``shard_timing``.
    """
    if workers != 1 or pool is not None:
        return _run_campaign_sharded(
            campaign, schedules, _net_shard, (campaign, params),
            workers=workers if pool is None else pool.workers, pool=pool,
        )
    report = CampaignReport(campaign=campaign)
    for index in range(schedules):
        run_seed = str(index)
        workload = sample_net_workload(campaign, run_seed, params)
        outcome = run_net(campaign, workload, params=params, run_seed=run_seed)
        report.schedules_run += 1
        report.total_steps += outcome.operations
        if not outcome.ok:
            report.failing = outcome
            break
    return report
