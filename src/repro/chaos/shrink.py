"""Delta-debugging shrinker for failing chaos runs.

A fuzz hit is rarely a good bug report: "a 900-step schedule under a
6-window fault plan violated mutual exclusion" makes the *reader* do the
localization.  This module minimizes a failing ``(campaign, payload,
seed)`` triple — the payload being the pid schedule (sim) or the client
workload (net) — by repeatedly proposing smaller candidates and
**re-executing each one** through the real runner
(:func:`repro.chaos.runner.run_sim` / :func:`~repro.chaos.runner.run_net`)
to confirm the violation persists.  Nothing is assumed about fault
interactions; the execution is the oracle.

The reduction passes, applied to fixpoint:

1. **truncate** (sim) — cut the schedule right after the step at which
   the monitor fired; everything later is noise by construction;
2. **ddmin** over fault-plan components — windows, crash entries,
   corruptions, losses, spikes, partitions — Zeller-Hildebrandt minimal
   failing subsets per component.  Sim timing windows bias schedule
   *generation* but a recorded schedule already witnesses the timing
   behaviour (asynchronous semantics), so this pass typically deletes
   every window — which is the honest minimal form: the schedule IS the
   counterexample;
3. **narrow** — halve surviving windows from either end while the
   failure persists (matters for net windows, which do act at replay);
4. **ddmin** over the payload — schedule steps, or (client, op) pairs of
   the workload.

Candidates are accepted when the *same monitor* fires again; the exact
message may legitimately change as context shrinks (an operation count,
a step number).  Every execution is counted and memoized, so a
:class:`ShrinkResult` reports how much work minimization took.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .monitors import ChaosViolation
from .plan import Campaign
from .runner import DEFAULT_MAX_STEPS, NetParams, SimTarget, run_net, run_sim

__all__ = [
    "ddmin",
    "ShrinkResult",
    "shrink_sim",
    "shrink_net",
]

# Reproduce callable: (campaign, payload) -> the watched monitor's
# violation, or None when the candidate no longer fails.
Reproduce = Callable[[Campaign, Any], Optional[ChaosViolation]]


def ddmin(items: Sequence[Any], fails: Callable[[List[Any]], bool]) -> List[Any]:
    """Zeller-Hildebrandt delta debugging: a 1-minimal failing sublist.

    ``fails(candidate)`` must be True for the full ``items``.  The result
    still fails, and removing any single element makes it pass (relative
    to the granularity explored) — the classic ddmin guarantee.
    """
    items = list(items)
    if not fails(items):
        raise ValueError("ddmin requires the full input to fail")
    if not items:
        return items
    if fails([]):
        return []
    n = 2
    while len(items) >= 2:
        chunk = math.ceil(len(items) / n)
        subsets = [items[i : i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        for index, subset in enumerate(subsets):
            if fails(subset):
                items, n, reduced = subset, 2, True
                break
        if not reduced and len(subsets) > 2:
            for index in range(len(subsets)):
                complement = [
                    item
                    for j, subset in enumerate(subsets)
                    if j != index
                    for item in subset
                ]
                if fails(complement):
                    items, reduced = complement, True
                    n = max(n - 1, 2)
                    break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), 2 * n)
    return items


@dataclass
class ShrinkResult:
    """A minimized failing triple plus the cost of getting there."""

    campaign: Campaign
    payload: Any  # schedule tuple (sim) / workload (net)
    violation: ChaosViolation
    original_campaign: Campaign
    original_payload: Any
    executions: int
    rounds: int

    @property
    def payload_reduction(self) -> float:
        """Final payload size over original (1.0 = no reduction)."""
        original = _payload_size(self.original_payload)
        if original == 0:
            return 1.0
        return _payload_size(self.payload) / original

    def summary(self) -> str:
        return (
            f"faults {self.original_campaign.fault_count} -> "
            f"{self.campaign.fault_count}, payload "
            f"{_payload_size(self.original_payload)} -> "
            f"{_payload_size(self.payload)} "
            f"({self.executions} executions, {self.rounds} round(s))"
        )


def _payload_size(payload: Any) -> int:
    if payload and isinstance(payload[0], tuple):  # net workload
        return sum(len(client_ops) for client_ops in payload)
    return len(payload)


class _Session:
    """Shared bookkeeping: memoized, counted candidate executions."""

    def __init__(self, reproduce: Reproduce, monitor: str) -> None:
        self.reproduce = reproduce
        self.monitor = monitor
        self.executions = 0
        self._memo: Dict[Any, Optional[ChaosViolation]] = {}

    def run(self, campaign: Campaign, payload: Any) -> Optional[ChaosViolation]:
        key: Any
        try:
            key = hash((campaign, payload))
        except TypeError:
            key = None
        if key is not None and key in self._memo:
            return self._memo[key]
        self.executions += 1
        violation = self.reproduce(campaign, payload)
        if violation is not None and violation.monitor != self.monitor:
            violation = None  # a *different* failure is not this bug
        if key is not None:
            self._memo[key] = violation
        return violation

    def fails(self, campaign: Campaign, payload: Any) -> bool:
        return self.run(campaign, payload) is not None


def _ddmin_field(
    session: _Session, campaign: Campaign, payload: Any, field_name: str
) -> Campaign:
    """ddmin one tuple-valued campaign field, keeping the payload fixed."""
    items = list(getattr(campaign, field_name))
    if not items:
        return campaign

    def fails(candidate: List[Any]) -> bool:
        return session.fails(
            campaign.replace(**{field_name: tuple(candidate)}), payload
        )

    kept = ddmin(items, fails)
    return campaign.replace(**{field_name: tuple(kept)})


_WINDOW_FIELDS = ("windows", "losses", "spikes", "partitions")


def _narrow_windows(
    session: _Session, campaign: Campaign, payload: Any, min_width: float = 0.5
) -> Campaign:
    """Halve each surviving window from either end while the bug persists."""
    for field_name in _WINDOW_FIELDS:
        windows = list(getattr(campaign, field_name))
        for index, window in enumerate(windows):
            if not math.isfinite(window.end):
                continue
            for _ in range(8):  # geometric: 8 halvings is plenty
                width = window.end - window.start
                if width <= min_width:
                    break
                mid = window.start + width / 2.0
                narrowed = None
                for candidate in (
                    dataclasses.replace(window, end=mid),
                    dataclasses.replace(window, start=mid),
                ):
                    trial = list(windows)
                    trial[index] = candidate
                    if session.fails(
                        campaign.replace(**{field_name: tuple(trial)}), payload
                    ):
                        narrowed = candidate
                        break
                if narrowed is None:
                    break
                window = narrowed
                windows[index] = narrowed
                campaign = campaign.replace(**{field_name: tuple(windows)})
    return campaign


# recover_at shrinks independently of crash_at: an orphaned restart (its
# crash deleted, or vice versa) is a defined no-op, so ddmin may drop
# entries from either side freely.
_SIM_FAULT_FIELDS = (
    "windows", "crash_at", "crash_after", "corruptions", "recover_at"
)
_NET_FAULT_FIELDS = ("losses", "spikes", "partitions", "crash_at", "crash_after")


def _shrink_loop(
    session: _Session,
    campaign: Campaign,
    payload: Any,
    fault_fields: Tuple[str, ...],
    shrink_payload: Callable[[_Session, Campaign, Any], Any],
    max_rounds: int,
) -> Tuple[Campaign, Any, int]:
    """Alternate fault-plan and payload passes until a fixpoint."""
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        before = (campaign, payload)
        for field_name in fault_fields:
            campaign = _ddmin_field(session, campaign, payload, field_name)
        campaign = _narrow_windows(session, campaign, payload)
        payload = shrink_payload(session, campaign, payload)
        if (campaign, payload) == before:
            break
    return campaign, payload, rounds


# ---------------------------------------------------------------------------
# Sim substrate.
# ---------------------------------------------------------------------------


def shrink_sim(
    target: SimTarget,
    campaign: Campaign,
    schedule: Sequence[int],
    monitor: str,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_rounds: int = 3,
) -> Optional[ShrinkResult]:
    """Minimize a failing sim triple; ``None`` if it does not reproduce.

    ``monitor`` names the violation being chased (e.g. ``"mutual
    exclusion"``); candidates count as failing only when that same
    monitor fires on replay.
    """

    def reproduce(candidate: Campaign, payload: Any) -> Optional[ChaosViolation]:
        outcome = run_sim(
            target,
            candidate,
            schedule=list(payload),
            max_steps=max_steps,
            stop_monitor=monitor,
        )
        return outcome.find(monitor)

    session = _Session(reproduce, monitor)
    payload: Tuple[int, ...] = tuple(schedule)
    violation = session.run(campaign, payload)
    if violation is None:
        return None
    original_campaign, original_payload = campaign, payload

    # Pass 1: truncate right after the firing step — later steps are noise.
    if violation.step < len(payload):
        truncated = payload[: violation.step]
        if session.fails(campaign, truncated):
            payload = truncated

    def shrink_payload(
        session: _Session, campaign: Campaign, payload: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        return tuple(
            ddmin(list(payload), lambda cand: session.fails(campaign, tuple(cand)))
        )

    campaign, payload, rounds = _shrink_loop(
        session, campaign, payload, _SIM_FAULT_FIELDS, shrink_payload, max_rounds
    )
    final = session.run(campaign, payload)
    assert final is not None  # every accepted reduction re-verified this
    return ShrinkResult(
        campaign=campaign,
        payload=payload,
        violation=final,
        original_campaign=original_campaign,
        original_payload=original_payload,
        executions=session.executions,
        rounds=rounds,
    )


# ---------------------------------------------------------------------------
# Net substrate.
# ---------------------------------------------------------------------------


def shrink_net(
    campaign: Campaign,
    workload: Tuple[Tuple[Tuple[str, int, Any], ...], ...],
    monitor: str = "linearizability",
    params: NetParams = NetParams(),
    run_seed: Optional[str] = None,
    max_rounds: int = 3,
) -> Optional[ShrinkResult]:
    """Minimize a failing net triple; ``None`` if it does not reproduce."""

    def reproduce(candidate: Campaign, payload: Any) -> Optional[ChaosViolation]:
        outcome = run_net(candidate, payload, params=params, run_seed=run_seed)
        for violation in outcome.violations:
            if violation.monitor == monitor:
                return violation
        return None

    session = _Session(reproduce, monitor)
    if session.run(campaign, workload) is None:
        return None
    original_campaign, original_workload = campaign, workload

    def shrink_payload(session: _Session, campaign: Campaign, payload: Any) -> Any:
        # Flatten to (client, op) pairs so ddmin can drop ops anywhere,
        # then rebuild the fixed-width per-client tuple shape.
        flat = [
            (client, op)
            for client, client_ops in enumerate(payload)
            for op in client_ops
        ]

        def rebuild(pairs: List[Tuple[int, Any]]) -> Any:
            clients: List[List[Any]] = [[] for _ in range(len(payload))]
            for client, op in pairs:
                clients[client].append(op)
            return tuple(tuple(client_ops) for client_ops in clients)

        kept = ddmin(flat, lambda cand: session.fails(campaign, rebuild(cand)))
        return rebuild(kept)

    campaign, workload, rounds = _shrink_loop(
        session, campaign, workload, _NET_FAULT_FIELDS, shrink_payload, max_rounds
    )
    final = session.run(campaign, workload)
    assert final is not None
    return ShrinkResult(
        campaign=campaign,
        payload=workload,
        violation=final,
        original_campaign=original_campaign,
        original_payload=original_workload,
        executions=session.executions,
        rounds=rounds,
    )
