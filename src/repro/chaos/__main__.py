"""``python -m repro.chaos`` — run campaigns, shrink failures, replay artifacts.

Subcommands::

    run     sample campaigns, execute them (--workers N shards the schedule
            range over processes with identical results), optionally
            shrink + archive hits — shrinking and artifacts stay
            single-process, so a parallel-found violation replays through
            the unchanged pipeline
    shrink  re-minimize an existing artifact (e.g. one uploaded by CI)
    replay  re-execute an artifact and verify the violation byte-identically

Exit codes: 0 = expectation met, 1 = violated (a hit under ``--expect
clean``, no hit under ``--expect violation``, or a replay mismatch),
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .artifact import (
    artifact_from_net,
    artifact_from_sim,
    attach_observability,
    load_artifact,
    replay,
    save_artifact,
)
from .plan import (
    sample_net_campaign,
    sample_recover_campaign,
    sample_sim_campaign,
)
from .runner import (
    DEFAULT_MAX_STEPS,
    SIM_TARGETS,
    NetParams,
    run_net_campaign,
    run_sim_campaign,
    sim_target,
)
from .shrink import shrink_net, shrink_sim


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Fault-campaign orchestrator with counterexample shrinking.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="sample and execute chaos campaigns")
    run.add_argument("--substrate", choices=("sim", "net"), default="sim")
    run.add_argument(
        "--target",
        default="fischer_n3",
        choices=sorted(SIM_TARGETS),
        help="sim program under test (ignored for net)",
    )
    run.add_argument("--seed", default="chaos", help="campaign family seed")
    run.add_argument("--campaigns", type=int, default=3, metavar="N")
    run.add_argument(
        "--schedules", type=int, default=20, metavar="N",
        help="runs per campaign before declaring it clean",
    )
    run.add_argument("--severity", type=float, default=1.0)
    run.add_argument("--windows", type=int, default=6, metavar="N",
                     help="fault windows per sampled campaign")
    run.add_argument("--crash-prob", type=float, default=0.0)
    run.add_argument("--max-steps", type=int, default=DEFAULT_MAX_STEPS)
    run.add_argument(
        "--expect", choices=("clean", "violation", "recover", "any"),
        default="any",
        help="what outcome is success (drives the exit code); 'recover' "
             "additionally demands a stabilization verdict from every "
             "schedule (recover targets only)",
    )
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="shard each campaign's schedule range over N "
                          "processes; reports are identical to --workers 1 "
                          "(default: 1)")
    run.add_argument("--timing-json", type=Path, default=None, metavar="FILE",
                     help="write per-shard wall/throughput telemetry here")
    run.add_argument("--trace", type=Path, default=None, metavar="FILE",
                     help="write every run's structured trace (repro.obs "
                          "JSONL, global run-index order) here; "
                          "byte-identical across --workers counts "
                          "(sim substrate only)")
    run.add_argument("--shrink", action="store_true",
                     help="minimize the first failing run")
    run.add_argument("--artifact-dir", type=Path, default=None,
                     help="write a repro artifact per failing campaign here")
    run.add_argument("--json", type=Path, default=None,
                     help="write a machine-readable summary here")

    shrink = sub.add_parser("shrink", help="re-minimize an existing artifact")
    shrink.add_argument("artifact", type=Path)
    shrink.add_argument("-o", "--output", type=Path, default=None,
                        help="where to write the shrunk artifact "
                             "(default: overwrite in place)")

    rep = sub.add_parser("replay", help="replay an artifact and verify")
    rep.add_argument("artifact", type=Path)
    rep.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help="write the replay's structured trace (repro.obs JSONL) here; "
             "deterministic — same artifact, same bytes",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from ..parallel import WorkerPool

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.trace is not None and args.substrate != "sim":
        print("--trace is sim-only", file=sys.stderr)
        return 2
    if args.expect == "recover" and (
        args.substrate != "sim" or not sim_target(args.target).recover
    ):
        print(
            "--expect recover needs a sim recover target "
            f"({', '.join(sorted(n for n, t in SIM_TARGETS.items() if t.recover))})",
            file=sys.stderr,
        )
        return 2
    summary: Dict[str, Any] = {
        "substrate": args.substrate,
        "seed": args.seed,
        "campaigns": [],
    }
    hits = 0
    timing: List[Dict[str, Any]] = []
    trace_records: List[Dict[str, Any]] = []
    # One pool for the whole invocation: spawning workers (each imports
    # the package from scratch) dominates, mapping shards is cheap.
    pool = WorkerPool(args.workers) if args.workers > 1 else None
    try:
        hits = _run_campaigns(args, summary, timing, trace_records, pool)
    finally:
        if pool is not None:
            pool.close()
    if args.trace is not None:
        from repro.obs import write_jsonl

        args.trace.parent.mkdir(parents=True, exist_ok=True)
        count = write_jsonl(trace_records, str(args.trace))
        print(f"trace: {count} record(s) -> {args.trace}")
    if args.timing_json is not None:
        args.timing_json.parent.mkdir(parents=True, exist_ok=True)
        args.timing_json.write_text(json.dumps(
            {"workers": args.workers, "substrate": args.substrate,
             "seed": args.seed, "rows": timing},
            indent=2, sort_keys=True) + "\n")
    summary["hits"] = hits
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"{args.campaigns} campaign(s), {hits} with violations")
    if args.expect == "clean" and hits:
        return 1
    if args.expect == "violation" and not hits:
        return 1
    if args.expect == "recover" and (
        hits or not all(e.get("converged") for e in summary["campaigns"])
    ):
        return 1
    return 0


def _run_campaigns(
    args: argparse.Namespace,
    summary: Dict[str, Any],
    timing: List[Dict[str, Any]],
    trace_records: List[Dict[str, Any]],
    pool,
) -> int:
    hits = 0
    for index in range(args.campaigns):
        campaign_seed = f"{args.seed}-{index}"
        if args.substrate == "sim":
            target = sim_target(args.target)
            if target.recover:
                # Recover targets get the fault mix they exist for:
                # corruption bursts plus crash/restart pairs, all inside
                # a declared transient prefix.
                campaign = sample_recover_campaign(
                    campaign_seed,
                    pids=target.pids,
                    corruption_registers=target.corruptible,
                )
            else:
                campaign = sample_sim_campaign(
                    campaign_seed,
                    pids=target.pids,
                    windows=args.windows,
                    severity=args.severity,
                    crash_prob=args.crash_prob,
                )
            report = run_sim_campaign(
                target, campaign,
                schedules=args.schedules, max_steps=args.max_steps,
                workers=args.workers, pool=pool,
                trace=args.trace is not None,
            )
            for _run_index, records in report.trace_chunks:
                trace_records.extend(records)
        else:
            params = NetParams()
            campaign = sample_net_campaign(
                campaign_seed, clients=params.clients,
                replicas=params.replicas, severity=args.severity,
            )
            report = run_net_campaign(
                campaign, schedules=args.schedules, params=params,
                workers=args.workers, pool=pool,
            )
        if report.shard_timing:
            timing.extend(report.shard_timing)
        entry: Dict[str, Any] = {
            "seed": campaign_seed,
            "faults": campaign.fault_count,
            "schedules_run": report.schedules_run,
            "ok": report.ok,
        }
        if args.substrate == "sim" and sim_target(args.target).recover:
            entry["verdicts"] = report.verdicts
            entry["converged"] = report.converged
            if report.first_verdict is not None:
                entry["first_verdict"] = {
                    "monitor": report.first_verdict.monitor,
                    "message": report.first_verdict.message,
                    "step": report.first_verdict.step,
                }
        print(f"[{campaign_seed}] {campaign.describe()}")
        if report.ok:
            if "converged" in entry:
                status = "converged" if entry["converged"] else "NOT CONVERGED"
                print(
                    f"  {status}: {report.verdicts}/{report.schedules_run} "
                    f"schedule(s) produced a stabilization verdict"
                )
            else:
                print(f"  clean after {report.schedules_run} schedule(s)")
        else:
            hits += 1
            outcome = report.failing
            violation = outcome.violations[0]
            entry["violation"] = {
                "monitor": violation.monitor,
                "message": violation.message,
                "step": violation.step,
            }
            entry["run_seed"] = outcome.run_seed
            print(f"  VIOLATION ({violation.monitor}): {violation.message}")
            print(f"  run_seed={outcome.run_seed!r}")
            shrunk = None
            if args.shrink:
                if args.substrate == "sim":
                    shrunk = shrink_sim(
                        target, campaign, outcome.schedule,
                        monitor=violation.monitor, max_steps=args.max_steps,
                    )
                else:
                    shrunk = shrink_net(
                        campaign, outcome.workload,
                        monitor=violation.monitor, params=params,
                        run_seed=outcome.run_seed,
                    )
                if shrunk is not None:
                    entry["shrink"] = shrunk.summary()
                    print(f"  shrunk: {shrunk.summary()}")
            if args.artifact_dir is not None:
                if args.substrate == "sim":
                    artifact = artifact_from_sim(
                        args.target, outcome, violation=violation,
                        shrunk=shrunk, max_steps=args.max_steps,
                    )
                else:
                    artifact = artifact_from_net(
                        outcome, params, violation=violation, shrunk=shrunk
                    )
                # Embed the observability sidecars (timeliness graph and,
                # for net, transport counters) by re-running the archived
                # triple under a local tracer — deterministic, so the
                # sidecars always match what `replay --trace` reproduces.
                artifact = attach_observability(artifact)
                path = args.artifact_dir / f"{args.substrate}_{campaign_seed}.json"
                save_artifact(artifact, path)
                entry["artifact"] = str(path)
                print(f"  artifact: {path}")
        summary["campaigns"].append(entry)
    return hits


def _cmd_shrink(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.artifact)
    if artifact.substrate == "sim":
        shrunk = shrink_sim(
            sim_target(artifact.target), artifact.campaign,
            artifact.payload, monitor=artifact.violation.monitor,
            max_steps=artifact.max_steps,
        )
    else:
        shrunk = shrink_net(
            artifact.campaign, artifact.payload,
            monitor=artifact.violation.monitor,
            params=artifact.net_params or NetParams(),
            run_seed=artifact.run_seed,
        )
    if shrunk is None:
        print("violation did not reproduce; nothing to shrink", file=sys.stderr)
        return 1
    from dataclasses import replace as dc_replace

    updated = dc_replace(
        artifact,
        campaign=shrunk.campaign,
        payload=shrunk.payload,
        violation=shrunk.violation,
        provenance={**artifact.provenance, "re_shrink": shrunk.summary()},
    )
    destination = args.output or args.artifact
    save_artifact(updated, destination)
    print(f"shrunk: {shrunk.summary()}")
    print(f"wrote {destination}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    artifact = load_artifact(args.artifact)
    if args.trace is not None:
        from repro.obs import Tracer, trace_scope, write_jsonl

        tracer = Tracer()
        with trace_scope(tracer):
            report = replay(artifact)
        args.trace.parent.mkdir(parents=True, exist_ok=True)
        count = write_jsonl(tracer.take(), str(args.trace))
        print(f"trace: {count} record(s) -> {args.trace}")
    else:
        report = replay(artifact)
    print(report.detail)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "shrink":
        return _cmd_shrink(args)
    return _cmd_replay(args)


if __name__ == "__main__":
    sys.exit(main())
