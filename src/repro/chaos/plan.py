"""The unified fault-plan algebra: one ``Campaign`` for every substrate.

Before this module each substrate injected adversity through its own
ad-hoc structures — :class:`~repro.sim.failures.TimingFailureWindow` /
:class:`~repro.sim.failures.CrashSchedule` / memory corruptions on the
shared-memory side, :class:`~repro.net.faults.NetFaultPlan` windows on
the message-passing side.  A :class:`Campaign` composes all of them into
one seeded, serializable description:

* **sim-side** — timing-failure windows, a crash schedule, and named
  register corruptions (:class:`MemCorruption`, the serializable cousin
  of :class:`~repro.sim.failures.MemoryFault`);
* **net-side** — message loss, delay spikes and partitions, reusing the
  immutable window types from :mod:`repro.net.faults` verbatim.

A campaign is *pure data*: adapters (:meth:`Campaign.crash_schedule`,
:meth:`Campaign.net_plan`, :meth:`Campaign.timing_model`) translate it
into whatever a substrate consumes, and :func:`campaign_to_dict` /
:func:`campaign_from_dict` round-trip it through JSON so a failing
campaign can be archived and replayed bit-identically on any machine
(see :mod:`repro.chaos.artifact`).

Under the asynchronous sandbox semantics (:mod:`repro.verify.sandbox`)
there is no wall clock, so sim campaigns are interpreted over the
*logical clock* — the number of shared steps executed so far.  A timing
window ``[start, end)`` then reads "the affected processes' pending
steps take until logical time ``end`` to complete", which the chaos
runner realizes by stalling them (see :mod:`repro.chaos.runner`).

The generators (:func:`sample_sim_campaign`, :func:`sample_net_campaign`)
sample structured random campaigns of tunable ``severity``; every draw
derives from ``random.Random(f"chaos:{seed}")``, so a seed fully
determines the campaign.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..net.faults import DelaySpike, MessageLoss, NetFaultPlan, Partition
from ..sim.failures import CrashSchedule, RecoverSchedule, TimingFailureWindow
from ..sim.timing import FailureWindowTiming, TimingModel

__all__ = [
    "MemCorruption",
    "Campaign",
    "campaign_to_dict",
    "campaign_from_dict",
    "sample_sim_campaign",
    "sample_net_campaign",
    "sample_recover_campaign",
]

SUBSTRATES = ("sim", "net")


@dataclass(frozen=True)
class MemCorruption:
    """A serializable transient memory fault: register *named* ``register``
    is overwritten with ``value`` at (logical) time ``at``.

    Unlike :class:`~repro.sim.failures.MemoryFault` this carries the
    register's *name*, not its handle, so it survives JSON round-trips;
    the runner resolves the name against the target's declared registers.
    """

    at: float
    register: str
    value: Any = None

    def __post_init__(self) -> None:
        if not (self.at >= 0):  # also rejects NaN
            raise ValueError(f"corruption time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class Campaign:
    """One composed fault environment, targeting one substrate.

    ``seed`` names the campaign (generation provenance) and seeds any
    randomized interpretation (the net transport's loss draws, the sim
    runner's scheduling decisions); all fault content is explicit data.
    """

    substrate: str
    seed: str
    # sim-side faults (logical-clock times under the sandbox semantics)
    windows: Tuple[TimingFailureWindow, ...] = ()
    crash_at: Tuple[Tuple[int, float], ...] = ()
    crash_after: Tuple[Tuple[int, int], ...] = ()
    corruptions: Tuple[MemCorruption, ...] = ()
    # crash-recovery restarts (pid, logical time): the pid resumes with a
    # fresh program instance over persistent registers.  A recover entry
    # whose pid never crashed (or whose time precedes the crash) is a
    # no-op — the shrinker may orphan entries freely.
    recover_at: Tuple[Tuple[int, float], ...] = ()
    # net-side faults (virtual-time windows on the transport)
    losses: Tuple[MessageLoss, ...] = ()
    spikes: Tuple[DelaySpike, ...] = ()
    partitions: Tuple[Partition, ...] = ()

    def __post_init__(self) -> None:
        if self.substrate not in SUBSTRATES:
            raise ValueError(
                f"substrate must be one of {SUBSTRATES}, got {self.substrate!r}"
            )
        seen = set()
        for pairs in (self.crash_at, self.crash_after):
            for pid, when in pairs:
                if not (when >= 0):
                    raise ValueError(
                        f"crash point for pid {pid} must be >= 0, got {when}"
                    )
        for pid, _ in (*self.crash_at, *self.crash_after):
            if pid in seen:
                raise ValueError(f"pid {pid} appears twice in the crash plan")
            seen.add(pid)
        seen_recover = set()
        for pid, when in self.recover_at:
            if not (when >= 0):
                raise ValueError(
                    f"recover point for pid {pid} must be >= 0, got {when}"
                )
            if pid in seen_recover:
                raise ValueError(f"pid {pid} appears twice in the recover plan")
            seen_recover.add(pid)

    # -- size / bookkeeping --------------------------------------------------

    @property
    def fault_count(self) -> int:
        """How many individual fault elements the campaign carries."""
        return (
            len(self.windows)
            + len(self.crash_at)
            + len(self.crash_after)
            + len(self.corruptions)
            + len(self.recover_at)
            + len(self.losses)
            + len(self.spikes)
            + len(self.partitions)
        )

    @property
    def last_disruption_end(self) -> float:
        """When the last finite *transient* fault window closes (0 if none).

        A crash with no recovery is permanent (not a disruption that
        "stops"), so only timing windows, corruptions, restarts and the
        net fault windows count — a crash+restart pair is a transient
        fault whose disruption ends at the restart.  This is where the
        resilience definition's convergence clock starts: the campaign's
        declared failure-free suffix begins here.
        """
        ends = [w.end for w in self.windows]
        ends += [c.at for c in self.corruptions]
        ends += [t for _pid, t in self.recover_at]
        ends += [w.end for w in (*self.losses, *self.spikes, *self.partitions)]
        finite = [e for e in ends if math.isfinite(e)]
        return max(finite) if finite else 0.0

    def replace(self, **changes: Any) -> "Campaign":
        """A copy with some fields replaced (the shrinker's workhorse)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        parts = [f"{self.substrate} campaign seed={self.seed!r}"]
        for label, items in (
            ("windows", self.windows),
            ("crash_at", self.crash_at),
            ("crash_after", self.crash_after),
            ("corruptions", self.corruptions),
            ("recover_at", self.recover_at),
            ("losses", self.losses),
            ("spikes", self.spikes),
            ("partitions", self.partitions),
        ):
            if items:
                parts.append(f"{label}={len(items)}")
        return " ".join(parts)

    # -- substrate adapters --------------------------------------------------

    def crash_schedule(self) -> CrashSchedule:
        """The sim/net engines' crash description."""
        return CrashSchedule(
            at_time=dict(self.crash_at),
            after_steps=dict(self.crash_after),
        )

    def recover_schedule(self) -> RecoverSchedule:
        """The timed engine's crash-recovery restart description."""
        return RecoverSchedule(at_time=dict(self.recover_at))

    def net_plan(self) -> NetFaultPlan:
        """The transport-facing fault plan (net-side windows only)."""
        return NetFaultPlan(
            losses=self.losses, spikes=self.spikes, partitions=self.partitions
        )

    def timing_model(self, base: TimingModel) -> TimingModel:
        """A timed-engine model realizing the sim-side timing windows.

        For runs through the *timed* :class:`~repro.sim.Engine` (where
        window times are virtual time, not logical steps) — the bench
        scenarios and the trace-level resilience monitors use this.
        """
        if not self.windows:
            return base
        return FailureWindowTiming(base, self.windows)


# ---------------------------------------------------------------------------
# Serialization.  JSON has no inf, so open-ended window ends are encoded
# as the string "inf"; everything else is plain JSON scalars/lists.
# ---------------------------------------------------------------------------


def _enc_time(value: float) -> Any:
    return "inf" if math.isinf(value) else value


def _dec_time(value: Any) -> float:
    return math.inf if value == "inf" else float(value)


def _window_to_dict(w: TimingFailureWindow) -> Dict[str, Any]:
    return {
        "start": w.start,
        "end": _enc_time(w.end),
        "pids": None if w.pids is None else sorted(w.pids),
        "stretch": w.stretch,
        "duration": w.duration,
    }


def _window_from_dict(d: Dict[str, Any]) -> TimingFailureWindow:
    pids = d.get("pids")
    return TimingFailureWindow(
        start=float(d["start"]),
        end=_dec_time(d["end"]),
        pids=None if pids is None else frozenset(pids),
        stretch=float(d.get("stretch", 1.0)),
        duration=d.get("duration"),
    )


def campaign_to_dict(campaign: Campaign) -> Dict[str, Any]:
    """A JSON-ready dict; inverse of :func:`campaign_from_dict`."""
    return {
        "substrate": campaign.substrate,
        "seed": campaign.seed,
        "windows": [_window_to_dict(w) for w in campaign.windows],
        "crash_at": [[pid, t] for pid, t in campaign.crash_at],
        "crash_after": [[pid, k] for pid, k in campaign.crash_after],
        "recover_at": [[pid, t] for pid, t in campaign.recover_at],
        "corruptions": [
            {"at": c.at, "register": c.register, "value": c.value}
            for c in campaign.corruptions
        ],
        "losses": [
            {
                "rate": f.rate,
                "start": f.start,
                "end": _enc_time(f.end),
                "pids": None if f.pids is None else list(f.pids),
            }
            for f in campaign.losses
        ],
        "spikes": [
            {
                "start": f.start,
                "end": _enc_time(f.end),
                "stretch": f.stretch,
                "extra": f.extra,
                "pids": None if f.pids is None else list(f.pids),
            }
            for f in campaign.spikes
        ],
        "partitions": [
            {
                "start": f.start,
                "end": _enc_time(f.end),
                "groups": [list(g) for g in f.groups],
            }
            for f in campaign.partitions
        ],
    }


def campaign_from_dict(data: Dict[str, Any]) -> Campaign:
    """Rebuild a :class:`Campaign` from :func:`campaign_to_dict` output."""
    return Campaign(
        substrate=data["substrate"],
        seed=data["seed"],
        windows=tuple(_window_from_dict(w) for w in data.get("windows", ())),
        crash_at=tuple((int(p), float(t)) for p, t in data.get("crash_at", ())),
        crash_after=tuple(
            (int(p), int(k)) for p, k in data.get("crash_after", ())
        ),
        recover_at=tuple(
            (int(p), float(t)) for p, t in data.get("recover_at", ())
        ),
        corruptions=tuple(
            MemCorruption(at=float(c["at"]), register=c["register"],
                          value=c.get("value"))
            for c in data.get("corruptions", ())
        ),
        losses=tuple(
            MessageLoss(
                rate=float(f["rate"]),
                start=float(f["start"]),
                end=_dec_time(f["end"]),
                pids=None if f.get("pids") is None else tuple(f["pids"]),
            )
            for f in data.get("losses", ())
        ),
        spikes=tuple(
            DelaySpike(
                start=float(f["start"]),
                end=_dec_time(f["end"]),
                stretch=float(f.get("stretch", 1.0)),
                extra=float(f.get("extra", 0.0)),
                pids=None if f.get("pids") is None else tuple(f["pids"]),
            )
            for f in data.get("spikes", ())
        ),
        partitions=tuple(
            Partition(
                start=float(f["start"]),
                end=_dec_time(f["end"]),
                groups=tuple(tuple(g) for g in f["groups"]),
            )
            for f in data.get("partitions", ())
        ),
    )


# ---------------------------------------------------------------------------
# Generators: structured random campaigns of tunable severity.
# ---------------------------------------------------------------------------


def _campaign_rng(seed: Any) -> random.Random:
    return random.Random(f"chaos:{seed}")


def sample_sim_campaign(
    seed: Any,
    pids: Sequence[int],
    horizon: float = 120.0,
    windows: int = 6,
    severity: float = 1.0,
    crash_prob: float = 0.0,
    corruption_registers: Sequence[str] = (),
) -> Campaign:
    """A random shared-memory campaign over the logical-clock horizon.

    ``severity`` scales window width and stretch; ``crash_prob`` is the
    per-process probability of a scheduled crash; ``corruption_registers``
    (names) each get one corruption draw at the same probability.
    """
    if not (0.0 <= crash_prob <= 1.0):
        raise ValueError(f"crash_prob must be in [0, 1], got {crash_prob}")
    if severity <= 0:
        raise ValueError(f"severity must be positive, got {severity}")
    rng = _campaign_rng(seed)
    pid_list = list(pids)
    drawn: List[TimingFailureWindow] = []
    for _ in range(windows):
        start = rng.uniform(0.0, horizon)
        width = rng.uniform(0.05, 0.25) * horizon * severity
        affected: Optional[frozenset] = None
        if rng.random() >= 0.3:  # 70%: a random nonempty subset
            k = rng.randint(1, max(1, len(pid_list) - 1))
            affected = frozenset(rng.sample(pid_list, k))
        drawn.append(
            TimingFailureWindow(
                start=start,
                end=start + max(width, 1.0),
                pids=affected,
                stretch=1.0 + rng.uniform(1.0, 5.0) * severity,
            )
        )
    crash_at: List[Tuple[int, float]] = []
    crash_after: List[Tuple[int, int]] = []
    for pid in pid_list:
        if rng.random() < crash_prob:
            if rng.random() < 0.5:
                crash_at.append((pid, rng.uniform(0.0, horizon)))
            else:
                crash_after.append((pid, rng.randint(0, int(horizon) // 4)))
    corruptions = tuple(
        MemCorruption(at=rng.uniform(0.0, horizon), register=name,
                      value=rng.randint(0, len(pid_list)))
        for name in corruption_registers
        if rng.random() < crash_prob
    )
    return Campaign(
        substrate="sim",
        seed=str(seed),
        windows=tuple(sorted(drawn, key=lambda w: (w.start, w.end))),
        crash_at=tuple(crash_at),
        crash_after=tuple(crash_after),
        corruptions=corruptions,
    )


def sample_net_campaign(
    seed: Any,
    clients: int = 2,
    replicas: int = 3,
    bound: float = 1.0,
    horizon: float = 20.0,
    faults: int = 4,
    severity: float = 1.0,
    crash_minority: bool = True,
) -> Campaign:
    """A random networked campaign: loss, spikes, partitions, crashes.

    Fault kinds rotate through the draw so every campaign mixes them;
    ``crash_minority`` additionally crashes a random minority of the
    replicas (the ABD emulation must not notice).
    """
    if severity <= 0:
        raise ValueError(f"severity must be positive, got {severity}")
    rng = _campaign_rng(seed)
    replica_pids = list(range(clients, clients + replicas))
    all_pids = list(range(clients + replicas))
    losses: List[MessageLoss] = []
    spikes: List[DelaySpike] = []
    partitions: List[Partition] = []
    for i in range(faults):
        kind = ("loss", "spike", "partition")[i % 3]
        start = rng.uniform(0.0, horizon)
        width = rng.uniform(1.0, 4.0) * bound * severity
        if kind == "loss":
            losses.append(
                MessageLoss(
                    rate=min(0.9, rng.uniform(0.05, 0.3) * severity),
                    start=start,
                    end=start + width,
                )
            )
        elif kind == "spike":
            spikes.append(
                DelaySpike(
                    start=start,
                    end=start + width,
                    stretch=1.0 + rng.uniform(1.0, 4.0) * severity,
                    extra=rng.uniform(0.0, 2.0) * bound,
                )
            )
        else:
            isolated = tuple(rng.sample(replica_pids, max(1, replicas // 2)))
            rest = tuple(p for p in all_pids if p not in isolated)
            partitions.append(
                Partition(start=start, end=start + width, groups=(rest, isolated))
            )
    crash_at: Tuple[Tuple[int, float], ...] = ()
    if crash_minority and replicas // 2 > 0 and rng.random() < 0.5:
        victims = rng.sample(replica_pids, replicas // 2)
        crash_at = tuple(
            (pid, rng.uniform(0.0, horizon)) for pid in sorted(victims)
        )
    return Campaign(
        substrate="net",
        seed=str(seed),
        crash_at=crash_at,
        losses=tuple(losses),
        spikes=tuple(spikes),
        partitions=tuple(partitions),
    )


def sample_recover_campaign(
    seed: Any,
    pids: Sequence[int],
    horizon: float = 120.0,
    corruption_registers: Sequence[str] = (),
    corruptions: int = 2,
    crash_prob: float = 0.5,
    recover_delay: Tuple[float, float] = (5.0, 20.0),
) -> Campaign:
    """A recover campaign: corruption bursts plus crash/restart pairs.

    Built for *stabilizing/recoverable* targets, so every fault is
    transient by construction — corruptions are instants, and each drawn
    crash comes with a restart ``recover_delay`` later.  All fault times
    land in the first half of the horizon, leaving a declared
    failure-free suffix for the
    :class:`~repro.chaos.monitors.StabilizationMonitor` to judge
    convergence in.  No timing windows: delay provides no guarantee under
    the sandbox semantics anyway, and these targets are asynchronous.
    """
    if not (0.0 <= crash_prob <= 1.0):
        raise ValueError(f"crash_prob must be in [0, 1], got {crash_prob}")
    if corruptions < 0:
        raise ValueError(f"corruptions must be >= 0, got {corruptions}")
    rng = _campaign_rng(seed)
    pid_list = list(pids)
    names = list(corruption_registers)
    drawn: List[MemCorruption] = []
    for _ in range(corruptions if names else 0):
        drawn.append(
            MemCorruption(
                at=rng.uniform(0.0, horizon * 0.5),
                register=rng.choice(names),
                value=rng.randint(0, len(pid_list)),
            )
        )
    crash_at: List[Tuple[int, float]] = []
    recover_at: List[Tuple[int, float]] = []
    for pid in pid_list:
        if rng.random() < crash_prob:
            crashed = rng.uniform(0.0, horizon * 0.3)
            crash_at.append((pid, crashed))
            recover_at.append((pid, crashed + rng.uniform(*recover_delay)))
    return Campaign(
        substrate="sim",
        seed=str(seed),
        corruptions=tuple(sorted(drawn, key=lambda c: (c.at, c.register))),
        crash_at=tuple(crash_at),
        recover_at=tuple(recover_at),
    )
