"""Trace exporters: JSONL (canonical) and Chrome trace-event JSON.

Both formats are **byte-deterministic** for a fixed seed: records are
already canonical plain dicts (see :func:`repro.obs.tracer.canonical`),
serialization sorts keys and uses fixed separators, and no wall-clock
or environment data is ever written.

JSONL is the interchange format — one record per line, in emission
order — consumed back by :func:`read_jsonl` for the metrics and
timeliness stages.  The Chrome trace-event output loads directly into
Perfetto / ``chrome://tracing``: op spans become complete ("X") events
on a ``pid``/``tid`` grid, instantaneous markers become instant ("i")
events, messages become paired flow arrows via ``s``/``f`` events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

__all__ = [
    "dumps_record",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]

# Sim time is in Δ-scale float units; Chrome trace timestamps are
# microseconds.  Scaling by 1e6 keeps sub-Δ structure visible at
# Perfetto's default zoom.
_US_PER_TIME_UNIT = 1_000_000.0


def dumps_record(record: Dict[str, Any]) -> str:
    """One record as canonical JSON: sorted keys, no whitespace padding."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def to_jsonl(records: Iterable[Dict[str, Any]]) -> str:
    """The canonical JSONL document: one record per line, trailing newline."""
    lines = [dumps_record(record) for record in records]
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def write_jsonl(records: Iterable[Dict[str, Any]], path: str) -> int:
    """Write the canonical JSONL document; returns the record count."""
    document = to_jsonl(records)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(document)
    return document.count("\n")


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _us(t: float) -> float:
    value = t * _US_PER_TIME_UNIT
    # Integral timestamps serialize as ints -> stable bytes across
    # platforms; fractional ones keep full float precision.
    return int(value) if float(value).is_integer() else value


def _tid_label(pid: int) -> str:
    return "faults" if pid < 0 else f"p{pid}"


def to_chrome_trace(records: Iterable[Dict[str, Any]], name: str = "repro") -> Dict[str, Any]:
    """Convert a record stream to a Chrome trace-event JSON document.

    One Chrome ``pid`` per traced run (each ``run``/``engine`` marker
    starts a new one), one ``tid`` per process; messages are drawn as
    flow ("s"/"f") arrow pairs keyed by transport sequence id.
    """
    events: List[Dict[str, Any]] = []
    run_id = 0
    seen_tids: set = set()

    def meta(tid: int, label: str) -> None:
        key = (run_id, tid)
        if key in seen_tids:
            return
        seen_tids.add(key)
        events.append(
            {"ph": "M", "name": "thread_name", "pid": run_id, "tid": tid,
             "args": {"name": label}}
        )

    def tid_of(pid: int) -> int:
        # Chrome tids must be non-negative; the fault injector (pid -1)
        # gets a dedicated high lane.
        tid = 999 if pid < 0 else pid
        meta(tid, _tid_label(pid))
        return tid

    for record in records:
        kind = record.get("kind")
        if kind in ("run", "engine"):
            run_id += 1
            label = record.get("target") or record.get("substrate", "run")
            if "index" in record:
                label = f"{label}#{record['index']}"
            events.append(
                {"ph": "M", "name": "process_name", "pid": run_id, "tid": 0,
                 "args": {"name": str(label)}}
            )
            continue
        if run_id == 0:
            run_id = 1
            events.append(
                {"ph": "M", "name": "process_name", "pid": run_id, "tid": 0,
                 "args": {"name": name}}
            )
        if kind == "op":
            t0, t1 = record["t0"], record["t1"]
            events.append(
                {"ph": "X", "name": f"{record['op']}({record.get('reg')})",
                 "cat": "op", "pid": run_id, "tid": tid_of(record["pid"]),
                 "ts": _us(t0), "dur": _us(max(0.0, t1 - t0)),
                 "args": {"xd": record.get("xd", False)}}
            )
        elif kind in ("label", "crash", "done", "violation"):
            pid = record.get("pid", -1)
            label = record.get("label") or record.get("monitor") or kind
            events.append(
                {"ph": "i", "name": f"{kind}:{label}" if kind != "label" else str(label),
                 "cat": kind, "pid": run_id, "tid": tid_of(pid),
                 "ts": _us(record["t"]), "s": "t"}
            )
        elif kind == "fault":
            events.append(
                {"ph": "i", "name": f"fault({record.get('reg')})",
                 "cat": "fault", "pid": run_id, "tid": tid_of(-1),
                 "ts": _us(record["t"]), "s": "p"}
            )
        elif kind == "send":
            events.append(
                {"ph": "s", "name": "msg", "cat": "msg", "pid": run_id,
                 "tid": tid_of(record["src"]), "ts": _us(record["t"]),
                 "id": record["id"]}
            )
        elif kind == "recv":
            events.append(
                {"ph": "f", "name": "msg", "cat": "msg", "pid": run_id,
                 "tid": tid_of(record["dst"]), "ts": _us(record["t"]),
                 "id": record["id"], "bp": "e"}
            )
        elif kind == "drop":
            events.append(
                {"ph": "i", "name": f"drop {record['src']}->{record['dst']}",
                 "cat": "msg", "pid": run_id, "tid": tid_of(record["src"]),
                 "ts": _us(record["t"]), "s": "t"}
            )
        elif kind == "phase":
            ph = "B" if record["edge"] == "start" else "E"
            events.append(
                {"ph": ph, "name": f"{record['phase']}({record.get('reg')})",
                 "cat": "quorum", "pid": run_id, "tid": tid_of(record["pid"]),
                 "ts": _us(record["t"])}
            )
        elif kind == "window":
            events.append(
                {"ph": "X", "name": f"window:{record['fault']}",
                 "cat": "window", "pid": run_id, "tid": tid_of(-1),
                 "ts": _us(record["start"]),
                 "dur": _us(max(0.0, record["end"] - record["start"])),
                 "args": {"pids": record.get("pids")}}
            )
        # Unknown kinds are skipped: forward compatibility for viewers.
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    records: Iterable[Dict[str, Any]], path: str, name: str = "repro"
) -> int:
    document = to_chrome_trace(records, name=name)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(document, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return len(document["traceEvents"])
