"""Timeliness-graph extraction from trace records.

Delporte-Gallet et al. ("Algorithms For Extracting Timeliness Graphs")
treat observed message delays as data: a link is *Δ-timely* in a run if
every delay observed on it stays ≤ Δ.  The set of timely links — the
timeliness graph — is the timing structure the run actually exhibited,
which is exactly what ``optimistic(Δ)`` adaptation wants to consume and
what a shrunk chaos counterexample needs to ship with ("which links did
the adversary have to make slow?").

Delay observations come from whichever substrate the trace records:

* ``net``   — transport message lifecycles: link ``"src->dst"``, delay
  = scheduled arrival − send instant (drops count as an untimely
  observation at +inf: a lost message is slower than any Δ);
* ``sim``   — timed engine op spans: "link" ``"p<pid>"`` (the paper's
  process-to-memory step, whose bound is the Δ of the model), delay
  = op duration;
* ``steps`` — logical-clock sandbox runs: "link" ``"p<pid>"``, delay =
  the gap (in shared steps) between consecutive completions by that
  pid, including the gap from run start to its first step.  A pid that
  never steps over a positive span is **starved** — untimely at every
  candidate Δ.  This is the mode chaos sim artifacts use: an adversarial
  schedule IS a pattern of per-process step gaps.

The miner reports, for each candidate Δ (the sorted distinct per-link
maxima, plus any explicit override): which links are timely.  With no
override it *chooses* the smallest candidate that keeps at least half
of the links timely — the tightest Δ under which a majority of the
system behaved synchronously — and reports the rest as untimely, i.e.
the links the timing adversary controlled.  Fault-window markers in the
trace are then correlated: a window's affected links are those matching
its pid set whose observations inside (or at) the window exceeded the
chosen Δ or which were starved outright.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["delay_observations", "mine_timeliness", "format_timeliness"]

_INF = float("inf")


def _observations_net(records: List[Dict[str, Any]]) -> Dict[str, List[Tuple[float, float]]]:
    observations: Dict[str, List[Tuple[float, float]]] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "send":
            link = f"{record['src']}->{record['dst']}"
            delay = max(0.0, float(record["arrive"]) - float(record["t"]))
            observations.setdefault(link, []).append((float(record["t"]), delay))
        elif kind == "drop":
            link = f"{record['src']}->{record['dst']}"
            observations.setdefault(link, []).append((float(record["t"]), _INF))
    return observations


def _observations_sim(records: List[Dict[str, Any]]) -> Dict[str, List[Tuple[float, float]]]:
    observations: Dict[str, List[Tuple[float, float]]] = {}
    for record in records:
        if record.get("kind") != "op" or record.get("op") == "delay":
            # delay(d) spans are intentional waits, not steps racing Δ.
            continue
        pid = record["pid"]
        span = max(0.0, float(record["t1"]) - float(record["t0"]))
        observations.setdefault(f"p{pid}", []).append((float(record["t0"]), span))
    return observations


def _observations_steps(records: List[Dict[str, Any]]) -> Dict[str, List[Tuple[float, float]]]:
    # Every pid named anywhere participates; a pid with a run marker but
    # no ops still gets a (possibly starved) link.
    pids: set = set()
    last_step: Dict[int, float] = {}
    observations: Dict[str, List[Tuple[float, float]]] = {}
    horizon = 0.0
    for record in records:
        kind = record.get("kind")
        if kind == "run":
            for pid in record.get("pids") or []:
                pids.add(pid)
        elif kind == "op":
            pid = record["pid"]
            pids.add(pid)
            t1 = float(record["t1"])
            horizon = max(horizon, t1)
            gap = t1 - last_step.get(pid, 0.0)
            observations.setdefault(f"p{pid}", []).append(
                (float(record["t0"]), gap)
            )
            last_step[pid] = t1
        elif kind in ("crash", "done"):
            if isinstance(record.get("pid"), int) and record["pid"] >= 0:
                pids.add(record["pid"])
                # Completion closes the pid's obligation to keep stepping.
                last_step[record["pid"]] = float(record.get("t", 0.0))
        elif kind == "violation":
            horizon = max(horizon, float(record.get("t", 0.0)))
    for pid in sorted(pids):
        link = f"p{pid}"
        if link not in observations and horizon > last_step.get(pid, 0.0):
            # Never scheduled over a positive span: starved.
            observations[link] = [(0.0, _INF)]
    return observations


def delay_observations(
    records: List[Dict[str, Any]], substrate: Optional[str] = None
) -> Tuple[str, Dict[str, List[Tuple[float, float]]]]:
    """Extract per-link ``(time, delay)`` observations from a trace.

    Returns ``(substrate, {link: [(t, delay), ...]})``.  When
    ``substrate`` is None it is inferred: message records ⇒ ``net``,
    else the first run/engine marker's declared substrate, else ``sim``.
    """
    if substrate is None:
        if any(r.get("kind") in ("send", "recv", "drop") for r in records):
            substrate = "net"
        else:
            substrate = "sim"
            for record in records:
                if record.get("kind") in ("run", "engine") and record.get("substrate"):
                    substrate = str(record["substrate"])
                    break
    if substrate == "net":
        return "net", _observations_net(records)
    if substrate == "steps":
        return "steps", _observations_steps(records)
    return "sim", _observations_sim(records)


def _windows_of(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [r for r in records if r.get("kind") == "window"]


def _link_pids(link: str) -> List[int]:
    if "->" in link:
        src, dst = link.split("->", 1)
        return [int(src), int(dst)]
    return [int(link[1:])]


def mine_timeliness(
    records: List[Dict[str, Any]],
    substrate: Optional[str] = None,
    delta: Optional[float] = None,
) -> Dict[str, Any]:
    """Mine a trace into a timeliness-graph report (JSON-able dict)."""
    substrate, observations = delay_observations(records, substrate)
    links: Dict[str, Dict[str, Any]] = {}
    for link in sorted(observations):
        delays = [d for _, d in observations[link]]
        finite = [d for d in delays if d != _INF]
        links[link] = {
            "observations": len(delays),
            "starved": bool(delays) and not finite,
            "dropped": sum(1 for d in delays if d == _INF),
            "max_delay": max(finite) if finite else None,
            "mean_delay": (sum(finite) / len(finite)) if finite else None,
        }

    finite_maxima = sorted(
        {links[l]["max_delay"] for l in links if links[l]["max_delay"] is not None}
    )
    candidates: List[Dict[str, Any]] = []
    for candidate in finite_maxima:
        timely = [
            l
            for l in sorted(links)
            if not links[l]["starved"]
            and links[l]["dropped"] == 0
            and links[l]["max_delay"] is not None
            and links[l]["max_delay"] <= candidate
        ]
        candidates.append(
            {"delta": candidate, "timely": timely, "timely_count": len(timely)}
        )

    if delta is not None:
        chosen = float(delta)
    else:
        # Tightest Δ keeping a majority of links timely; falls back to
        # the largest finite maximum (everything non-starved timely).
        chosen = finite_maxima[-1] if finite_maxima else 0.0
        need = max(1, (len(links) + 1) // 2)
        for entry in candidates:
            if entry["timely_count"] >= need:
                chosen = entry["delta"]
                break

    timely: List[str] = []
    untimely: List[str] = []
    for link in sorted(links):
        info = links[link]
        is_timely = (
            not info["starved"]
            and info["dropped"] == 0
            and info["max_delay"] is not None
            and info["max_delay"] <= chosen + 1e-12
        )
        (timely if is_timely else untimely).append(link)

    window_reports: List[Dict[str, Any]] = []
    for window in _windows_of(records):
        start, end = float(window["start"]), float(window["end"])
        window_pids = window.get("pids")
        affected: List[str] = []
        for link in sorted(links):
            pids = _link_pids(link)
            if window_pids is not None and not any(p in window_pids for p in pids):
                continue
            if links[link]["starved"]:
                affected.append(link)
                continue
            for t, d in observations[link]:
                if start <= t <= end and (d == _INF or d > chosen + 1e-12):
                    affected.append(link)
                    break
        window_reports.append(
            {
                "fault": window.get("fault"),
                "start": start,
                "end": end,
                "pids": window_pids,
                "affected_links": affected,
            }
        )

    return {
        "substrate": substrate,
        "delta": chosen,
        "delta_source": "explicit" if delta is not None else "mined",
        "links": links,
        "candidates": candidates,
        "timely": timely,
        "untimely": untimely,
        "windows": window_reports,
    }


def format_timeliness(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a timeliness report."""
    lines: List[str] = []
    lines.append(
        f"substrate {report['substrate']}  "
        f"delta {report['delta']:.6g} ({report['delta_source']})"
    )
    links = report["links"]
    for link in sorted(links):
        info = links[link]
        if info["starved"]:
            detail = "STARVED"
        else:
            max_text = (
                "-" if info["max_delay"] is None else f"{info['max_delay']:.4g}"
            )
            detail = f"n={info['observations']} max={max_text}"
            if info["dropped"]:
                detail += f" dropped={info['dropped']}"
        mark = "timely  " if link in report["timely"] else "UNTIMELY"
        lines.append(f"  {link:<10} {mark} {detail}")
    lines.append(
        f"timely {len(report['timely'])}/{len(links)}: "
        + (", ".join(report["timely"]) or "-")
    )
    if report["untimely"]:
        lines.append("untimely: " + ", ".join(report["untimely"]))
    for window in report["windows"]:
        pid_text = (
            "all" if window["pids"] is None else ",".join(map(str, window["pids"]))
        )
        lines.append(
            f"window {window['fault']} [{window['start']:.4g}, "
            f"{window['end']:.4g}] pids={pid_text} affected: "
            + (", ".join(window["affected_links"]) or "-")
        )
    return "\n".join(lines)
