"""The structured tracer: every run event as one canonical record.

Where :class:`~repro.sim.instrument.EngineProbe` aggregates a run into a
handful of counters, a :class:`Tracer` keeps the *sequence*: op spans
with their sim-time start/end, message lifecycles (send → deliver/drop
with link and wire delay), quorum phases, crash/corruption/fault-window
markers.  The trace is what the exporters (:mod:`repro.obs.export`), the
metrics registry (:mod:`repro.obs.metrics`) and the timeliness-graph
miner (:mod:`repro.obs.timeliness`) all consume.

Tracing follows the probe's contract exactly:

* **off by default and free when off** — an :class:`~repro.sim.Engine`
  holds ``_tracer = None`` unless one was passed explicitly or a
  :func:`trace_scope` is active when the engine (or its transport) is
  built, and every emission site guards behind a cached
  ``tracer is not None`` check;
* **pure observation** — an attached tracer never touches the RNGs, the
  heap, or any scheduling decision, so a traced run is bit-identical to
  an untraced one (the ``obs/trace_overhead`` bench scenario and the
  tier-1 suite both assert counter equality);
* **deterministic** — records are canonicalized to JSON-able values at
  emission time, so a fixed seed yields a byte-identical export.

Two ways to attach, mirroring the probe::

    tracer = Tracer()
    Engine(delta=1.0, timing=..., tracer=tracer)        # explicit

    with trace_scope(tracer):                           # ambient
        run_e5()    # every Engine/Transport built inside reports here

Record vocabulary (``kind`` field; every record is a plain dict):

=========  =============================================================
``run``    harness-level run marker: ``substrate`` (``sim`` — timed
           engine, ``net`` — message fabric, ``steps`` — logical-clock
           sandbox), plus context (target, run index, seed, pids)
``engine`` one Engine.run: ``substrate``, ``delta``, ``pids``
``op``     one completed operation: ``op`` (read/write/rmw/delay/local/
           send/recv), ``pid``, ``reg``, ``t0``/``t1`` (issued/
           completed), ``xd`` (exceeded Δ — a timing failure)
``label``  program label (CS_ENTER, DECIDED, ...): ``pid``, ``label``,
           ``t``
``crash``  process crash: ``pid``, ``t``
``restart``  crash-recovery restart (fresh program, persistent
           registers): ``pid``, ``t``
``done``   process completion: ``pid``, ``t``
``fault``  injected memory corruption: ``reg``, ``t``
``send``   message accepted by the transport: ``id``, ``src``, ``dst``,
           ``t`` (send instant), ``arrive`` (scheduled delivery — the
           wire delay is ``arrive - t``)
``drop``   message lost to loss/partition: ``src``, ``dst``, ``t``
``recv``   message collected by a Recv: ``id``, ``src``, ``dst``,
           ``t`` (collect instant), ``arrive``
``phase``  quorum phase boundary: ``pid``, ``phase`` (query/update),
           ``reg``, ``edge`` (start/end), ``t``
``window`` declared fault window: ``start``, ``end``, ``pids`` (null =
           all), ``fault`` (timing/spike/loss/partition)
``violation``  a chaos monitor fired: ``monitor``, ``t``
=========  =============================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Tracer",
    "active_tracer",
    "canonical",
    "register_name",
    "trace_scope",
]


def canonical(value: Any) -> Any:
    """Fold an arbitrary recorded value into deterministic JSON-able form.

    JSON-native scalars pass through, tuples/lists/dicts recurse (dict
    keys become sorted strings), anything else becomes its ``repr`` —
    which is deterministic because the simulated runs themselves are.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical(item) for item in value)
    if isinstance(value, dict):
        return {str(key): canonical(value[key]) for key in sorted(value, key=str)}
    return repr(value)


def _render_prefix(prefix: Any) -> str:
    """Render a namespace prefix, dropping ``unique()`` discriminators."""
    if isinstance(prefix, tuple) and len(prefix) == 2:
        base, tail = prefix
        if isinstance(tail, int):
            # RegisterNamespace.unique(): (base, N) where N comes from a
            # process-global counter — meaningless across processes.
            return _render_prefix(base)
        return f"{_render_prefix(base)}.{_render_prefix(tail)}"
    return str(prefix)


def register_name(name: Any) -> Any:
    """Stable, human-level rendering of a register name for trace records.

    The repo's naming conventions (see :mod:`repro.sim.registers` and
    ``repro.sim.adversary.register_leaf``) produce ``(namespace,
    "leaf")`` for plain registers and ``((namespace, "leaf"), idx...)``
    for array cells, where a default namespace is ``(base, N)`` with
    ``N`` drawn from a **process-global** counter.  That counter depends
    on how many algorithm instances the process has built — it differs
    between worker topologies and between repeated runs in one
    interpreter — so it is dropped here; child-namespace suffixes and
    array indices are kept.  Flat names pass through unchanged.
    """
    if isinstance(name, tuple) and name:
        if isinstance(name[-1], str):
            return f"{_render_prefix(name[0])}.{name[-1]}"
        head = name[0]
        if isinstance(head, tuple) and head and isinstance(head[-1], str):
            indices = ",".join(str(part) for part in name[1:])
            return f"{register_name(head)}[{indices}]"
    return name


class Tracer:
    """Accumulates structured trace records across one or more runs.

    Emission methods canonicalize their arguments immediately, so
    :attr:`records` is always a list of plain, picklable, JSON-able
    dicts in emission order — the order IS the trace's sequence (there
    is no per-record sequence number, which is what lets per-shard
    traces concatenate into the sequential byte stream).
    """

    __slots__ = ("records", "_clock")

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._clock = None

    # -- clock ----------------------------------------------------------------

    def bind_clock(self, clock: Any) -> None:
        """Attach the engine's virtual clock so free-floating emitters
        (the quorum phases, which run inside generator code) can stamp
        records with the current virtual time."""
        self._clock = clock

    def now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    # -- emission -------------------------------------------------------------

    def run_marker(self, substrate: str, **context: Any) -> None:
        record: Dict[str, Any] = {"kind": "run", "substrate": substrate}
        for key in sorted(context):
            record[key] = canonical(context[key])
        self.records.append(record)

    def engine_run(self, substrate: str, delta: float, pids: List[int]) -> None:
        self.records.append(
            {"kind": "engine", "substrate": substrate, "delta": delta,
             "pids": sorted(pids)}
        )

    def op(
        self,
        op: str,
        pid: int,
        reg: Any,
        t0: float,
        t1: float,
        xd: bool = False,
    ) -> None:
        self.records.append(
            {"kind": "op", "op": op, "pid": pid,
             "reg": canonical(register_name(reg)),
             "t0": t0, "t1": t1, "xd": xd}
        )

    def label(self, pid: int, label: str, t: float) -> None:
        self.records.append({"kind": "label", "pid": pid, "label": label, "t": t})

    def crash(self, pid: int, t: float) -> None:
        self.records.append({"kind": "crash", "pid": pid, "t": t})

    def restart(self, pid: int, t: float) -> None:
        self.records.append({"kind": "restart", "pid": pid, "t": t})

    def done(self, pid: int, t: float) -> None:
        self.records.append({"kind": "done", "pid": pid, "t": t})

    def fault(self, reg: Any, t: float) -> None:
        self.records.append(
            {"kind": "fault", "reg": canonical(register_name(reg)), "t": t}
        )

    def msg_send(self, msg_id: int, src: int, dst: int, t: float, arrive: float) -> None:
        self.records.append(
            {"kind": "send", "id": msg_id, "src": src, "dst": dst,
             "t": t, "arrive": arrive}
        )

    def msg_drop(self, src: int, dst: int, t: float) -> None:
        self.records.append({"kind": "drop", "src": src, "dst": dst, "t": t})

    def msg_recv(self, msg_id: int, src: int, dst: int, t: float, arrive: float) -> None:
        self.records.append(
            {"kind": "recv", "id": msg_id, "src": src, "dst": dst,
             "t": t, "arrive": arrive}
        )

    def phase(self, pid: int, phase: str, reg: Any, edge: str) -> None:
        self.records.append(
            {"kind": "phase", "pid": pid, "phase": phase,
             "reg": canonical(register_name(reg)), "edge": edge,
             "t": self.now()}
        )

    def window(
        self,
        start: float,
        end: float,
        pids: Optional[List[int]],
        fault: str,
    ) -> None:
        self.records.append(
            {"kind": "window", "start": start, "end": end,
             "pids": None if pids is None else sorted(pids), "fault": fault}
        )

    def violation(self, monitor: str, t: float) -> None:
        self.records.append({"kind": "violation", "monitor": monitor, "t": t})

    # -- draining -------------------------------------------------------------

    def take(self) -> List[Dict[str, Any]]:
        """Return the accumulated records and reset the buffer.

        The per-run chunking primitive: campaign loops call this after
        each run so every chunk is attributable to one global run index
        (see :mod:`repro.parallel.merge`).
        """
        records = self.records
        self.records = []
        return records

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"Tracer({len(self.records)} records)"


_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The tracer engines/transports should attach to, or None (default)."""
    return _ACTIVE


@contextmanager
def trace_scope(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` ambient: every Engine/Transport built inside
    attaches to it (the :func:`~repro.sim.instrument.probe_scope`
    pattern; process-global and single-threaded like the simulator)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
