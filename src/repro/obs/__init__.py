"""repro.obs — deterministic structured tracing, metrics, timeliness graphs.

The observability substrate over all three execution substrates: attach
a :class:`Tracer` (explicitly or via :func:`trace_scope`) and the timed
engine, the message fabric, and the chaos/fuzz harnesses emit canonical
span/event records; export them as JSONL or Chrome trace-event JSON;
fold them into metrics; mine per-link delay observations into a
timeliness graph.  ``python -m repro.obs summarize|convert|timeliness``
operates on stored JSONL traces.
"""

from repro.obs.export import (
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Histogram, compute_metrics, format_summary
from repro.obs.timeliness import (
    delay_observations,
    format_timeliness,
    mine_timeliness,
)
from repro.obs.tracer import (
    Tracer,
    active_tracer,
    canonical,
    register_name,
    trace_scope,
)

__all__ = [
    "Tracer",
    "active_tracer",
    "canonical",
    "register_name",
    "trace_scope",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "Histogram",
    "compute_metrics",
    "format_summary",
    "delay_observations",
    "mine_timeliness",
    "format_timeliness",
]
