"""Metrics over trace records: counters, gauges, fixed-bucket histograms.

Everything is computed *from* a trace (list of canonical record dicts),
never sampled live — so metrics are exactly as deterministic as the
trace, and re-running ``repro.obs summarize`` on a stored JSONL file
always reproduces the same numbers.

The registry is small and fixed by design (mirroring EngineProbe's
fixed counter set):

* counters — record-kind totals, per-op-kind totals, timing-failure
  (``xd``) count, crashes, drops, violations;
* gauges — processes seen, links seen, trace duration (max timestamp);
* histograms — per-op latency, per-link delivery delay, quorum phase
  RTT, per-process busy-wait (delay-op) occupancy share.

Histograms use fixed bucket boundaries expressed in Δ-scale time units,
so documents from different runs are directly comparable and byte-equal
when their traces are.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

__all__ = ["Histogram", "compute_metrics", "format_summary"]

# Fixed boundaries (Δ-scale time units).  An observation lands in the
# first bucket whose upper edge is >= the value; the last bucket is
# open-ended.
_BUCKET_EDGES = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max sidecars."""

    __slots__ = ("counts", "total", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BUCKET_EDGES) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        index = len(_BUCKET_EDGES)
        for i, edge in enumerate(_BUCKET_EDGES):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.total if self.total else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(_BUCKET_EDGES),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


def compute_metrics(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold a record stream into the metrics document (plain JSON-able dict)."""
    kind_counts: Dict[str, int] = {}
    op_counts: Dict[str, int] = {}
    op_latency: Dict[str, Histogram] = {}
    link_delay: Dict[str, Histogram] = {}
    phase_rtt: Dict[str, Histogram] = {}
    xd_count = 0
    pids: set = set()
    links: set = set()
    max_t = 0.0
    # Busy-wait occupancy: per-pid total delay-span time vs total op-span
    # time — "how much of this process's schedule was spent waiting".
    op_time: Dict[int, float] = {}
    delay_time: Dict[int, float] = {}
    # Quorum phase RTT needs pairing: (pid, phase) -> open start time.
    open_phases: Dict[Any, float] = {}

    for record in records:
        kind = record.get("kind", "?")
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
        for key in ("t", "t1", "arrive", "end"):
            value = record.get(key)
            if isinstance(value, (int, float)):
                max_t = max(max_t, float(value))
        if kind == "op":
            op = record["op"]
            pid = record["pid"]
            pids.add(pid)
            op_counts[op] = op_counts.get(op, 0) + 1
            span = max(0.0, float(record["t1"]) - float(record["t0"]))
            op_latency.setdefault(op, Histogram()).observe(span)
            op_time[pid] = op_time.get(pid, 0.0) + span
            if op == "delay":
                delay_time[pid] = delay_time.get(pid, 0.0) + span
            if record.get("xd"):
                xd_count += 1
        elif kind == "send":
            link = f"{record['src']}->{record['dst']}"
            links.add(link)
            delay = max(0.0, float(record["arrive"]) - float(record["t"]))
            link_delay.setdefault(link, Histogram()).observe(delay)
        elif kind in ("recv", "drop"):
            links.add(f"{record['src']}->{record['dst']}")
        elif kind == "phase":
            key = (record["pid"], record["phase"])
            if record["edge"] == "start":
                open_phases[key] = float(record["t"])
            else:
                start = open_phases.pop(key, None)
                if start is not None:
                    phase_rtt.setdefault(record["phase"], Histogram()).observe(
                        max(0.0, float(record["t"]) - start)
                    )
        elif kind in ("label", "crash", "done"):
            if isinstance(record.get("pid"), int) and record["pid"] >= 0:
                pids.add(record["pid"])
        elif kind in ("run", "engine"):
            for pid in record.get("pids") or []:
                if isinstance(pid, int):
                    pids.add(pid)

    busy_wait = {
        str(pid): (delay_time.get(pid, 0.0) / op_time[pid]) if op_time.get(pid) else 0.0
        for pid in sorted(op_time)
    }
    return {
        "counters": {
            "records": sum(kind_counts.values()),
            "by_kind": {k: kind_counts[k] for k in sorted(kind_counts)},
            "ops_by_kind": {k: op_counts[k] for k in sorted(op_counts)},
            "timing_failures": xd_count,
            "crashes": kind_counts.get("crash", 0),
            "drops": kind_counts.get("drop", 0),
            "violations": kind_counts.get("violation", 0),
        },
        "gauges": {
            "processes": len(pids),
            "links": len(links),
            "duration": max_t,
        },
        "histograms": {
            "op_latency": {k: op_latency[k].to_dict() for k in sorted(op_latency)},
            "link_delivery_delay": {
                k: link_delay[k].to_dict() for k in sorted(link_delay)
            },
            "quorum_phase_rtt": {
                k: phase_rtt[k].to_dict() for k in sorted(phase_rtt)
            },
        },
        "busy_wait_occupancy": busy_wait,
    }


def _histogram_line(name: str, data: Dict[str, Any]) -> str:
    mean = data["mean"]
    mean_text = "-" if mean is None else f"{mean:.4g}"
    max_text = "-" if data["max"] is None else f"{data['max']:.4g}"
    return (
        f"  {name:<24} n={data['total']:<6} mean={mean_text:<8} max={max_text}"
    )


def format_summary(metrics: Dict[str, Any]) -> str:
    """Human-readable rendering of a metrics document."""
    counters = metrics["counters"]
    gauges = metrics["gauges"]
    lines: List[str] = []
    lines.append(
        f"records {counters['records']}  processes {gauges['processes']}  "
        f"links {gauges['links']}  duration {gauges['duration']:.4g}"
    )
    by_kind = counters["by_kind"]
    lines.append(
        "kinds   " + "  ".join(f"{k}={by_kind[k]}" for k in sorted(by_kind))
    )
    if counters["ops_by_kind"]:
        ops = counters["ops_by_kind"]
        lines.append(
            "ops     " + "  ".join(f"{k}={ops[k]}" for k in sorted(ops))
        )
    lines.append(
        f"timing failures {counters['timing_failures']}  "
        f"crashes {counters['crashes']}  drops {counters['drops']}  "
        f"violations {counters['violations']}"
    )
    for title, table in (
        ("op latency", metrics["histograms"]["op_latency"]),
        ("link delivery delay", metrics["histograms"]["link_delivery_delay"]),
        ("quorum phase RTT", metrics["histograms"]["quorum_phase_rtt"]),
    ):
        if table:
            lines.append(f"{title}:")
            for name in sorted(table):
                lines.append(_histogram_line(name, table[name]))
    occupancy = metrics["busy_wait_occupancy"]
    if occupancy:
        lines.append(
            "busy-wait occupancy: "
            + "  ".join(
                f"p{pid}={occupancy[pid]:.1%}" for pid in sorted(occupancy, key=int)
            )
        )
    return "\n".join(lines)
