"""CLI for stored traces: ``python -m repro.obs summarize|convert|timeliness``.

All subcommands read a JSONL trace produced by ``--trace FILE`` on the
chaos/fuzz CLIs (or :func:`repro.obs.write_jsonl` directly) and are
deterministic: same trace bytes in, same bytes out.

  summarize TRACE [--json]           metrics document / human summary
  convert TRACE -o OUT.json          Chrome trace-event JSON (Perfetto)
  timeliness TRACE [--delta D] [--json]
                                     timeliness-graph report

Exit codes: 0 on success, 2 on unreadable/empty input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.export import read_jsonl, write_chrome_trace
from repro.obs.metrics import compute_metrics, format_summary
from repro.obs.timeliness import format_timeliness, mine_timeliness


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Inspect stored JSONL traces: metrics, Perfetto export, "
        "timeliness-graph mining.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="fold a trace into its metrics document"
    )
    summarize.add_argument("trace", help="JSONL trace file")
    summarize.add_argument(
        "--json", action="store_true", help="emit the metrics document as JSON"
    )

    convert = sub.add_parser(
        "convert", help="convert a trace to Chrome trace-event JSON (Perfetto)"
    )
    convert.add_argument("trace", help="JSONL trace file")
    convert.add_argument(
        "-o", "--output", required=True, help="output .json path"
    )

    timeliness = sub.add_parser(
        "timeliness", help="mine the trace's timeliness graph"
    )
    timeliness.add_argument("trace", help="JSONL trace file")
    timeliness.add_argument(
        "--delta",
        type=float,
        default=None,
        help="classify links against this Δ instead of mining one",
    )
    timeliness.add_argument(
        "--substrate",
        choices=("sim", "net", "steps"),
        default=None,
        help="override substrate inference",
    )
    timeliness.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    return parser


def _load(path: str) -> Optional[list]:
    try:
        records = read_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {path!r}: {exc}", file=sys.stderr)
        return None
    if not records:
        print(f"error: trace {path!r} is empty", file=sys.stderr)
        return None
    return records


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    records = _load(args.trace)
    if records is None:
        return 2

    if args.command == "summarize":
        metrics = compute_metrics(records)
        if args.json:
            print(json.dumps(metrics, sort_keys=True, separators=(",", ":")))
        else:
            print(format_summary(metrics))
        return 0

    if args.command == "convert":
        count = write_chrome_trace(records, args.output)
        print(f"wrote {count} trace events to {args.output}")
        return 0

    # timeliness
    report = mine_timeliness(records, substrate=args.substrate, delta=args.delta)
    if args.json:
        print(json.dumps(report, sort_keys=True, separators=(",", ":")))
    else:
        print(format_timeliness(report))
    return 0


if __name__ == "__main__":
    sys.exit(main())
