"""repro — reproduction of Taubenfeld, *Computing in the Presence of
Timing Failures* (ICDCS 2006).

The package implements the paper's time-resilient consensus (Algorithm 1)
and mutual exclusion (Algorithm 3) over atomic registers, every baseline
and building block the paper references (Fischer's lock, Lamport's fast
lock, the bakeries, the Bar-David starvation-freedom transformation, the
unknown-bound consensus of Alur–Attiya–Taubenfeld), the derived wait-free
objects (election, test-and-set, renaming, a universal construction), a
discrete-event simulator of the timing-based shared-memory model, a model
checker for safety under arbitrary asynchrony, a real-thread backend, and
the experiment harness reproducing the paper's quantitative claims.

Quickstart::

    from repro import run_consensus
    from repro.sim import ConstantTiming

    result = run_consensus(inputs=[0, 1, 1], delta=1.0,
                           timing=ConstantTiming(step=0.8))
    assert result.agreed

See ``examples/quickstart.py``, README.md and DESIGN.md.
"""

from .core.consensus import (
    UNDECIDED,
    ConsensusResult,
    TimeResilientConsensus,
    labeled_decision,
    run_consensus,
)
from .core.mutex import TimeResilientMutex, default_time_resilient_mutex
from .core.resilience import (
    ResilienceReport,
    check_consensus_resilience,
    check_resilience,
)

__version__ = "1.0.0"

__all__ = [
    "TimeResilientConsensus",
    "ConsensusResult",
    "run_consensus",
    "labeled_decision",
    "UNDECIDED",
    "TimeResilientMutex",
    "default_time_resilient_mutex",
    "ResilienceReport",
    "check_resilience",
    "check_consensus_resilience",
    "__version__",
]
