"""Message passing over atomic registers (paper §4 extension).

FIFO mailboxes emulated in shared memory, a heartbeat failure detector
with the adaptive (optimistic-timeout) rule, and Ω-style leader election
whose eventual-agreement behaviour mirrors the paper's convergence
requirement.
"""

from .channels import Endpoint, Mailbox, Network
from .failure_detector import (
    HeartbeatMonitor,
    LeaderSample,
    OmegaElection,
    eventual_agreement,
)

__all__ = [
    "Mailbox",
    "Network",
    "Endpoint",
    "HeartbeatMonitor",
    "OmegaElection",
    "LeaderSample",
    "eventual_agreement",
]
