"""A heartbeat failure detector and Ω-style leader election over messages.

This is the paper's resilience recipe transplanted to message passing
(Discussion, §4): assume a delivery bound (our ``Δ``, via the mailbox
emulation), run with an *optimistic* timeout, and recover automatically
when the timing constraints are violated:

* every process broadcasts heartbeats with period ``heartbeat_period``;
* a process suspects a peer whose heartbeat is overdue by the current
  ``timeout``; a heartbeat from a suspected peer *unsuspects* it and
  grows the timeout (the adaptive rule of Chandra–Toueg, which is the
  AIMD-style optimistic(Δ) tuning in disguise);
* the leader is the smallest unsuspected pid — the Ω pattern: during
  timing failures different processes may disagree about the leader
  (that is allowed: Ω's contract is *eventual* agreement), and once
  failures stop and timeouts have adapted, everyone converges on the
  smallest live pid and stays there.

Like every algorithm in this package it runs on the simulator, so the
whole behaviour — suspicion churn during failure windows, convergence
after — is deterministic and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..sim import ops
from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from .channels import Network

__all__ = ["HeartbeatMonitor", "OmegaElection", "LeaderSample"]

_HEARTBEAT = "hb"


@dataclass(frozen=True)
class LeaderSample:
    """One observation: who ``pid`` believed was leader at ``time``."""

    pid: int
    time: float
    leader: int
    suspected: Tuple[int, ...]


class HeartbeatMonitor:
    """Per-process heartbeat bookkeeping with an adaptive timeout."""

    def __init__(
        self,
        pid: int,
        peers: Set[int],
        initial_timeout: float,
        timeout_growth: float = 1.5,
    ) -> None:
        if initial_timeout <= 0:
            raise ValueError(f"initial_timeout must be positive, got {initial_timeout}")
        if timeout_growth <= 1.0:
            raise ValueError(f"timeout_growth must be > 1, got {timeout_growth}")
        self.pid = pid
        self.timeout: Dict[int, float] = {p: initial_timeout for p in peers}
        self.last_heartbeat: Dict[int, float] = {p: 0.0 for p in peers}
        self.suspected: Set[int] = set()
        self.timeout_growth = timeout_growth
        self.false_suspicions = 0

    def observe_heartbeat(self, sender: int, now: float) -> None:
        self.last_heartbeat[sender] = now
        if sender in self.suspected:
            # A premature suspicion: the peer was alive all along.  Adapt
            # (grow the timeout) so the same delay no longer fools us —
            # the optimistic(Δ) increase rule.
            self.suspected.discard(sender)
            self.timeout[sender] *= self.timeout_growth
            self.false_suspicions += 1

    def update_suspicions(self, now: float) -> None:
        for peer, last in self.last_heartbeat.items():
            if peer in self.suspected:
                continue
            if now - last > self.timeout[peer]:
                self.suspected.add(peer)

    def leader(self) -> int:
        """The smallest unsuspected pid (including self)."""
        candidates = [self.pid] + [
            p for p in self.last_heartbeat if p not in self.suspected
        ]
        return min(candidates)


class OmegaElection:
    """The complete Ω protocol: heartbeats + adaptive suspicion + min-id.

    ``run(pid, duration)`` is a simulator program that broadcasts
    heartbeats, polls the network, tracks suspicions, and samples its
    leader belief once per period; it returns the list of
    :class:`LeaderSample` observations (the raw material for the
    eventual-agreement checks).
    """

    def __init__(
        self,
        n: int,
        heartbeat_period: float,
        initial_timeout: float,
        namespace: Optional[RegisterNamespace] = None,
        timeout_growth: float = 1.5,
    ) -> None:
        if heartbeat_period <= 0:
            raise ValueError(
                f"heartbeat_period must be positive, got {heartbeat_period}"
            )
        self.n = n
        self.heartbeat_period = heartbeat_period
        self.initial_timeout = initial_timeout
        self.timeout_growth = timeout_growth
        ns = namespace if namespace is not None else RegisterNamespace.unique("omega")
        self.network = Network(n, namespace=ns)
        # A shared clock surrogate: processes cannot read the engine clock,
        # so each tracks time locally by counting its own periods.  For
        # sampling purposes that is enough (samples carry local time).

    def run(self, pid: int, rounds: int) -> Program:
        """Participate for ``rounds`` heartbeat periods; returns samples."""
        endpoint = self.network.endpoint(pid)
        monitor = HeartbeatMonitor(
            pid,
            peers={p for p in range(self.n) if p != pid},
            initial_timeout=self.initial_timeout,
            timeout_growth=self.timeout_growth,
        )
        samples: List[LeaderSample] = []
        now = 0.0
        for _ in range(rounds):
            yield from endpoint.broadcast((_HEARTBEAT, pid))
            inbox = yield from endpoint.poll()
            for sender, message in inbox:
                if message[0] == _HEARTBEAT:
                    monitor.observe_heartbeat(sender, now)
            monitor.update_suspicions(now)
            leader = monitor.leader()
            samples.append(
                LeaderSample(
                    pid=pid,
                    time=now,
                    leader=leader,
                    suspected=tuple(sorted(monitor.suspected)),
                )
            )
            yield ops.label("leader_sample", (pid, leader))
            yield ops.delay(self.heartbeat_period)
            now += self.heartbeat_period
        return samples

    def __repr__(self) -> str:
        return (
            f"OmegaElection(n={self.n}, period={self.heartbeat_period}, "
            f"timeout0={self.initial_timeout})"
        )


def eventual_agreement(
    all_samples: Dict[int, List[LeaderSample]], tail_fraction: float = 0.25
) -> Optional[int]:
    """The common leader in the final ``tail_fraction`` of every process's
    samples, or ``None`` if they never converged."""
    leaders: Set[int] = set()
    for samples in all_samples.values():
        if not samples:
            return None
        tail = samples[-max(1, int(len(samples) * tail_fraction)):]
        leaders.update(s.leader for s in tail)
    return leaders.pop() if len(leaders) == 1 else None
