"""Message passing over atomic registers.

The paper's Discussion lists "to consider message passing systems" as an
extension.  Rather than a second engine, messages are emulated in shared
memory the standard way: each ordered pair of processes gets an unbounded
mailbox — an infinite array of slots plus a sequence counter, both
written only by the sender — so every send is two register writes and
every receive is a bounded number of reads.  The emulation preserves the
timing structure exactly: a *message delay* is the time between the
send's linearization and the receive's, so timing failures on steps are
timing failures on delivery, and the paper's ``Δ`` plays the role of the
partial-synchrony delivery bound.

Mailboxes are FIFO, reliable and single-writer (no races on the sender
side); receivers poll.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from ..sim.process import Program
from ..sim.registers import RegisterNamespace

__all__ = ["Mailbox", "Network"]


class Mailbox:
    """A FIFO channel from one sender to one receiver.

    Shared registers: ``count`` (messages sent so far, written only by the
    sender) and ``slot[i]`` (the i-th message).  The receiver keeps its
    read cursor locally.
    """

    def __init__(self, namespace: RegisterNamespace, sender: int, receiver: int) -> None:
        ns = namespace.child(("chan", sender, receiver))
        self.sender = sender
        self.receiver = receiver
        self.count = ns.register("count", 0)
        self.slots = ns.array("slot", None)

    def send(self, message: Any) -> Program:
        """Append one message (two writes: slot, then the counter).

        The counter write is the linearization point of the send; a
        receiver that observes ``count >= k`` is guaranteed to read the
        k-th slot's final value (single writer, slot written first).
        """
        sent = yield self.count.read()
        yield self.slots[sent].write(message)
        yield self.count.write(sent + 1)

    def receive_from(self, cursor: int) -> Program:
        """Read every message with index >= cursor; returns (msgs, cursor').

        Non-blocking: returns an empty list when nothing new arrived.
        """
        available = yield self.count.read()
        messages: List[Any] = []
        position = cursor
        while position < available:
            message = yield self.slots[position].read()
            messages.append(message)
            position += 1
        return messages, position


class Network:
    """All-pairs mailboxes for ``n`` processes, plus per-process cursors.

    The network object is shared; per-process receive state lives in a
    :class:`Endpoint` obtained via :meth:`endpoint`.
    """

    def __init__(self, n: int, namespace: Optional[RegisterNamespace] = None) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        ns = namespace if namespace is not None else RegisterNamespace.unique("network")
        self._mailboxes = {
            (s, r): Mailbox(ns, s, r)
            for s in range(n)
            for r in range(n)
            if s != r
        }

    def mailbox(self, sender: int, receiver: int) -> Mailbox:
        return self._mailboxes[(sender, receiver)]

    def endpoint(self, pid: int) -> "Endpoint":
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        return Endpoint(self, pid)


class Endpoint:
    """One process's view of the network (its receive cursors)."""

    def __init__(self, network: Network, pid: int) -> None:
        self.network = network
        self.pid = pid
        self._cursors = {
            sender: 0 for sender in range(network.n) if sender != pid
        }

    def send(self, receiver: int, message: Any) -> Program:
        """Send one message to ``receiver``."""
        yield from self.network.mailbox(self.pid, receiver).send(message)

    def broadcast(self, message: Any) -> Program:
        """Send one message to every other process."""
        for receiver in range(self.network.n):
            if receiver != self.pid:
                yield from self.send(receiver, message)

    def poll(self) -> Program:
        """Drain every inbound mailbox; returns [(sender, message), ...]."""
        inbox: List[Tuple[int, Any]] = []
        for sender in sorted(self._cursors):
            mailbox = self.network.mailbox(sender, self.pid)
            messages, cursor = yield from mailbox.receive_from(
                self._cursors[sender]
            )
            # Receive cursors are this endpoint's own state: an Endpoint
            # is constructed per process (Network.endpoint) and never
            # shared, so the mutation is process-local by construction.
            self._cursors[sender] = cursor  # repro-lint: disable=TMF003
            inbox.extend((sender, m) for m in messages)
        return inbox
