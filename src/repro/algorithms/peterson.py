"""Peterson's algorithms: the 2-process lock and the n-process filter lock.

The 2-process lock is the building block of the tournament tree
(:mod:`repro.algorithms.tournament`); the filter lock is an n-process
generalization used as an additional asynchronous baseline.  Both are
deadlock-free and the 2-process lock has bypass bound 1 (starvation-free);
the filter lock is deadlock-free but only livelock-free per level — its
overall fairness is weaker than the bakery's, which the fairness tests
exhibit.
"""

# repro-lint: registers-only  (Peterson/filter, atomic registers alone)
# repro-lint: failure-tolerant  (correct under arbitrary timing failures)

from __future__ import annotations

from typing import Optional

from ..sim.process import Program
from ..sim.registers import Register, RegisterNamespace
from .base import MutexAlgorithm, MutexProperties

__all__ = ["PetersonTwoProcess", "FilterLock", "peterson_acquire", "peterson_release"]


def peterson_acquire(
    flag0: Register, flag1: Register, victim: Register, side: int
) -> Program:
    """Acquire one 2-process Peterson lock from ``side`` (0 or 1).

    Shared helper so the tournament tree can reuse the exact protocol:
    raise my flag, volunteer as victim, wait until the other side is
    absent or has volunteered after me.
    """
    my_flag = flag0 if side == 0 else flag1
    other_flag = flag1 if side == 0 else flag0
    yield my_flag.write(True)
    yield victim.write(side)
    while True:
        other = yield other_flag.read()
        if not other:
            return
        v = yield victim.read()
        if v != side:
            return


def peterson_release(flag0: Register, flag1: Register, side: int) -> Program:
    """Release one 2-process Peterson lock held from ``side``."""
    my_flag = flag0 if side == 0 else flag1
    yield my_flag.write(False)


class PetersonTwoProcess(MutexAlgorithm):
    """Peterson's classic 2-process lock (pids 0 and 1)."""

    name = "peterson2"

    def __init__(self, namespace: Optional[RegisterNamespace] = None) -> None:
        ns = namespace if namespace is not None else RegisterNamespace.unique("peterson2")
        self.flag0 = ns.register("flag0", False)
        self.flag1 = ns.register("flag1", False)
        self.victim = ns.register("victim", 0)

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=True,  # bypass bound 1
            fast=True,  # constant entry always (n is fixed at 2)
            timing_based=False,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> int:
        return 3

    def entry(self, pid: int) -> Program:
        if pid not in (0, 1):
            raise ValueError(f"Peterson 2-process lock needs pid in {{0,1}}, got {pid}")
        yield from peterson_acquire(self.flag0, self.flag1, self.victim, pid)

    def exit(self, pid: int) -> Program:
        yield from peterson_release(self.flag0, self.flag1, pid)

    def __repr__(self) -> str:
        return "PetersonTwoProcess()"


class FilterLock(MutexAlgorithm):
    """Peterson's filter lock for ``n`` processes.

    ``n - 1`` levels; at each level a process volunteers as the level's
    victim and waits until no higher-or-equal-level conflict remains.
    """

    name = "filter"

    def __init__(self, n: int, namespace: Optional[RegisterNamespace] = None) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        ns = namespace if namespace is not None else RegisterNamespace.unique("filter")
        self.level = ns.array("level", 0)  # repro-lint: single-writer
        self.victim = ns.array("victim", -1)

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=False,
            fast=False,
            timing_based=False,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> int:
        return 2 * n - 1  # level[0..n-1] + victim[1..n-1]

    def entry(self, pid: int) -> Program:
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        for lvl in range(1, self.n):
            yield self.level[pid].write(lvl)
            yield self.victim[lvl].write(pid)
            while True:
                v = yield self.victim[lvl].read()
                if v != pid:
                    break
                conflict = False
                for k in range(self.n):
                    if k == pid:
                        continue
                    k_level = yield self.level[k].read()
                    if k_level >= lvl:
                        conflict = True
                        break
                if not conflict:
                    break
        return

    def exit(self, pid: int) -> Program:
        yield self.level[pid].write(0)

    def __repr__(self) -> str:
        return f"FilterLock(n={self.n})"
