"""Lamport's fast mutual exclusion algorithm (TOCS 1987).

The first *fast* lock from atomic registers: in the absence of contention
a process enters its critical section in a constant number of its own
steps (two writes and three reads on the solo path).  The algorithm is
deadlock-free but **not** starvation-free — which is exactly why
Theorem 3.2 uses it as the cautionary choice of embedded algorithm ``A``:
Algorithm 3 built over it need not converge after timing failures.

Pseudocode (ids 1..n in the original; we use the ``FREE`` sentinel so ids
may start at 0):

.. code-block:: none

    start: b[i] := true; x := i
           if y != 0 then b[i] := false; await y = 0; goto start
           y := i
           if x != i then
               b[i] := false
               for j in 1..n: await not b[j]
               if y != i then await y = 0; goto start
    critical section
    exit:  y := 0; b[i] := false

This is an asynchronous algorithm: it never consults the clock, so all of
its properties are immune to timing failures.
"""

# repro-lint: registers-only  (Lamport's fast lock, atomic registers alone)
# repro-lint: failure-tolerant  (fast path needs no timing bound)

from __future__ import annotations

from typing import Optional

from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from .base import MutexAlgorithm, MutexProperties
from .fischer import FREE

__all__ = ["LamportFastLock"]


class LamportFastLock(MutexAlgorithm):
    """Lamport's fast lock for ``n`` processes (pids ``0..n-1``)."""

    name = "lamport_fast"

    def __init__(self, n: int, namespace: Optional[RegisterNamespace] = None) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        ns = namespace if namespace is not None else RegisterNamespace.unique("lamport_fast")
        self.x = ns.register("x", FREE)
        self.y = ns.register("y", FREE)
        self.b = ns.array("b", False)

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=False,
            fast=True,
            timing_based=False,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> int:
        return n + 2  # b[0..n-1], x, y

    def entry(self, pid: int) -> Program:
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        while True:  # "goto start"
            yield self.b[pid].write(True)
            yield self.x.write(pid)
            y_val = yield self.y.read()
            if y_val != FREE:
                yield self.b[pid].write(False)
                while True:
                    y_val = yield self.y.read()
                    if y_val == FREE:
                        break
                continue  # goto start
            yield self.y.write(pid)
            x_val = yield self.x.read()
            if x_val != pid:
                # Contention: wait for every announced process to settle.
                yield self.b[pid].write(False)
                for j in range(self.n):
                    while True:
                        b_val = yield self.b[j].read()
                        if not b_val:
                            break
                y_val = yield self.y.read()
                if y_val != pid:
                    while True:
                        y_val = yield self.y.read()
                        if y_val == FREE:
                            break
                    continue  # goto start
            return  # enter critical section

    def exit(self, pid: int) -> Program:
        yield self.y.write(FREE)
        yield self.b[pid].write(False)

    def __repr__(self) -> str:
        return f"LamportFastLock(n={self.n})"
