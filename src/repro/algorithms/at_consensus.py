"""One-shot fast timing-based consensus (Alur–Taubenfeld style).

The per-round building block of Algorithm 1 ([4, 5, 6] in the paper),
packaged as a standalone consensus algorithm: flag your value, publish it
in ``y`` if first, decide your value if the conflicting flag is clear,
otherwise wait ``Δ`` and decide whatever ``y`` holds.

.. code-block:: none

    x[v] := 1
    if y = ⊥ then y := v
    if x[¬v] = 0 then decide(v)
    else delay(Δ); decide(y)

Properties:

* always terminates, in a constant number of steps (wait-free uncondition-
  ally — there is no loop);
* **agreement holds only when the timing constraints are met.**  A timing
  failure that stalls one process's write to ``y`` between its read of
  ``y = ⊥`` and the write lets two processes decide conflicting values.

This is the contrast object for experiment E6/E13-style safety sweeps:
under failure injection, :class:`AtConsensus` *does* produce disagreement
while Algorithm 1 never does — which is precisely the gap the paper's
notion of resilience closes.  (Algorithm 1 turns the unsafe "decide
``y``" into the safe "adopt ``y`` as next round's preference".)
"""

# repro-lint: registers-only  (one-shot fast consensus from atomic registers alone)

from __future__ import annotations

from typing import Any, Optional

from ..sim import ops
from ..sim.process import Program
from ..sim.registers import RegisterNamespace

__all__ = ["AtConsensus"]

_BOTTOM = None


class AtConsensus:
    """One-shot fast timing-based (non-resilient) consensus."""

    name = "at_consensus"

    def __init__(
        self, delta: float, namespace: Optional[RegisterNamespace] = None
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        ns = namespace if namespace is not None else RegisterNamespace.unique("at_consensus")
        self.x = ns.array("x", 0)
        self.y = ns.register("y", _BOTTOM)

    def propose(self, pid: int, value: Any) -> Program:
        if value not in (0, 1):
            raise ValueError(f"binary consensus: proposal must be 0 or 1, got {value!r}")
        other = 1 - value
        yield self.x[value].write(1)
        y_val = yield self.y.read()
        if y_val is _BOTTOM:
            yield self.y.write(value)
        flag = yield self.x[other].read()
        if flag == 0:
            decision = value
        else:
            yield ops.delay(self.delta)
            decision = yield self.y.read()
        yield ops.label(ops.DECIDED, decision)
        return decision

    def __repr__(self) -> str:
        return f"AtConsensus(delta={self.delta})"
