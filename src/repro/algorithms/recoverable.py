"""Recoverable consensus (Golab, "The Recoverable Consensus Hierarchy",
arXiv:1804.10597).

Golab studies consensus in the *crash-recovery* model: a process may crash
at any point and later restart with a **fresh program** (all local state —
program counter included — lost) over **persistent** shared memory.  An
object solves recoverable consensus when agreement and validity survive
any number of such crash-restart cycles.

A bare CAS cell is *not* enough on its own: a process that wins the CAS
and crashes before announcing cannot, on restart, tell whether the value
in the cell is its own proposal or a value it must adopt — with a fresh
program it no longer remembers what it proposed.  The standard recoverable
construction (and this module) pairs the CAS cell ``C`` with a persistent
decision register ``D``:

.. code-block:: none

    propose(v):
      1  if D != ⊥: decide D          # recovery fast path
      2  CAS(C, ⊥, v)
      3  w := read C                  # the unique winner
      4  D := w
      5  decide w

Every line is safe to re-execute from scratch after a crash: the CAS
decides at most once, every writer of ``D`` writes the same ``w``, and a
restarted process that observes ``D != ⊥`` adopts the recorded decision
without touching ``C``.  Agreement therefore holds across any crash
pattern, and validity holds because ``C`` only ever contains a proposal.

What is *not* covered: a :class:`~repro.sim.failures.MemoryFault` on ``D``
forges a decision — persistent memory corruption is outside the
crash-recovery contract (recoverability is about losing *volatile* state,
not about byzantine registers); the self-stabilizing side of this package
(:mod:`~repro.algorithms.dg_mutex`) is the tool for that fault class.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import ops
from ..sim.process import Program
from ..sim.registers import RegisterNamespace

__all__ = ["RecoverableConsensus"]

_BOTTOM = None


class RecoverableConsensus:
    """Consensus that survives crash-restart cycles over persistent registers.

    ``propose`` is *idempotent under re-execution*: running it again from
    the top (which is exactly what a crash-recovery restart does) can only
    re-derive or adopt the already-fixed decision, never change it.
    """

    name = "golab_consensus"

    def __init__(self, namespace: Optional[RegisterNamespace] = None) -> None:
        ns = (
            namespace
            if namespace is not None
            else RegisterNamespace.unique("golab_consensus")
        )
        self.cell = ns.register("C", _BOTTOM)  # CAS cell: fixes the winner
        self.decision = ns.register("D", _BOTTOM)  # persistent decision record

    def propose(self, pid: int, value: Any) -> Program:
        if value is _BOTTOM:
            raise ValueError("proposal must not be None (None encodes ⊥)")
        # Line 1 — recovery fast path: a previous incarnation (ours or any
        # other process's) already recorded the decision.
        recorded = yield self.decision.read()
        if recorded is not _BOTTOM:
            yield ops.label(ops.DECIDED, recorded)
            return recorded
        # Lines 2–5.
        yield ops.compare_and_swap(self.cell, _BOTTOM, value)
        winner = yield self.cell.read()
        yield self.decision.write(winner)
        yield ops.label(ops.DECIDED, winner)
        return winner

    def __repr__(self) -> str:
        return "RecoverableConsensus()"
