"""Lamport's bakery algorithm (CACM 1974).

The classic asynchronous, starvation-free (indeed FIFO-fair) lock from
atomic registers.  Every entry scans all ``n`` processes twice (once to
take a ticket, once to wait), so it is *not* fast — the paper's §3
headline contrasts exactly this: asynchronous locks like the bakery pay
``Ω(n)`` steps per entry even without contention, while Algorithm 3 pays
``O(Δ)`` time when the timing constraints are met.

Tickets grow without bound (the original algorithm); the bounded variant
is :mod:`repro.algorithms.black_white_bakery`.

.. code-block:: none

    entry(i):  choosing[i] := true
               number[i] := 1 + max(number[0..n-1])
               choosing[i] := false
               for j != i:
                   await choosing[j] = false
                   await number[j] = 0 or (number[j], j) >= (number[i], i)
    exit(i):   number[i] := 0
"""

# repro-lint: registers-only  (the bakery uses safe/atomic registers alone)
# repro-lint: failure-tolerant  (the bakery never consults a timing bound)

from __future__ import annotations

from typing import Optional

from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from .base import MutexAlgorithm, MutexProperties

__all__ = ["BakeryLock"]


class BakeryLock(MutexAlgorithm):
    """Lamport's bakery lock for ``n`` processes (pids ``0..n-1``)."""

    name = "bakery"

    def __init__(self, n: int, namespace: Optional[RegisterNamespace] = None) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        ns = namespace if namespace is not None else RegisterNamespace.unique("bakery")
        self.choosing = ns.array("choosing", False)  # repro-lint: single-writer
        self.number = ns.array("number", 0)  # repro-lint: single-writer

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=True,
            fast=False,
            timing_based=False,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> int:
        return 2 * n  # choosing[0..n-1], number[0..n-1]

    def entry(self, pid: int) -> Program:
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        yield self.choosing[pid].write(True)
        highest = 0
        for j in range(self.n):
            ticket = yield self.number[j].read()
            if ticket > highest:
                highest = ticket
        my_ticket = highest + 1
        yield self.number[pid].write(my_ticket)
        yield self.choosing[pid].write(False)
        for j in range(self.n):
            if j == pid:
                continue
            while True:
                is_choosing = yield self.choosing[j].read()
                if not is_choosing:
                    break
            while True:
                ticket = yield self.number[j].read()
                if ticket == 0 or (ticket, j) >= (my_ticket, pid):
                    break
        return

    def exit(self, pid: int) -> Program:
        yield self.number[pid].write(0)

    def __repr__(self) -> str:
        return f"BakeryLock(n={self.n})"
