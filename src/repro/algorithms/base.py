"""Common shape of mutual-exclusion algorithms and the session driver.

Every lock in this package (and Algorithm 3 in :mod:`repro.core.mutex`)
implements :class:`MutexAlgorithm`: an ``entry`` and an ``exit`` generator
per process, over registers drawn from a
:class:`~repro.sim.registers.RegisterNamespace` fixed at construction.
Instances are *engines-agnostic*: the same object drives the simulator,
the model checker and the thread runtime.

:func:`mutex_session` wraps a lock into a complete long-lived program —
the entry/CS/exit/remainder cycle with the trace labels the
specification checkers key on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..sim import ops
from ..sim.process import Program

__all__ = ["MutexProperties", "MutexAlgorithm", "mutex_session", "DurationFn"]

# A per-(pid, session) duration: constant or callable.
DurationFn = Union[float, Callable[[int, int], float]]


@dataclass(frozen=True)
class MutexProperties:
    """Static properties a lock claims; tests validate the claims.

    ``fast`` is the paper's notion: in the absence of contention a process
    enters its critical section after a constant number of its own steps.
    ``timing_based`` locks rely on ``delay(Δ)`` and lose a property under
    timing failures; asynchronous locks never consult the clock.
    """

    deadlock_free: bool = True
    starvation_free: bool = False
    fast: bool = False
    timing_based: bool = False
    exclusion_resilient: bool = True  # mutual exclusion holds even under
    # timing failures (Fischer famously does not satisfy this)


class MutexAlgorithm(ABC):
    """An n-process mutual-exclusion algorithm over atomic registers."""

    #: Human-readable algorithm name (used in experiment tables).
    name: str = "mutex"

    @abstractmethod
    def entry(self, pid: int) -> Program:
        """The entry code (trying protocol) of process ``pid``."""

    @abstractmethod
    def exit(self, pid: int) -> Program:
        """The exit code of process ``pid``."""

    @property
    @abstractmethod
    def properties(self) -> MutexProperties:
        """The properties this algorithm claims to satisfy."""

    def register_count(self, n: int) -> Optional[int]:
        """Number of shared registers used with ``n`` processes.

        ``None`` when unbounded (e.g. algorithms over infinite arrays);
        experiment E9 compares these counts against the Theorem 3.1 lower
        bound of ``n``.
        """
        return None


def _resolve(duration: DurationFn, pid: int, session: int) -> float:
    if callable(duration):
        return float(duration(pid, session))
    return float(duration)


def mutex_session(
    algorithm: MutexAlgorithm,
    pid: int,
    sessions: int,
    cs_duration: DurationFn = 0.0,
    ncs_duration: DurationFn = 0.0,
    start_delay: float = 0.0,
) -> Program:
    """A complete long-lived program: ``sessions`` entry/CS/exit cycles.

    Emits the ``ENTRY_START`` / ``CS_ENTER`` / ``CS_EXIT`` / ``EXIT_DONE``
    labels that :mod:`repro.spec.mutex_spec` interprets.  ``cs_duration``
    and ``ncs_duration`` model the critical section body and the remainder
    section; both may be callables of ``(pid, session)``.
    """
    if sessions < 0:
        raise ValueError(f"sessions must be >= 0, got {sessions}")
    if start_delay > 0:
        yield ops.local_work(start_delay)
    for session in range(sessions):
        yield ops.label(ops.ENTRY_START)
        yield from algorithm.entry(pid)
        yield ops.label(ops.CS_ENTER, session)
        cs = _resolve(cs_duration, pid, session)
        if cs > 0:
            yield ops.local_work(cs)
        yield ops.label(ops.CS_EXIT, session)
        yield from algorithm.exit(pid)
        yield ops.label(ops.EXIT_DONE, session)
        ncs = _resolve(ncs_duration, pid, session)
        if ncs > 0:
            yield ops.local_work(ncs)
    return sessions
