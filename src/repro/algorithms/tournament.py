"""Tournament-tree mutual exclusion (Peterson–Fischer style).

A complete binary tree of 2-process Peterson locks: process ``pid`` starts
at its leaf and acquires every lock on the path to the root; holding the
root means holding the lock.  Release walks the path in reverse.

Each Peterson node has bypass bound 1, so the tree is starvation-free with
bypass bounded by ``O(n)``; entry costs ``Θ(log n)`` steps even without
contention, so the lock is *not* fast — a useful middle point between the
bakery (``Θ(n)``) and the fast locks in experiment E7's comparison.
"""

# repro-lint: registers-only  (tournament tree of Peterson locks, registers alone)
# repro-lint: failure-tolerant  (inherits Peterson's timing independence)

from __future__ import annotations

from typing import List, Optional, Tuple

from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from .base import MutexAlgorithm, MutexProperties
from .peterson import peterson_acquire, peterson_release

__all__ = ["TournamentLock"]


def _levels_for(n: int) -> int:
    levels = 0
    while (1 << levels) < n:
        levels += 1
    return levels


class TournamentLock(MutexAlgorithm):
    """A tournament tree of Peterson locks for ``n`` processes."""

    name = "tournament"

    def __init__(self, n: int, namespace: Optional[RegisterNamespace] = None) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.levels = _levels_for(max(n, 2))
        ns = namespace if namespace is not None else RegisterNamespace.unique("tournament")
        # Heap-numbered internal nodes 1..2^levels - 1; three registers each.
        self.flag0 = ns.array("flag0", False)
        self.flag1 = ns.array("flag1", False)
        self.victim = ns.array("victim", 0)

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=True,
            fast=False,  # Θ(log n) entry even solo
            timing_based=False,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> int:
        internal_nodes = (1 << _levels_for(max(n, 2))) - 1
        return 3 * internal_nodes

    def _path(self, pid: int) -> List[Tuple[int, int]]:
        """The (node, side) pairs from leaf to root for ``pid``."""
        node = pid + (1 << self.levels)  # leaf position in heap numbering
        path: List[Tuple[int, int]] = []
        while node > 1:
            side = node & 1
            node >>= 1
            path.append((node, side))
        return path

    def entry(self, pid: int) -> Program:
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        for node, side in self._path(pid):
            yield from peterson_acquire(
                self.flag0[node], self.flag1[node], self.victim[node], side
            )
        return

    def exit(self, pid: int) -> Program:
        for node, side in reversed(self._path(pid)):
            yield from peterson_release(self.flag0[node], self.flag1[node], side)

    def __repr__(self) -> str:
        return f"TournamentLock(n={self.n})"
