"""Algorithms over stronger primitives (paper §4: "to use synchronization
primitives other than atomic registers").

The paper notes that with read-modify-write primitives, "simple fast
starvation-free mutual exclusion algorithms" exist directly.  This module
provides the classic ones, both as baselines for the register-only
constructions and as alternative embedded locks for Algorithm 3:

* :class:`TicketLock` — fetch-and-add ticket dispenser: FIFO-fair
  (starvation-free), *fast* (constant uncontended entry/exit), purely
  asynchronous.  Exactly the "simple fast starvation-free algorithm with
  stronger primitives" the paper alludes to — plugging it into Algorithm 3
  yields a time-resilient lock with a one-line embedded A.
* :class:`TestAndSetLock` — get-and-set spin lock with an optional
  ``delay``-based backoff driven by an optimistic(Δ) estimate: the backoff
  is a pure performance knob; exclusion never depends on it (a makeshift
  demonstration of the paper's "safety must not rest on timing" design
  rule applied to a primitive-based lock).
* :class:`CasConsensus` — consensus by a single compare-and-swap: the
  canonical infinite-consensus-number object, used as the ground-truth
  comparator for Algorithm 1's derived objects.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import ops
from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from .base import MutexAlgorithm, MutexProperties

__all__ = ["TicketLock", "TestAndSetLock", "CasConsensus"]

_UNLOCKED = 0
_LOCKED = 1
_BOTTOM = None


class TicketLock(MutexAlgorithm):
    """Fetch-and-add ticket lock: FIFO, fast, asynchronous."""

    name = "ticket"

    def __init__(self, namespace: Optional[RegisterNamespace] = None) -> None:
        ns = namespace if namespace is not None else RegisterNamespace.unique("ticket")
        self.next_ticket = ns.register("next_ticket", 0)
        self.now_serving = ns.register("now_serving", 0)

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=True,  # strict FIFO by ticket order
            fast=True,  # one FAA + one read uncontended
            timing_based=False,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> int:
        return 2

    def entry(self, pid: int) -> Program:
        ticket = yield ops.fetch_and_add(self.next_ticket, 1)
        while True:
            serving = yield self.now_serving.read()
            if serving == ticket:
                return

    def exit(self, pid: int) -> Program:
        # Only the ticket holder runs the exit code, so a plain
        # increment-by-write is atomic enough; we use FAA for symmetry and
        # to stay correct even if exit sections ever overlap under bugs.
        yield ops.fetch_and_add(self.now_serving, 1)

    def __repr__(self) -> str:
        return "TicketLock()"


class TestAndSetLock(MutexAlgorithm):
    """Get-and-set spin lock with an optional timing-based backoff.

    ``backoff`` (an optimistic(Δ) estimate) spaces out retries with the
    explicit ``delay`` statement: under a correct estimate contention on
    the lock word drops; under a wrong one the lock merely spins more.
    Mutual exclusion is independent of timing either way.
    """

    name = "tas_lock"
    __test__ = False  # pytest: a library class, not a test case

    def __init__(
        self,
        backoff: float = 0.0,
        namespace: Optional[RegisterNamespace] = None,
    ) -> None:
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        ns = namespace if namespace is not None else RegisterNamespace.unique("tas_lock")
        self.word = ns.register("word", _UNLOCKED)
        self.backoff = float(backoff)

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=False,  # an unlucky spinner can lose forever
            fast=True,
            timing_based=self.backoff > 0,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> int:
        return 1

    def entry(self, pid: int) -> Program:
        while True:
            old = yield ops.get_and_set(self.word, _LOCKED)
            if old == _UNLOCKED:
                return
            if self.backoff > 0:
                yield ops.delay(self.backoff)

    def exit(self, pid: int) -> Program:
        yield self.word.write(_UNLOCKED)

    def __repr__(self) -> str:
        return f"TestAndSetLock(backoff={self.backoff})"


class CasConsensus:
    """Wait-free consensus by a single compare-and-swap.

    The comparator for Algorithm 1: with a CAS object, consensus costs one
    shared step and needs no timing assumption at all; the paper's point
    is achieving (timing-resilient) consensus *without* such primitives.
    """

    name = "cas_consensus"

    def __init__(self, namespace: Optional[RegisterNamespace] = None) -> None:
        ns = namespace if namespace is not None else RegisterNamespace.unique("cas_consensus")
        self.cell = ns.register("cell", _BOTTOM)

    def propose(self, pid: int, value: Any) -> Program:
        if value is _BOTTOM:
            raise ValueError("proposal must not be None (None encodes ⊥)")
        yield ops.compare_and_swap(self.cell, _BOTTOM, value)
        decided = yield self.cell.read()
        yield ops.label(ops.DECIDED, decided)
        return decided

    def __repr__(self) -> str:
        return "CasConsensus()"
