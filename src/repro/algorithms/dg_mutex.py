"""Speculative self-stabilizing mutual exclusion (Dubois–Guerraoui).

Dubois and Guerraoui, "Introducing Speculation in Self-Stabilization"
(arXiv:1302.2217), observe that a self-stabilizing algorithm may be
*speculative*: correct under full asynchrony from **any** transient state,
while optimized for the common synchronous case.  Their exemplar — and
this module — is Dijkstra's K-state token ring:

.. code-block:: none

    shared S[0..n-1]: atomic registers, S[i] written only by process i
    privilege(0):  S[0]  = S[n-1]         move(0):  S[0] := S[0] + 1 mod K
    privilege(i):  S[i] != S[i-1], i > 0  move(i):  S[i] := S[i-1]

with ``K > n``.  A process may enter its critical section exactly while it
holds the privilege; leaving the critical section performs the move, which
passes the privilege along the ring.

**Self-stabilization** — from an *arbitrary* configuration (e.g. after a
``MemCorruption`` scrambles the token array) the ring converges to a legal
configuration with exactly one privilege in a finite number of moves:
non-root moves only copy values, so junk drains out of the ring, and the
root keeps incrementing modulo ``K`` until it holds a value appearing
nowhere else (``K > n`` guarantees one exists), which resets the ring.
During convergence several processes may be privileged simultaneously —
mutual exclusion may be violated *transiently*, which is exactly what the
chaos :class:`~repro.chaos.monitors.StabilizationMonitor` tolerates inside
its stabilization window and rejects after it.

**Speculation** — under a synchronous round-robin schedule the ring
converges within :func:`speculative_bound` sandbox steps (the fast path
the verifier checks under synchrony); under asynchrony convergence is
still guaranteed, just without the bound.
"""

# repro-lint: registers-only  (the token ring is purely asynchronous)

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..sim import ops
from ..sim.process import Program
from ..sim.registers import Array, Register, RegisterNamespace
from .base import MutexAlgorithm, MutexProperties

__all__ = [
    "DGTokenMutex",
    "stabilizing_session",
    "stabilizing_ring",
    "speculative_bound",
]


def speculative_bound(n: int, k: Optional[int] = None) -> int:
    """Shared-step bound for convergence under round-robin synchrony.

    The speculation contract: starting from *any* configuration, a
    synchronous round-robin schedule reaches a legal configuration (single
    privilege) within this many sandbox steps.  Each privilege test costs
    two reads and each move two more ops; the root needs at most ``K``
    increments to find a fresh value and each then drains around the ring,
    so ``O(n·(n+K))`` steps suffice — the constant is generous slack, not
    a tight analysis.
    """
    k = n + 1 if k is None else k
    return 8 * n * (n + k)


class DGTokenMutex(MutexAlgorithm):
    """Dijkstra's K-state token ring as a speculative self-stabilizing lock.

    Parameters
    ----------
    n:
        Ring size.  ``K > n`` is required for self-stabilization; the
        default ``K = n + 1`` is the minimum.
    k:
        Number of token states (the paper's ``K``).
    namespace:
        Register namespace; defaults to a private one.
    """

    name = "dg_mutex"

    def __init__(
        self,
        n: int,
        k: Optional[int] = None,
        namespace: Optional[RegisterNamespace] = None,
    ) -> None:
        if n < 2:
            raise ValueError(f"need at least 2 processes, got {n}")
        k = n + 1 if k is None else k
        if k <= n:
            raise ValueError(f"self-stabilization needs K > n, got K={k} n={n}")
        self.n = n
        self.k = k
        ns = namespace if namespace is not None else RegisterNamespace.unique("dg")
        #: The token array: ``s[i]`` is written only by process ``i``.
        self.s = ns.array("S", 0)
        #: Per-cell handles, for corruption tables and legality predicates.
        self.cells: List[Register] = [self.s[i] for i in range(n)]

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=True,  # the privilege circulates the ring
            fast=False,  # entry waits for the token even without contention
            timing_based=False,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> int:
        return n

    def privileged(self, pid: int) -> Program:
        """Generator returning whether ``pid`` currently holds the privilege."""
        mine = yield self.s[pid].read()
        left = yield self.s[self.n - 1 if pid == 0 else pid - 1].read()
        if pid == 0:
            return mine == left
        return mine != left

    def entry(self, pid: int) -> Program:
        while True:
            if (yield from self.privileged(pid)):
                return

    def exit(self, pid: int) -> Program:
        # The move: consume the privilege, passing it along the ring.
        if pid == 0:
            mine = yield self.s[0].read()
            yield self.s[0].write((mine + 1) % self.k)
        else:
            left = yield self.s[pid - 1].read()
            yield self.s[pid].write(left)

    def __repr__(self) -> str:
        return f"DGTokenMutex(n={self.n}, k={self.k})"


def stabilizing_session(
    lock: DGTokenMutex,
    done: Array,
    pid: int,
    sessions: int,
    cs_duration: float = 0.0,
) -> Program:
    """``sessions`` entry/CS/exit cycles, then *helper mode*.

    A token ring has a liveness quirk the plain
    :func:`~repro.algorithms.base.mutex_session` driver trips over: a
    process that simply stops after its last session freezes the token
    whenever the privilege reaches it, wedging everyone else.  Here a
    finished process raises its (single-writer) ``done`` flag and keeps
    *forwarding* the privilege — performing the move without entering the
    critical section — until every flag is up.
    """
    if sessions < 0:
        raise ValueError(f"sessions must be >= 0, got {sessions}")
    for session in range(sessions):
        yield ops.label(ops.ENTRY_START)
        yield from lock.entry(pid)
        yield ops.label(ops.CS_ENTER, session)
        if cs_duration > 0:
            yield ops.local_work(cs_duration)
        yield ops.label(ops.CS_EXIT, session)
        yield from lock.exit(pid)
        yield ops.label(ops.EXIT_DONE, session)
    yield done[pid].write(True)
    while True:
        finished = True
        for i in range(lock.n):
            value = yield done[i].read()
            if not value:
                finished = False
                break
        if finished:
            return sessions
        if (yield from lock.privileged(pid)):
            yield from lock.exit(pid)


def stabilizing_ring(
    n: int,
    sessions: int = 1,
    cs_duration: float = 0.0,
    k: Optional[int] = None,
    namespace: Optional[RegisterNamespace] = None,
) -> Tuple[DGTokenMutex, Callable[[int], Program]]:
    """A lock plus a per-pid program factory running the stabilizing session.

    The factory shape is what crash-recovery needs: a restarted process
    gets a fresh program over the same persistent registers.
    """
    ns = (
        namespace
        if namespace is not None
        else RegisterNamespace.unique("dg_ring")
    )
    lock = DGTokenMutex(n, k=k, namespace=ns)
    done = ns.array("done", False)

    def factory(pid: int) -> Program:
        return stabilizing_session(lock, done, pid, sessions, cs_duration)

    return lock, factory
