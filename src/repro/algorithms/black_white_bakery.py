"""Taubenfeld's Black-White Bakery algorithm (DISC 2004).

A bounded-space variant of Lamport's bakery, cited by the paper ([33]):
tickets are taken *within a color* (black or white), and because at most
``n`` processes ever hold the same color concurrently, ticket values never
exceed ``n``.  The shared ``color`` bit flips on every exit, retiring the
previous color's cohort.

Properties: asynchronous, starvation-free (FIFO within a color cohort),
bounded registers, not fast (entry scans all processes).  It serves as a
second starvation-free candidate for Algorithm 3's embedded lock ``A`` and
as an asynchronous baseline in experiment E7.

.. code-block:: none

    shared: color ∈ {black, white};
            choosing[i]; number[i] ∈ {0..n}; mycolor[i]

    entry(i): choosing[i] := true
              mycolor[i] := color
              number[i] := 1 + max{number[j] : mycolor[j] = mycolor[i]}
              choosing[i] := false
              for j != i:
                  await choosing[j] = false
                  if mycolor[j] = mycolor[i]:
                      await number[j] = 0 or (number[j], j) >= (number[i], i)
                            or mycolor[j] != mycolor[i]
                  else:
                      await number[j] = 0 or mycolor[i] != color
                            or mycolor[j] = mycolor[i]
    exit(i):  color := opposite of mycolor[i]
              number[i] := 0
"""

# repro-lint: registers-only  (bounded bakery, atomic registers alone)
# repro-lint: failure-tolerant  (bounded bakery, no timing bound)

from __future__ import annotations

from typing import Optional

from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from .base import MutexAlgorithm, MutexProperties

__all__ = ["BlackWhiteBakeryLock", "BLACK", "WHITE"]

BLACK = 0
WHITE = 1


class BlackWhiteBakeryLock(MutexAlgorithm):
    """The Black-White Bakery lock for ``n`` processes (pids ``0..n-1``)."""

    name = "black_white_bakery"

    def __init__(self, n: int, namespace: Optional[RegisterNamespace] = None) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        ns = namespace if namespace is not None else RegisterNamespace.unique("bw_bakery")
        self.color = ns.register("color", BLACK)
        self.choosing = ns.array("choosing", False)  # repro-lint: single-writer
        self.number = ns.array("number", 0)  # repro-lint: single-writer
        self.mycolor = ns.array("mycolor", BLACK)  # repro-lint: single-writer

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=True,
            fast=False,
            timing_based=False,
            exclusion_resilient=True,
        )

    def register_count(self, n: int) -> int:
        return 3 * n + 1  # choosing, number, mycolor per process + color

    def entry(self, pid: int) -> Program:
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        yield self.choosing[pid].write(True)
        my_color = yield self.color.read()
        yield self.mycolor[pid].write(my_color)
        highest = 0
        for j in range(self.n):
            j_color = yield self.mycolor[j].read()
            if j_color != my_color:
                continue
            ticket = yield self.number[j].read()
            if ticket > highest:
                highest = ticket
        my_ticket = highest + 1
        yield self.number[pid].write(my_ticket)
        yield self.choosing[pid].write(False)
        for j in range(self.n):
            if j == pid:
                continue
            while True:
                is_choosing = yield self.choosing[j].read()
                if not is_choosing:
                    break
            while True:
                ticket = yield self.number[j].read()
                if ticket == 0:
                    break
                j_color = yield self.mycolor[j].read()
                if j_color == my_color:
                    # Same cohort: bakery order within the color.
                    if (ticket, j) >= (my_ticket, pid):
                        break
                else:
                    # Different cohort: they go first unless the global
                    # color already moved past my cohort.
                    current = yield self.color.read()
                    if my_color != current:
                        break
            # Note: both await conditions also release when the *other*
            # process's situation changes (its ticket returning to 0 or its
            # color flipping), which the re-reads above observe.
        return

    def exit(self, pid: int) -> Program:
        my_color = yield self.mycolor[pid].read()
        yield self.color.write(WHITE if my_color == BLACK else BLACK)
        yield self.number[pid].write(0)

    def __repr__(self) -> str:
        return f"BlackWhiteBakeryLock(n={self.n})"
