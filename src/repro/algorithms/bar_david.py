"""A starvation-freedom transformation for deadlock-free locks.

The paper obtains its "simple and elegant fast starvation-free" embedded
algorithm ``A`` by applying a transformation due to Yoah Bar-David
(described in Taubenfeld's textbook, Problem 2.34) to Lamport's fast lock:
any deadlock-free lock becomes starvation-free by wrapping it in a
fairness gate.  This module implements that construction.

Our rendition uses three ingredients around an arbitrary deadlock-free
inner lock:

* ``interested[i]`` — process ``i`` is competing;
* ``turn`` — the process whose claim the gate currently honors: while
  ``interested[turn]`` holds, only ``turn`` (and processes already past
  the gate) may proceed into the inner lock;
* ``cont`` — a contention hint: gate waiters keep setting it, and an
  exiting process performs the ``O(n)`` turn-handoff scan *only* when the
  hint is set.  This keeps the uncontended exit constant-step, which is
  what lets the composed Algorithm 3 retain its ``O(Δ)`` time complexity
  (the scan only ever runs while the doorway has actually been breached by
  timing failures, i.e. during the convergence period of Theorem 3.3).

Why this is starvation-free (sketch, mirroring Theorem 3.3's reasoning):
a waiter ``p`` keeps ``cont`` set, so every exit performs a handoff scan;
scans advance ``turn`` cyclically through interested processes and never
move it off a still-interested holder, so ``turn`` reaches ``p`` within
``n`` handoffs and then sticks; the gate now blocks new entrants, the
finitely many processes already inside drain by the inner lock's
deadlock-freedom, and ``p`` — eventually alone inside — enters.

Why fast (when the inner lock is fast): the solo path costs three gate
steps on entry (write ``interested``, read ``turn``, read
``interested[turn]``) and two on exit (read ``cont``, clear
``interested``) plus the inner lock's own constant solo path.
"""

# repro-lint: registers-only  (Bar-David's lock, atomic registers alone)
# repro-lint: failure-tolerant  (correct even when every Delta bound is violated)

from __future__ import annotations

from typing import Optional

from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from .base import MutexAlgorithm, MutexProperties

__all__ = ["BarDavidLock"]


class BarDavidLock(MutexAlgorithm):
    """Starvation-free wrapper around a deadlock-free inner lock.

    Parameters
    ----------
    inner:
        Any deadlock-free :class:`MutexAlgorithm` (typically
        :class:`~repro.algorithms.lamport_fast.LamportFastLock`).  Its
        registers must not collide with this wrapper's — pass distinct
        namespaces.
    n:
        Number of processes (pids ``0..n-1``).
    """

    name = "bar_david"

    def __init__(
        self,
        inner: MutexAlgorithm,
        n: int,
        namespace: Optional[RegisterNamespace] = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if not inner.properties.deadlock_free:
            raise ValueError(
                f"inner lock {inner.name!r} must be deadlock-free for the "
                f"transformation to yield starvation-freedom"
            )
        self.inner = inner
        self.n = n
        ns = namespace if namespace is not None else RegisterNamespace.unique("bar_david")
        self.interested = ns.array("interested", False)  # repro-lint: single-writer
        self.turn = ns.register("turn", 0)
        self.cont = ns.register("cont", False)
        self.name = f"bar_david({inner.name})"

    @property
    def properties(self) -> MutexProperties:
        inner_props = self.inner.properties
        return MutexProperties(
            deadlock_free=True,
            starvation_free=True,  # the point of the transformation
            fast=inner_props.fast,
            timing_based=inner_props.timing_based,
            exclusion_resilient=inner_props.exclusion_resilient,
        )

    def register_count(self, n: int) -> Optional[int]:
        inner_count = self.inner.register_count(n)
        if inner_count is None:
            return None
        return inner_count + n + 2  # interested[0..n-1], turn, cont

    def entry(self, pid: int) -> Program:
        if not (0 <= pid < self.n):
            raise ValueError(f"pid {pid} out of range for n={self.n}")
        yield self.interested[pid].write(True)
        while True:
            t = yield self.turn.read()
            if t == pid:
                break
            holder_interested = yield self.interested[t].read()
            if not holder_interested:
                break  # stale turn: the gate is open
            yield self.cont.write(True)  # keep the handoff machinery alive
        yield from self.inner.entry(pid)

    def exit(self, pid: int) -> Program:
        contended = yield self.cont.read()
        if contended:
            t = yield self.turn.read()
            holder_interested = False
            if t != pid:
                holder_interested = yield self.interested[t].read()
            if not holder_interested:
                # Hand the turn to the next interested process after t,
                # cyclically, skipping ourselves (we are leaving).
                for offset in range(1, self.n + 1):
                    j = (t + offset) % self.n
                    if j == pid:
                        continue
                    if (yield self.interested[j].read()):
                        yield self.turn.write(j)
                        break
            yield self.cont.write(False)
        yield self.interested[pid].write(False)
        yield from self.inner.exit(pid)

    def __repr__(self) -> str:
        return f"BarDavidLock(inner={self.inner!r}, n={self.n})"
