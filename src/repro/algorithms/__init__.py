"""Baseline algorithms from the literature the paper builds on or cites.

Mutual exclusion: Fischer (Algorithm 2), Lamport's fast lock, the bakery,
the Black-White bakery, Peterson's 2-process and filter locks, the
tournament tree, and the Bar-David starvation-freedom transformation.

Consensus: the one-shot fast timing-based algorithm (Alur–Taubenfeld
style, *not* failure-resilient) and the unknown-bound time-adaptive
algorithm (Alur–Attiya–Taubenfeld style).

Robustness beyond timing: the Dubois–Guerraoui speculative
self-stabilizing token mutex (survives arbitrary transient register
corruption) and Golab's recoverable consensus (survives crash-restart
with persistent registers).
"""

from .aat_consensus import AatConsensus
from .at_consensus import AtConsensus
from .bakery import BakeryLock
from .bar_david import BarDavidLock
from .base import DurationFn, MutexAlgorithm, MutexProperties, mutex_session
from .black_white_bakery import BLACK, WHITE, BlackWhiteBakeryLock
from .dg_mutex import (
    DGTokenMutex,
    speculative_bound,
    stabilizing_ring,
    stabilizing_session,
)
from .fischer import FREE, FischerLock
from .lamport_fast import LamportFastLock
from .peterson import FilterLock, PetersonTwoProcess
from .recoverable import RecoverableConsensus
from .rmw import CasConsensus, TestAndSetLock, TicketLock
from .tournament import TournamentLock

__all__ = [
    "MutexAlgorithm",
    "MutexProperties",
    "mutex_session",
    "DurationFn",
    "FischerLock",
    "FREE",
    "LamportFastLock",
    "BakeryLock",
    "BlackWhiteBakeryLock",
    "BLACK",
    "WHITE",
    "PetersonTwoProcess",
    "FilterLock",
    "TournamentLock",
    "BarDavidLock",
    "AtConsensus",
    "AatConsensus",
    "TicketLock",
    "TestAndSetLock",
    "CasConsensus",
    "DGTokenMutex",
    "stabilizing_session",
    "stabilizing_ring",
    "speculative_bound",
    "RecoverableConsensus",
]
