"""Baseline algorithms from the literature the paper builds on or cites.

Mutual exclusion: Fischer (Algorithm 2), Lamport's fast lock, the bakery,
the Black-White bakery, Peterson's 2-process and filter locks, the
tournament tree, and the Bar-David starvation-freedom transformation.

Consensus: the one-shot fast timing-based algorithm (Alur–Taubenfeld
style, *not* failure-resilient) and the unknown-bound time-adaptive
algorithm (Alur–Attiya–Taubenfeld style).
"""

from .aat_consensus import AatConsensus
from .at_consensus import AtConsensus
from .bakery import BakeryLock
from .bar_david import BarDavidLock
from .base import DurationFn, MutexAlgorithm, MutexProperties, mutex_session
from .black_white_bakery import BLACK, WHITE, BlackWhiteBakeryLock
from .fischer import FREE, FischerLock
from .lamport_fast import LamportFastLock
from .peterson import FilterLock, PetersonTwoProcess
from .rmw import CasConsensus, TestAndSetLock, TicketLock
from .tournament import TournamentLock

__all__ = [
    "MutexAlgorithm",
    "MutexProperties",
    "mutex_session",
    "DurationFn",
    "FischerLock",
    "FREE",
    "LamportFastLock",
    "BakeryLock",
    "BlackWhiteBakeryLock",
    "BLACK",
    "WHITE",
    "PetersonTwoProcess",
    "FilterLock",
    "TournamentLock",
    "BarDavidLock",
    "AtConsensus",
    "AatConsensus",
    "TicketLock",
    "TestAndSetLock",
    "CasConsensus",
]
