"""Algorithm 2 — Fischer's timing-based mutual exclusion.

The first and simplest timing-based lock (Fischer, described in Lamport's
"A fast mutual exclusion algorithm"), reproduced verbatim from the paper:

.. code-block:: none

    shared x: atomic register, initially 0
    1  repeat   await (x = 0)
    2           x := i
    3           delay(Δ)
    4  until    x = i
    5  critical section
    6  x := 0

In the absence of timing failures the ``delay(Δ)`` guarantees that every
process that read ``x = 0`` has finished its subsequent write before the
delay expires, so whoever still sees its own id owns the lock.  Under a
timing failure — a write to ``x`` taking longer than ``Δ`` — two processes
can both pass the ``until`` test: mutual exclusion is **lost**.  That is
the motivating failure of the paper (experiment E13 reproduces it with a
targeted adversary and with the model checker).

The lock is *fast* (contention-free entry: read, write, delay, read) and
deadlock-free, but not starvation-free.
"""

# repro-lint: registers-only  (Fischer's lock uses one atomic register)

from __future__ import annotations

from typing import Optional

from ..sim import ops
from ..sim.process import Program
from ..sim.registers import RegisterNamespace
from .base import MutexAlgorithm, MutexProperties

__all__ = ["FischerLock", "FREE"]

#: The "unowned" value of the lock register (the paper's 0; we use a
#: dedicated sentinel so process ids may start at 0).
FREE: Optional[int] = None


class FischerLock(MutexAlgorithm):
    """Fischer's timing-based lock.

    Parameters
    ----------
    delta:
        The delay bound used in line 3.  Pass the system's true ``Δ`` for
    the classical guarantee, or an ``optimistic(Δ)`` estimate — safety
        of the *composed* Algorithm 3 never depends on this value, only
        Fischer's own mutual exclusion does.
    namespace:
        Register namespace; defaults to a private one.
    """

    name = "fischer"

    def __init__(
        self, delta: float, namespace: Optional[RegisterNamespace] = None
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        ns = namespace if namespace is not None else RegisterNamespace.unique("fischer")
        self.x = ns.register("x", FREE)

    @property
    def properties(self) -> MutexProperties:
        return MutexProperties(
            deadlock_free=True,
            starvation_free=False,
            fast=True,
            timing_based=True,
            exclusion_resilient=False,  # the famous weakness
        )

    def register_count(self, n: int) -> int:
        return 1

    def entry(self, pid: int) -> Program:
        while True:
            # line 1: await (x = FREE)
            while True:
                value = yield self.x.read()
                if value == FREE:
                    break
            # line 2
            yield self.x.write(pid)
            # line 3
            yield ops.delay(self.delta)
            # line 4
            value = yield self.x.read()
            if value == pid:
                return

    def exit(self, pid: int) -> Program:
        # line 6
        yield self.x.write(FREE)

    def __repr__(self) -> str:
        return f"FischerLock(delta={self.delta})"
