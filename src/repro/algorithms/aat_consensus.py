"""Time-adaptive consensus with an *unknown* bound (Alur–Attiya–Taubenfeld).

The paper's §1.5 contrasts Algorithm 1 with the algorithm of [3] (Alur,
Attiya, Taubenfeld, "Time-adaptive algorithms for synchronization"): when
a bound on memory access time exists but is **not known**, consensus
proceeds in rounds, each running the timing-based building block with an
*estimate* of ``Δ`` that grows (here: doubles) from round to round.  Once
the estimate reaches the true bound — and the timing constraints hold —
a round decides.

The structure below is Algorithm 1's loop with ``delay(est_r)`` in place
of ``delay(Δ)``.  Safety is identical to Algorithm 1 (delays never affect
safety).  The cost shows up exactly where the paper says it must: the
lower bound of [3] rules out ``c·Δ`` time complexity in the unknown-bound
model, and experiment E11 measures the gap — the smaller the initial
estimate relative to the true ``Δ``, the more (and longer) rounds this
algorithm burns, while Algorithm 1 stays at ``c·Δ``.
"""

# repro-lint: registers-only  (adaptive variant, atomic registers alone)

from __future__ import annotations

from typing import Any, Optional

from ..sim import ops
from ..sim.process import Program
from ..sim.registers import RegisterNamespace

__all__ = ["AatConsensus"]

_BOTTOM = None


class AatConsensus:
    """Round-based consensus with doubling delay estimates.

    Parameters
    ----------
    initial_estimate:
        The round-1 estimate of the (unknown) step-time bound.
    growth:
        Multiplicative estimate growth per round (the classical choice
        is 2).
    """

    name = "aat_consensus"

    def __init__(
        self,
        initial_estimate: float,
        growth: float = 2.0,
        namespace: Optional[RegisterNamespace] = None,
        max_rounds: Optional[int] = None,
    ) -> None:
        if initial_estimate <= 0:
            raise ValueError(
                f"initial_estimate must be positive, got {initial_estimate}"
            )
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.initial_estimate = float(initial_estimate)
        self.growth = float(growth)
        self.max_rounds = max_rounds
        ns = namespace if namespace is not None else RegisterNamespace.unique("aat")
        self.x = ns.array("x", 0)
        self.y = ns.array("y", _BOTTOM)
        self.decide = ns.register("decide", _BOTTOM)

    def estimate_for_round(self, r: int) -> float:
        """The delay estimate used in round ``r`` (1-based)."""
        return self.initial_estimate * (self.growth ** (r - 1))

    def propose(self, pid: int, value: Any) -> Program:
        if value not in (0, 1):
            raise ValueError(f"binary consensus: proposal must be 0 or 1, got {value!r}")
        v = value
        r = 1
        while True:
            decided = yield self.decide.read()
            if decided is not _BOTTOM:
                yield ops.label(ops.DECIDED, decided)
                return decided
            if self.max_rounds is not None and r > self.max_rounds:
                continue  # park: poll decide only (safety net for tests)
            yield self.x[r, v].write(1)
            y_val = yield self.y[r].read()
            if y_val is _BOTTOM:
                yield self.y[r].write(v)
            other = yield self.x[r, 1 - v].read()
            if other == 0:
                yield self.decide.write(v)
                continue
            yield ops.delay(self.estimate_for_round(r))
            y_val = yield self.y[r].read()
            if y_val is not _BOTTOM:
                v = y_val
            r += 1

    def __repr__(self) -> str:
        return (
            f"AatConsensus(initial_estimate={self.initial_estimate}, "
            f"growth={self.growth})"
        )
