"""Splitting a seed/schedule range into deterministic work shards.

Every heavy workload in this repo — fuzz campaigns, chaos campaigns,
net-substrate fuzzing — is a loop over *independently seeded* work
items: run ``i`` derives its RNG from ``(master_seed, i)`` and nothing
else.  That independence is what makes sharding trivial **and** what the
determinism contract leans on: a :class:`Shard` is just a contiguous
slice ``[start, stop)`` of the global item range, and any partition of
that range — one shard on one worker, or eight shards on eight — must
produce results that merge back (:mod:`repro.parallel.merge`) into
exactly the sequential output.

Two rules keep that true:

* **Per-item state is indexed by the global item position, never by the
  worker.**  :func:`derive_subseeds` draws one sub-seed per item from a
  single ``random.Random(master_seed)`` stream, so item ``i`` sees the
  same sub-seed whether the range was split two ways or sixteen; shards
  carry the slice of that stream covering their items.
* **Shards are data, not processes.**  A shard never knows how many
  workers exist; :mod:`repro.parallel.pool` maps shards onto workers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["Shard", "derive_subseeds", "make_shards"]


@dataclass(frozen=True)
class Shard:
    """One contiguous chunk ``[start, stop)`` of a campaign's item range.

    ``sub_seeds`` holds one master-seed-derived integer per item in the
    chunk (``sub_seeds[k]`` belongs to global item ``start + k``) for
    workloads that need a per-item RNG stream beyond the campaign's own
    ``f"{seed}:{index}"`` convention.  They are derived by global item
    index, so they are identical under any worker count.
    """

    index: int
    start: int
    stop: int
    sub_seeds: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(
                f"invalid shard range [{self.start}, {self.stop})"
            )
        if self.sub_seeds and len(self.sub_seeds) != self.count:
            raise ValueError(
                f"shard covers {self.count} item(s) but carries "
                f"{len(self.sub_seeds)} sub-seed(s)"
            )

    @property
    def count(self) -> int:
        return self.stop - self.start

    def describe(self) -> str:
        """Human-readable identity, used in errors and timing reports."""
        return f"shard {self.index}: seeds [{self.start}, {self.stop})"


def derive_subseeds(master_seed, count: int) -> Tuple[int, ...]:
    """One 64-bit sub-seed per work item, from a single master stream.

    The stream is indexed by global item position — never by worker id
    or worker count — so any sharding of ``[0, count)`` sees the same
    sub-seeds for the same items.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = random.Random(master_seed)
    return tuple(rng.getrandbits(64) for _ in range(count))


def make_shards(total: int, workers: int, master_seed=0) -> List[Shard]:
    """Split ``[0, total)`` into up to ``workers`` balanced shards.

    Chunks are contiguous; the first ``total % workers`` shards get one
    extra item.  Empty chunks (``total < workers``) are dropped, so every
    returned shard has at least one item.  Sub-seeds come from
    :func:`derive_subseeds` on the full range and are sliced per shard,
    preserving the by-global-index invariant.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    sub_seeds = derive_subseeds(master_seed, total)
    base, extra = divmod(total, workers)
    shards: List[Shard] = []
    start = 0
    for index in range(workers):
        count = base + (1 if index < extra else 0)
        if count == 0:
            break  # balanced layout: all later chunks are empty too
        stop = start + count
        shards.append(
            Shard(
                index=index,
                start=start,
                stop=stop,
                sub_seeds=sub_seeds[start:stop],
            )
        )
        start = stop
    return shards
