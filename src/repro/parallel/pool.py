"""Running shards on workers: spawn-safe pool with an in-process fallback.

:class:`WorkerPool` maps shard-worker functions over shards.  With
``workers == 1`` every shard runs **in the calling process** — no child
processes, no pickling of functions, payloads or results — which is both
the zero-dependency fallback path and the reference semantics the
multi-process path must reproduce bit-for-bit.  With ``workers > 1`` a
``multiprocessing`` pool using the **spawn** start method executes the
shards; spawn (rather than fork) is deliberate: children import modules
fresh, so worker functions must be module-level (picklable by reference)
and cannot smuggle inherited global state into the results — the same
discipline that keeps results identical across worker counts.

Worker exceptions never vanish into the pool: each shard's outcome is
captured (value or traceback) and a failing shard raises
:class:`WorkerError` naming the shard's seed range, so a crashed worker
fails the campaign loudly and reproducibly.

Every :class:`ShardResult` records the shard's wall-clock time and the
executing worker's pid, which is where the CLIs' per-worker
wall/throughput reports come from.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .shard import Shard

__all__ = [
    "ShardResult",
    "WorkerError",
    "WorkerPool",
    "run_sharded",
    "timing_rows",
]

# A shard worker: module-level function of (shard, payload) -> result.
ShardWorker = Callable[[Shard, Any], Any]


@dataclass
class ShardResult:
    """One shard's outcome plus its execution telemetry."""

    shard: Shard
    value: Any = None
    wall_seconds: float = 0.0
    worker_pid: int = 0
    error: Optional[str] = None  # formatted traceback when the worker raised


class WorkerError(RuntimeError):
    """A shard's worker raised; the campaign must fail, not limp on."""

    def __init__(self, shard: Shard, detail: str):
        super().__init__(
            f"worker failed on {shard.describe()}: {detail.rstrip()}"
        )
        self.shard = shard


def _execute(task) -> ShardResult:
    """Run one shard (in whatever process this is) and capture the outcome.

    Module-level so the spawn pool can pickle it by reference; exceptions
    are returned as data because a traceback that dies inside
    ``Pool.map`` loses the shard identity the error report needs.
    """
    fn, shard, payload = task
    started = time.perf_counter()
    try:
        value = fn(shard, payload)
    except Exception:
        return ShardResult(
            shard=shard,
            wall_seconds=time.perf_counter() - started,
            worker_pid=os.getpid(),
            error=traceback.format_exc(),
        )
    return ShardResult(
        shard=shard,
        value=value,
        wall_seconds=time.perf_counter() - started,
        worker_pid=os.getpid(),
    )


class WorkerPool:
    """A reusable mapping of shards onto workers.

    Create once per CLI invocation and reuse across campaigns — the
    spawn pool (children importing the package from scratch) is the
    expensive part, not the mapping.  Usable as a context manager.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def run(
        self, fn: ShardWorker, shards: Sequence[Shard], payload: Any = None
    ) -> List[ShardResult]:
        """Execute ``fn(shard, payload)`` for every shard; shard order kept.

        Raises :class:`WorkerError` for the lowest-indexed failing shard
        after all shards have been collected (so one bad shard cannot
        hide another's telemetry).
        """
        if not shards:
            return []
        tasks = [(fn, shard, payload) for shard in shards]
        if self.workers == 1:
            # In-process fallback: no pickling of fn, payload or values.
            results = [_execute(task) for task in tasks]
        else:
            if self._pool is None:
                import multiprocessing

                context = multiprocessing.get_context("spawn")
                self._pool = context.Pool(processes=self.workers)
            # chunksize=1: shards are coarse already; hand them out one
            # at a time so slow shards do not serialize behind fast ones.
            results = self._pool.map(_execute, tasks, chunksize=1)
        for result in results:
            if result.error is not None:
                raise WorkerError(result.shard, result.error)
        return results


def run_sharded(
    fn: ShardWorker,
    shards: Sequence[Shard],
    payload: Any = None,
    workers: int = 1,
) -> List[ShardResult]:
    """One-shot convenience: run shards on a fresh pool and close it."""
    with WorkerPool(workers) as pool:
        return pool.run(fn, shards, payload)


def timing_rows(
    results: Sequence[ShardResult], **tags: Any
) -> List[Dict[str, Any]]:
    """Per-shard timing records for the ``--timing-json`` reports.

    ``tags`` (e.g. ``campaign="fischer_n3"``) are merged into every row.
    Wall times are telemetry, not results: they never enter the
    deterministic summaries the CI determinism gate compares.
    """
    rows = []
    for result in results:
        wall = result.wall_seconds
        rows.append(
            dict(
                tags,
                shard=result.shard.index,
                start=result.shard.start,
                stop=result.shard.stop,
                items=result.shard.count,
                wall_s=round(wall, 6),
                worker_pid=result.worker_pid,
                throughput_per_s=(
                    round(result.shard.count / wall, 3) if wall > 0 else None
                ),
            )
        )
    return rows
