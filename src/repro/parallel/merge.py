"""Deterministically merging per-shard results back into one report.

The contract every merge here upholds: **merged shard output is
bit-identical to the sequential run** on the same master seed.  That
holds because each work item is independently seeded by its global
index (see :mod:`repro.parallel.shard`), so a shard's result is exactly
the sequential run's slice — merging is sorting by global index, summing
counters, and re-applying the sequential loop's stopping rule.

Three stopping disciplines appear in this repo and each has a merge:

* **collect-all** (``repro.verify.fuzz`` with
  ``stop_at_first_violation=False``, ``repro.net.fuzz``): every item
  runs; merge concatenates in global-index order and sums counters
  (:func:`merge_fuzz_results`, :func:`merge_net_reports`).
* **first-failure** (``repro.chaos`` campaigns): the sequential loop
  stops at the first failing run.  A shard may stop at *its own* first
  failure; the merge replays the sequential rule over the sorted run
  records, truncating at the globally-first failure — runs past it are
  discarded, so ``schedules_run``/``total_steps`` match the sequential
  report exactly (:func:`merge_campaign_runs`).

Domain types are imported lazily so ``repro.parallel`` stays importable
without the fuzz/net/chaos layers (and free of import cycles with the
CLIs that call into it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "RunRecord",
    "merge_counters",
    "merge_fuzz_results",
    "merge_net_reports",
    "merge_campaign_runs",
]


@dataclass(frozen=True)
class RunRecord:
    """One campaign run's summary as shipped back from a shard.

    ``outcome`` carries the full failing outcome (``SimOutcome`` /
    ``NetOutcome``) only when the run failed — passing runs ship just
    their index and step count, keeping worker results small.
    ``verdict`` is a passing run's positive evidence (a stabilization
    verdict from a recover target), and ``trace`` the run's repro.obs
    records when the campaign ran with tracing on.
    """

    index: int
    steps: int
    outcome: Optional[Any] = None
    verdict: Optional[Any] = None
    trace: Optional[Any] = None

    @property
    def ok(self) -> bool:
        return self.outcome is None


def merge_counters(parts: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum counter dicts key-wise (missing keys count as zero)."""
    merged: Dict[str, int] = {}
    for part in parts:
        for key, value in part.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def merge_fuzz_results(parts: Sequence[Any]) -> Any:
    """Merge per-shard :class:`~repro.verify.fuzz.FuzzResult` slices.

    Failures are ordered by ``(run_index, within-run discovery order)``
    — the sort is stable and each shard already lists its failures in
    discovery order — and the work counters are summed, reproducing the
    sequential collect-all run exactly.  Trace chunks (present when the
    shards ran with ``trace=True``) are likewise reassembled in global
    run-index order, so the concatenated JSONL is byte-identical to the
    single-worker trace.
    """
    from ..verify.fuzz import FuzzResult

    merged = FuzzResult(schedules_run=0, steps_taken=0)
    for part in parts:
        merged.schedules_run += part.schedules_run
        merged.steps_taken += part.steps_taken
        merged.completed_runs += part.completed_runs
        merged.failures.extend(part.failures)
        merged.trace_chunks.extend(part.trace_chunks)
    merged.failures.sort(key=lambda failure: failure.run_index)
    merged.trace_chunks.sort(key=lambda chunk: chunk[0])
    return merged


def merge_net_reports(parts: Sequence[Any]) -> Any:
    """Merge per-shard :class:`~repro.net.fuzz.NetFuzzReport` slices."""
    from ..net.fuzz import NetFuzzReport

    if not parts:
        return NetFuzzReport(seed=None, schedules=0)
    merged = NetFuzzReport(
        seed=parts[0].seed,
        schedules=sum(part.schedules for part in parts),
    )
    for part in parts:
        merged.outcomes.extend(part.outcomes)
        merged.trace_chunks.extend(part.trace_chunks)
    merged.outcomes.sort(key=lambda outcome: outcome.index)
    merged.trace_chunks.sort(key=lambda chunk: chunk[0])
    return merged


def merge_campaign_runs(campaign: Any, parts: Sequence[Sequence[RunRecord]]) -> Any:
    """Rebuild a chaos :class:`~repro.chaos.runner.CampaignReport`.

    Replays the sequential first-failure rule over the globally sorted
    run records: accumulate until the lowest-indexed failing run, then
    stop.  Records past the first failure (which only exist because
    other shards could not know about it) are discarded, never counted.
    """
    from ..chaos.runner import CampaignReport

    report = CampaignReport(campaign=campaign)
    records: List[RunRecord] = sorted(
        (record for part in parts for record in part),
        key=lambda record: record.index,
    )
    for record in records:
        report.schedules_run += 1
        report.total_steps += record.steps
        if record.trace is not None:
            report.trace_chunks.append((record.index, record.trace))
        if record.verdict is not None:
            report.verdicts += 1
            if report.first_verdict is None:
                report.first_verdict = record.verdict
        if not record.ok:
            report.failing = record.outcome
            break
    return report
