"""Seed-sharded worker fabric for the heavy campaign workloads.

Every campaign in this repo (``repro.verify.fuzz``, ``repro.net.fuzz``,
``repro.chaos``) is a loop over independently seeded work items.  This
package turns that loop into a fabric:

* :mod:`~repro.parallel.shard` — split the item range into contiguous
  shards with master-seed-derived, worker-count-independent sub-seeds;
* :mod:`~repro.parallel.pool` — run shards on a spawn-safe
  ``multiprocessing`` pool, or entirely in-process with ``workers=1``
  (no pickling), with per-shard wall/throughput telemetry and loud
  worker-crash surfacing;
* :mod:`~repro.parallel.merge` — deterministically merge shard results
  so ``--workers N`` output is bit-identical to ``--workers 1``.

The determinism contract (sharding may never change *what* a campaign
finds, only how fast) is CI-gated: the ``parallel-determinism`` job
byte-compares the fuzz summary JSON across worker counts, and any
violation found in parallel replays through the unchanged single-process
``repro.chaos`` pipeline.
"""

from .merge import (
    RunRecord,
    merge_campaign_runs,
    merge_counters,
    merge_fuzz_results,
    merge_net_reports,
)
from .pool import ShardResult, WorkerError, WorkerPool, run_sharded, timing_rows
from .shard import Shard, derive_subseeds, make_shards

__all__ = [
    "Shard",
    "derive_subseeds",
    "make_shards",
    "ShardResult",
    "WorkerError",
    "WorkerPool",
    "run_sharded",
    "timing_rows",
    "RunRecord",
    "merge_counters",
    "merge_fuzz_results",
    "merge_net_reports",
    "merge_campaign_runs",
]
