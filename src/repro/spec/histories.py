"""Concurrent object histories.

A *history* is the externally visible behaviour of a shared object: a set
of operations, each with an invocation time, a response time, a name,
arguments and a result.  Histories come from two places:

* tests build them directly (hand-written corner cases);
* :func:`history_from_trace` extracts them from simulator traces via the
  ``inv``/``resp`` label convention used by the wait-free objects in
  :mod:`repro.core.derived`.

The :mod:`repro.spec.linearizability` checker consumes histories to verify
that objects built from time-resilient consensus (test-and-set, the
universal construction) really are linearizable implementations of their
sequential specifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim import ops as op_kinds
from ..sim.trace import EventKind, Trace

__all__ = [
    "Operation",
    "History",
    "history_from_trace",
    "pending_from_trace",
    "INVOKE",
    "RESPOND",
]

# Label kinds for object-operation instrumentation.
INVOKE = "obj_invoke"
RESPOND = "obj_respond"


@dataclass(frozen=True)
class Operation:
    """One complete operation on a shared object."""

    pid: int
    name: str
    args: Tuple[Any, ...]
    result: Any
    invoked: float
    responded: float

    def __post_init__(self) -> None:
        if self.responded < self.invoked:
            raise ValueError(
                f"operation responds before it is invoked: {self!r}"
            )

    def precedes(self, other: "Operation") -> bool:
        """Real-time order: this op finished before the other started."""
        return self.responded < other.invoked

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return (
            f"p{self.pid}.{self.name}({args}) -> {self.result!r} "
            f"@[{self.invoked:.3f},{self.responded:.3f}]"
        )


@dataclass
class History:
    """A finite set of completed operations on one object."""

    operations: List[Operation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def add(
        self,
        pid: int,
        name: str,
        args: Tuple[Any, ...],
        result: Any,
        invoked: float,
        responded: float,
    ) -> None:
        self.operations.append(Operation(pid, name, args, result, invoked, responded))

    def sorted_by_invocation(self) -> List[Operation]:
        return sorted(self.operations, key=lambda o: (o.invoked, o.pid))

    def is_sequential(self) -> bool:
        """True when no two operations overlap in real time."""
        ops = sorted(self.operations, key=lambda o: o.invoked)
        for first, second in zip(ops, ops[1:]):
            if second.invoked < first.responded:
                return False
        return True

    def per_pid_well_formed(self) -> bool:
        """Each process's own operations must be sequential."""
        by_pid: Dict[int, List[Operation]] = {}
        for op in self.operations:
            by_pid.setdefault(op.pid, []).append(op)
        for ops in by_pid.values():
            ops.sort(key=lambda o: o.invoked)
            for first, second in zip(ops, ops[1:]):
                if second.invoked < first.responded:
                    return False
        return True


def history_from_trace(trace: Trace, obj: Any = None) -> History:
    """Extract an object history from ``INVOKE``/``RESPOND`` labels.

    Conventions: an invoke label's payload is ``(obj, name, args)`` and a
    respond label's payload is ``(obj, result)``; per process, responds
    match the most recent unanswered invoke on the same object.  Pass
    ``obj`` to select one object when a trace interleaves several; with
    ``obj=None`` all objects must be distinct by name anyway (payload obj
    still recorded but unfiltered).
    """
    history = History()
    pending: Dict[Tuple[int, Any], Tuple[str, Tuple[Any, ...], float]] = {}
    for event in trace:
        if event.kind != EventKind.LABEL:
            continue
        if event.label == INVOKE:
            this_obj, name, args = event.value
            if obj is not None and this_obj != obj:
                continue
            key = (event.pid, this_obj)
            if key in pending:
                raise ValueError(
                    f"pid {event.pid} invoked {name!r} on {this_obj!r} while a "
                    f"previous invocation is still pending"
                )
            pending[key] = (name, tuple(args), event.completed)
        elif event.label == RESPOND:
            this_obj, result = event.value
            if obj is not None and this_obj != obj:
                continue
            key = (event.pid, this_obj)
            if key not in pending:
                raise ValueError(
                    f"pid {event.pid} responded on {this_obj!r} without a "
                    f"pending invocation"
                )
            name, args, invoked = pending.pop(key)
            history.add(event.pid, name, args, result, invoked, event.completed)
    # Unanswered invocations (crashes mid-operation) are *not* part of the
    # completed history; fetch them with :func:`pending_from_trace` and pass
    # them to the checker's ``pending`` parameter — a crashed operation may
    # or may not have taken effect, and the checker tries both.
    return history


def pending_from_trace(trace: Trace, obj: Any = None) -> List["Operation"]:
    """Invocations with no response (crashed callers) as pending operations.

    Their effects may or may not be visible (a helper can complete a
    crashed process's operation in the universal construction), so feed
    them to :func:`repro.spec.linearizability.check_linearizability` via
    ``pending``; the checker considers both outcomes.  The recorded
    response time is ``+inf`` — a pending operation never constrains the
    real-time order.
    """
    import math

    answered: Dict[Tuple[int, Any], int] = {}
    opened: Dict[Tuple[int, Any], Tuple[str, Tuple[Any, ...], float]] = {}
    pending: List[Operation] = []
    for event in trace:
        if event.kind != EventKind.LABEL:
            continue
        if event.label == INVOKE:
            this_obj, name, args = event.value
            if obj is not None and this_obj != obj:
                continue
            opened[(event.pid, this_obj)] = (name, tuple(args), event.completed)
        elif event.label == RESPOND:
            this_obj, _ = event.value
            if obj is not None and this_obj != obj:
                continue
            opened.pop((event.pid, this_obj), None)
    for (pid, _), (name, args, invoked) in opened.items():
        pending.append(
            Operation(pid, name, args, None, invoked, math.inf)
        )
    return pending
