"""The consensus problem as a trace checker.

Consensus (binary or multivalued) requires of every execution:

* **validity** — every decided value is some process's input;
* **agreement** — no two processes decide differently (Theorem 2.3);
* **termination / wait-freedom** — once timing failures stop, every
  nonfaulty process decides, no matter how many others crashed
  (Theorem 2.4).

:func:`check_consensus` evaluates all three on a finished
:class:`~repro.sim.engine.RunResult`.  Safety (validity + agreement) must
hold on *every* run, including truncated ones (step/time limits) and runs
riddled with timing failures — that is the paper's stabilization
requirement.  Termination is only asserted when the caller says the run
was supposed to terminate (``require_termination=True``), since under
never-ending timing failures consensus may legitimately run forever (FLP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..sim.engine import RunResult
from ..sim.process import ProcessState

__all__ = ["ConsensusVerdict", "check_consensus"]


@dataclass
class ConsensusVerdict:
    """Outcome of checking one execution against the consensus spec."""

    valid: bool
    agreed: bool
    terminated: bool
    decisions: Dict[int, Any] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        """Validity and agreement together — the always-required half."""
        return self.valid and self.agreed

    @property
    def ok(self) -> bool:
        return self.safe and self.terminated

    def __repr__(self) -> str:
        status = "ok" if self.ok else ("safe" if self.safe else "VIOLATED")
        return (
            f"ConsensusVerdict({status}, decisions={self.decisions!r}, "
            f"violations={self.violations!r})"
        )


def _decided_values(result: RunResult) -> Dict[int, Any]:
    """Combine DECIDED labels and program return values, cross-checking."""
    decisions: Dict[int, Any] = {}
    for pid, (_, value) in result.trace.decisions().items():
        decisions[pid] = value
    for pid, value in result.returns.items():
        if value is None:
            # None encodes ⊥ (no decision): a program finishing without a
            # decision (e.g. a truncated helper) is not a decider.
            continue
        if pid in decisions and decisions[pid] != value:
            raise ValueError(
                f"pid {pid} labelled decision {decisions[pid]!r} but returned "
                f"{value!r}; algorithm instrumentation is inconsistent"
            )
        decisions.setdefault(pid, value)
    return decisions


def check_consensus(
    result: RunResult,
    inputs: Dict[int, Any],
    require_termination: bool = True,
    expected_decided: Optional[Iterable[int]] = None,
) -> ConsensusVerdict:
    """Check an execution against the consensus specification.

    Parameters
    ----------
    result:
        The finished run.
    inputs:
        pid -> proposed value (validity is judged against these).
    require_termination:
        When true, every nonfaulty process must have decided.  Pass false
        for runs under unbounded timing failures, where only safety is
        promised.
    expected_decided:
        Overrides the set of pids required to decide (defaults to every
        spawned, non-crashed pid).
    """
    violations: List[str] = []
    decisions = _decided_values(result)

    legal_values: Set[Any] = set(inputs.values())
    valid = True
    for pid, value in sorted(decisions.items()):
        if value not in legal_values:
            valid = False
            violations.append(
                f"validity: pid {pid} decided {value!r}, which no process proposed "
                f"(inputs: {inputs!r})"
            )

    agreed = True
    distinct: Dict[Any, int] = {}
    for pid, value in sorted(decisions.items()):
        distinct.setdefault(value, pid)
    if len(distinct) > 1:
        agreed = False
        violations.append(
            f"agreement: conflicting decisions {dict(sorted(decisions.items()))!r}"
        )

    if expected_decided is None:
        expected = {
            pid
            for pid, proc in result.processes.items()
            if proc.state is not ProcessState.CRASHED
        }
    else:
        expected = set(expected_decided)
    missing = sorted(expected - set(decisions))
    terminated = not missing
    if require_termination and missing:
        violations.append(
            f"termination: pids {missing} never decided "
            f"(run status: {result.status.value})"
        )
    if not require_termination:
        # Termination was not demanded; report it truthfully but do not
        # count missing decisions as violations.
        violations = [v for v in violations if not v.startswith("termination:")]

    return ConsensusVerdict(
        valid=valid,
        agreed=agreed,
        terminated=terminated,
        decisions=dict(sorted(decisions.items())),
        violations=violations,
    )
