"""Problem specifications as executable trace checkers.

* :mod:`~repro.spec.consensus_spec` — validity, agreement, termination;
* :mod:`~repro.spec.mutex_spec` — mutual exclusion, starvation, and the
  paper's time-complexity metric;
* :mod:`~repro.spec.histories` / :mod:`~repro.spec.linearizability` —
  object histories and a linearizability checker for the derived wait-free
  objects.
"""

from .consensus_spec import ConsensusVerdict, check_consensus
from .histories import INVOKE, RESPOND, History, Operation, history_from_trace, pending_from_trace
from .linearizability import (
    ConsensusModel,
    CounterModel,
    LinearizabilityResult,
    QueueModel,
    RegisterModel,
    SequentialModel,
    StackModel,
    TestAndSetModel,
    check_linearizability,
)
from .mutex_spec import (
    MutexVerdict,
    check_mutex,
    check_mutual_exclusion,
    check_starvation,
    max_bypass,
    time_complexity,
    unserved_intervals,
)

__all__ = [
    "ConsensusVerdict",
    "check_consensus",
    "MutexVerdict",
    "check_mutex",
    "check_mutual_exclusion",
    "check_starvation",
    "max_bypass",
    "time_complexity",
    "unserved_intervals",
    "History",
    "Operation",
    "history_from_trace",
    "pending_from_trace",
    "INVOKE",
    "RESPOND",
    "SequentialModel",
    "ConsensusModel",
    "TestAndSetModel",
    "QueueModel",
    "StackModel",
    "CounterModel",
    "RegisterModel",
    "LinearizabilityResult",
    "check_linearizability",
]
