"""The mutual exclusion problem as a trace checker.

Checked properties:

* **mutual exclusion** — no two critical-section occupancies overlap;
* **deadlock-freedom** — whenever some process is in its entry code and no
  process is in its critical section, some process eventually enters (on a
  finite trace: no overlong "stuck" suffix);
* **starvation-freedom** — every process that starts its entry code
  eventually enters its critical section (on a finite trace: bounded
  bypass);
* the paper's **time complexity** metric — "the longest time interval
  where some process is in its entry code while no process is in its
  critical section".

The time-complexity metric is the quantity behind both the Efficiency and
Convergence requirements of the resilience definition: Algorithm 3 must
keep it at ``O(Δ)`` when the timing constraints hold, and must return to
``O(Δ)`` a finite time after timing failures stop.
:func:`time_complexity` accepts a ``since`` bound so convergence can be
measured on the post-failure suffix only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.trace import CsInterval, Trace

__all__ = [
    "MutexVerdict",
    "check_mutual_exclusion",
    "check_starvation",
    "max_bypass",
    "time_complexity",
    "unserved_intervals",
    "check_mutex",
]


@dataclass
class MutexVerdict:
    """Outcome of checking one execution against the mutex spec."""

    exclusion_ok: bool
    starvation_ok: bool
    overlaps: List[Tuple[CsInterval, CsInterval]] = field(default_factory=list)
    starved_pids: List[int] = field(default_factory=list)
    max_bypass: int = 0
    time_complexity: float = 0.0
    violations: List[str] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        """Mutual exclusion — the property that must *always* hold."""
        return self.exclusion_ok

    @property
    def ok(self) -> bool:
        return self.exclusion_ok and self.starvation_ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else ("safe" if self.safe else "VIOLATED")
        return (
            f"MutexVerdict({status}, bypass={self.max_bypass}, "
            f"time_complexity={self.time_complexity:.3f}, "
            f"violations={self.violations!r})"
        )


def check_mutual_exclusion(trace: Trace) -> List[Tuple[CsInterval, CsInterval]]:
    """Return every pair of overlapping CS occupancies (empty = safe).

    Uses a sweep over enter-sorted intervals, so it is near-linear in the
    number of critical sections for well-behaved traces.
    """
    intervals = trace.cs_intervals()
    overlaps: List[Tuple[CsInterval, CsInterval]] = []
    active: List[CsInterval] = []
    for interval in intervals:  # sorted by enter time
        still_active = []
        for other in active:
            if other.exit > interval.enter:
                still_active.append(other)
                if interval.overlaps(other) and interval.pid != other.pid:
                    overlaps.append((other, interval))
        active = still_active
        active.append(interval)
    return overlaps


def max_bypass(trace: Trace) -> Tuple[int, Dict[int, int]]:
    """Worst bypass count and the per-pid breakdown.

    For every completed entry span of process ``p`` (from ``ENTRY_START``
    to ``CS_ENTER``), the bypass count is the number of *other* processes'
    CS entries strictly inside the span.  Starvation-free algorithms have
    bounded bypass; a process whose entry span runs to the end of the
    trace while others keep entering is the starvation signal.
    """
    spans = trace.entry_spans()
    cs_enters = [(iv.enter, iv.pid) for iv in trace.cs_intervals()]
    worst = 0
    per_pid: Dict[int, int] = {}
    for pid, start, end in spans:
        count = sum(1 for t, other in cs_enters if other != pid and start < t <= end)
        per_pid[pid] = max(per_pid.get(pid, 0), count)
        worst = max(worst, count)
    return worst, per_pid


def check_starvation(
    trace: Trace, bypass_bound: Optional[int] = None
) -> Tuple[List[int], int]:
    """Detect starvation on a finite trace.

    A process starves if its entry span is truncated by the end of the
    trace while at least ``bypass_bound`` other CS entries happened inside
    the span (default bound: 2 * number of participating processes + 2,
    which every bounded-bypass algorithm under test satisfies).

    Returns (starved pids, worst observed bypass).
    """
    n = max(len(trace.pids()), 1)
    bound = bypass_bound if bypass_bound is not None else 2 * n + 2
    worst, _ = max_bypass(trace)
    end = trace.end_time
    cs_enters = [(iv.enter, iv.pid) for iv in trace.cs_intervals()]
    starved: List[int] = []
    for pid, start, span_end in trace.entry_spans():
        if span_end < end:
            continue  # completed (or trace ended exactly at the CS entry)
        entered = any(
            iv.pid == pid and iv.enter >= start for iv in trace.cs_intervals()
        )
        if entered:
            continue
        bypasses = sum(1 for t, other in cs_enters if other != pid and t > start)
        if bypasses > bound:
            starved.append(pid)
    return sorted(set(starved)), worst


def unserved_intervals(
    trace: Trace, since: float = 0.0, until: Optional[float] = None
) -> List[Tuple[float, float]]:
    """Intervals where someone is in entry code but nobody is in a CS.

    This is the raw material of the paper's time-complexity metric.  The
    observation window is clipped to ``[since, until]`` (``until`` defaults
    to the end of the trace).
    """
    end = trace.end_time if until is None else until
    if end <= since:
        return []

    # +1/-1 edges for the "in entry" and "in CS" depth counters.
    edges: List[Tuple[float, int, int]] = []  # (time, which, delta)
    for _, start, stop in trace.entry_spans():
        edges.append((start, 0, +1))
        edges.append((stop, 0, -1))
    for interval in trace.cs_intervals():
        edges.append((interval.enter, 1, +1))
        edges.append((interval.exit, 1, -1))
    edges.sort()

    # Walk the segments between consecutive edge times; within a segment
    # both depths are constant.  All edges sharing one instant apply
    # simultaneously (a CS exit coinciding with a CS entry is a handover,
    # not a gap).
    out: List[Tuple[float, float]] = []
    entry_depth = 0
    cs_depth = 0
    prev_time = 0.0
    i = 0
    while i <= len(edges):
        time = edges[i][0] if i < len(edges) else max(end, prev_time)
        lo = max(prev_time, since)
        hi = min(time, end)
        if hi > lo and entry_depth > 0 and cs_depth == 0:
            out.append((lo, hi))
        while i < len(edges) and edges[i][0] == time:
            _, which, delta = edges[i]
            if which == 0:
                entry_depth += delta
            else:
                cs_depth += delta
            i += 1
        prev_time = time
        if i == len(edges):
            lo = max(prev_time, since)
            if end > lo and entry_depth > 0 and cs_depth == 0:
                out.append((lo, end))
            break

    # Merge touching fragments.
    merged: List[Tuple[float, float]] = []
    for lo, hi in sorted(out):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def time_complexity(
    trace: Trace, since: float = 0.0, until: Optional[float] = None
) -> float:
    """The paper's time-complexity metric on the window ``[since, until]``.

    "The longest time interval where some process is in its entry code
    while no process is in its critical section."  For the Efficiency
    requirement evaluate the full trace of a failure-free run; for the
    Convergence requirement evaluate with ``since`` set past the last
    timing failure (plus the claimed convergence allowance).
    """
    intervals = unserved_intervals(trace, since=since, until=until)
    return max((hi - lo for lo, hi in intervals), default=0.0)


def check_mutex(
    trace: Trace,
    bypass_bound: Optional[int] = None,
    since: float = 0.0,
) -> MutexVerdict:
    """Full mutual-exclusion verdict for one execution."""
    violations: List[str] = []
    overlaps = check_mutual_exclusion(trace)
    if overlaps:
        for a, b in overlaps[:5]:
            violations.append(
                f"mutual exclusion: pid {a.pid} in CS [{a.enter:.3f},{a.exit:.3f}] "
                f"overlaps pid {b.pid} in CS [{b.enter:.3f},{b.exit:.3f}]"
            )
        if len(overlaps) > 5:
            violations.append(f"... and {len(overlaps) - 5} more overlaps")
    starved, worst = check_starvation(trace, bypass_bound)
    if starved:
        violations.append(f"starvation: pids {starved} stuck in entry code")
    return MutexVerdict(
        exclusion_ok=not overlaps,
        starvation_ok=not starved,
        overlaps=overlaps,
        starved_pids=starved,
        max_bypass=worst,
        time_complexity=time_complexity(trace, since=since),
        violations=violations,
    )
