"""Linearizability checking (Wing & Gong / Lowe-style, with memoization).

Used to validate the wait-free objects built from time-resilient consensus
(test-and-set, the universal construction's queues/stacks/counters): every
concurrent history an execution produces must be explainable by some
sequential execution of the object's specification that respects real-time
order.

The checker is exponential in the worst case but memoizes on
(remaining-operation set, abstract state), which makes the histories our
tests produce (tens of operations, small state spaces) cheap to verify.

Crashed processes may leave an invocation without a response; such
*pending* operations may have taken effect or not.  Pass them via
``pending`` and the checker will consider both possibilities, computing
their (unconstrained) results from the model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from .histories import History, Operation

__all__ = [
    "SequentialModel",
    "ConsensusModel",
    "TestAndSetModel",
    "QueueModel",
    "StackModel",
    "CounterModel",
    "RegisterModel",
    "LinearizabilityResult",
    "check_linearizability",
]


class SequentialModel(ABC):
    """A sequential object specification.

    ``apply`` must be pure: it returns the new state and the operation's
    result without mutating the input state.  States must be hashable (or
    override :meth:`freeze`).
    """

    @abstractmethod
    def initial(self) -> Any:
        """The object's initial abstract state."""

    @abstractmethod
    def apply(self, state: Any, name: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        """Apply one operation: returns ``(new_state, result)``."""

    def freeze(self, state: Any) -> Hashable:
        """A hashable digest of a state (identity by default)."""
        return state


class ConsensusModel(SequentialModel):
    """One-shot consensus: the first ``propose`` fixes the decision."""

    def initial(self) -> Any:
        return None  # no decision yet

    def apply(self, state: Any, name: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if name != "propose":
            raise ValueError(f"consensus supports only 'propose', got {name!r}")
        (value,) = args
        decided = value if state is None else state
        return decided, decided


class TestAndSetModel(SequentialModel):
    """One-shot test-and-set: exactly one caller wins (gets 0)."""

    def initial(self) -> Any:
        return 0

    def apply(self, state: Any, name: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if name != "test_and_set":
            raise ValueError(f"TAS supports only 'test_and_set', got {name!r}")
        return 1, state


class QueueModel(SequentialModel):
    """FIFO queue with ``enqueue(v)`` and ``dequeue() -> v | None``."""

    def initial(self) -> Any:
        return ()

    def apply(self, state: Any, name: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if name == "enqueue":
            (value,) = args
            return state + (value,), None
        if name == "dequeue":
            if not state:
                return state, None
            return state[1:], state[0]
        raise ValueError(f"queue does not support {name!r}")


class StackModel(SequentialModel):
    """LIFO stack with ``push(v)`` and ``pop() -> v | None``."""

    def initial(self) -> Any:
        return ()

    def apply(self, state: Any, name: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if name == "push":
            (value,) = args
            return state + (value,), None
        if name == "pop":
            if not state:
                return state, None
            return state[:-1], state[-1]
        raise ValueError(f"stack does not support {name!r}")


class CounterModel(SequentialModel):
    """Counter with ``increment() -> previous`` and ``read() -> value``."""

    def initial(self) -> Any:
        return 0

    def apply(self, state: Any, name: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if name == "increment":
            return state + 1, state
        if name == "read":
            return state, state
        raise ValueError(f"counter does not support {name!r}")


class RegisterModel(SequentialModel):
    """Read/write register with ``write(v)`` and ``read() -> v``."""

    def __init__(self, initial: Any = 0) -> None:
        self._initial = initial

    def initial(self) -> Any:
        return self._initial

    def apply(self, state: Any, name: str, args: Tuple[Any, ...]) -> Tuple[Any, Any]:
        if name == "write":
            (value,) = args
            return value, None
        if name == "read":
            return state, state
        raise ValueError(f"register does not support {name!r}")


@dataclass
class LinearizabilityResult:
    """Outcome of a linearizability check."""

    ok: bool
    witness: Optional[List[Operation]] = None  # a legal sequential order
    explored: int = 0  # search nodes visited

    def __repr__(self) -> str:
        status = "linearizable" if self.ok else "NOT linearizable"
        return f"LinearizabilityResult({status}, explored={self.explored})"


def check_linearizability(
    history: History,
    model: SequentialModel,
    pending: Sequence[Operation] = (),
    max_nodes: int = 2_000_000,
) -> LinearizabilityResult:
    """Decide whether ``history`` is linearizable w.r.t. ``model``.

    ``pending`` operations (no response observed — crashed callers) may be
    linearized at any point after their invocation, with any result, or
    not at all.

    Raises :class:`RuntimeError` when the search exceeds ``max_nodes``
    (never observed on the test workloads; the bound guards against
    pathological inputs).
    """
    if not history.per_pid_well_formed():
        raise ValueError("history is not per-process sequential")

    complete = list(history.operations)
    maybe = list(pending)
    all_ops = complete + maybe
    ids = {id(op): i for i, op in enumerate(all_ops)}
    n_complete = len(complete)

    # responded[i]: +inf for pending ops — they never force an order.
    responded = [op.responded for op in complete] + [float("inf")] * len(maybe)
    invoked = [op.invoked for op in all_ops]

    seen: Set[Tuple[frozenset, Hashable]] = set()
    explored = 0

    def candidates(remaining: frozenset) -> List[int]:
        # i is a candidate iff no remaining j responded before i was invoked.
        min_response = min((responded[j] for j in remaining), default=float("inf"))
        return [i for i in remaining if invoked[i] <= min_response]

    def dfs(remaining: frozenset, state: Any, order: List[int]) -> Optional[List[int]]:
        nonlocal explored
        explored += 1
        if explored > max_nodes:
            raise RuntimeError(
                f"linearizability search exceeded {max_nodes} nodes"
            )
        if all(i >= n_complete for i in remaining):
            return order  # every complete op linearized; pending ops may drop
        key = (remaining, model.freeze(state))
        if key in seen:
            return None
        seen.add(key)
        for i in candidates(remaining):
            op = all_ops[i]
            new_state, result = model.apply(state, op.name, op.args)
            if i < n_complete and result != op.result:
                continue
            found = dfs(remaining - {i}, new_state, order + [i])
            if found is not None:
                return found
        return None

    initial_remaining = frozenset(range(len(all_ops)))
    found = dfs(initial_remaining, model.initial(), [])
    if found is None:
        return LinearizabilityResult(ok=False, explored=explored)
    witness = [all_ops[i] for i in found]
    return LinearizabilityResult(ok=True, witness=witness, explored=explored)
