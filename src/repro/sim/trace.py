"""Execution traces.

Every completed operation becomes one :class:`TraceEvent`.  Traces are the
single source of truth for the specification checkers
(:mod:`repro.spec`) and the metrics (:mod:`repro.analysis.metrics`):
mutual exclusion is checked on critical-section label intervals, the
paper's time-complexity metric is computed from entry/CS spans, decision
times are read off ``DECIDED`` labels, and timing failures are the events
whose duration exceeded ``Δ``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from . import ops as op_kinds

__all__ = ["EventKind", "TraceEvent", "Trace", "CsInterval"]


class EventKind:
    """String constants for :attr:`TraceEvent.kind`."""

    READ = "read"
    WRITE = "write"
    RMW = "rmw"
    DELAY = "delay"
    LOCAL = "local"
    LABEL = "label"
    CRASH = "crash"
    RESTART = "restart"  # crash-recovery: fresh program, persistent registers
    DONE = "done"
    FAULT = "fault"  # injected memory corruption (MemoryFault)
    SEND = "send"  # message handed to the network (repro.net)
    RECV = "recv"  # messages collected from the network (repro.net)


@dataclass(frozen=True)
class TraceEvent:
    """One completed operation (or lifecycle event) in an execution.

    ``issued`` is when the process started the operation and ``completed``
    is when it took effect; for shared-memory operations the linearization
    point is ``completed``.  ``exceeded_delta`` marks the event as a timing
    failure (only ever true for shared steps).
    """

    seq: int
    pid: int
    kind: str
    issued: float
    completed: float
    register: Optional[Hashable] = None
    value: Any = None  # value written, read, or the label payload
    label: Optional[str] = None  # label kind for LABEL events
    exceeded_delta: bool = False

    @property
    def duration(self) -> float:
        return self.completed - self.issued

    @property
    def is_shared(self) -> bool:
        return self.kind in (EventKind.READ, EventKind.WRITE, EventKind.RMW)

    def __repr__(self) -> str:  # compact, for test failure output
        core = f"#{self.seq} p{self.pid} {self.kind}"
        if self.register is not None:
            core += f" {self.register!r}"
        if self.kind == EventKind.LABEL:
            core += f" {self.label}"
        if self.value is not None:
            core += f" = {self.value!r}"
        flag = " !Δ" if self.exceeded_delta else ""
        return f"<{core} @[{self.issued:.3f},{self.completed:.3f}]{flag}>"


@dataclass(frozen=True)
class CsInterval:
    """One critical-section occupancy: [enter, exit] by ``pid``."""

    pid: int
    enter: float
    exit: float
    session: int  # 0-based index of this pid's CS entries

    def overlaps(self, other: "CsInterval") -> bool:
        """Strict overlap (shared endpoints do not count as overlap)."""
        return self.enter < other.exit and other.enter < self.exit


class Trace:
    """An append-only sequence of trace events with query helpers."""

    __slots__ = ("delta", "_events", "_finalized")

    def __init__(self, delta: float) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self._events: List[TraceEvent] = []
        self._finalized = False

    # -- construction (engine-facing) --------------------------------------

    def append(self, event: TraceEvent) -> None:
        if self._finalized:
            raise RuntimeError("trace already finalized")
        if self._events and event.completed < self._events[-1].completed:
            raise ValueError(
                f"events must be appended in completion order: "
                f"{event.completed} after {self._events[-1].completed}"
            )
        self._events.append(event)

    def finalize(self) -> None:
        self._finalized = True

    # -- basic queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    @property
    def events(self) -> Sequence[TraceEvent]:
        return tuple(self._events)

    @property
    def end_time(self) -> float:
        """Completion time of the last event (0 for an empty trace)."""
        return self._events[-1].completed if self._events else 0.0

    def for_pid(self, pid: int) -> List[TraceEvent]:
        return [e for e in self._events if e.pid == pid]

    def pids(self) -> Set[int]:
        return {e.pid for e in self._events}

    def shared_events(self, pid: Optional[int] = None) -> List[TraceEvent]:
        return [
            e
            for e in self._events
            if e.is_shared and (pid is None or e.pid == pid)
        ]

    def shared_step_count(self, pid: Optional[int] = None) -> int:
        return len(self.shared_events(pid))

    def labels(
        self, kind: Optional[str] = None, pid: Optional[int] = None
    ) -> List[TraceEvent]:
        return [
            e
            for e in self._events
            if e.kind == EventKind.LABEL
            and (kind is None or e.label == kind)
            and (pid is None or e.pid == pid)
        ]

    def registers_touched(self) -> Set[Hashable]:
        return {e.register for e in self._events if e.register is not None}

    # -- timing failures ----------------------------------------------------

    def timing_failures(self) -> List[TraceEvent]:
        """Every step whose duration exceeded ``Δ``."""
        return [e for e in self._events if e.exceeded_delta]

    @property
    def last_failure_time(self) -> float:
        """Completion time of the last timing failure (0 when none).

        This is where the convergence clock of the resilience definition
        starts ticking: "a finite number of time units after all timing
        failures stop ...".
        """
        failures = self.timing_failures()
        return failures[-1].completed if failures else 0.0

    def restarts(self, pid: Optional[int] = None) -> List[TraceEvent]:
        """Every crash-recovery restart event (see :class:`RecoverSchedule`)."""
        return [
            e
            for e in self._events
            if e.kind == EventKind.RESTART and (pid is None or e.pid == pid)
        ]

    @property
    def last_restart_time(self) -> float:
        """Completion time of the last restart (0 when none).

        Under crash-recovery a crash+restart pair is a transient fault; the
        convergence clock of the resilience definition must not start before
        the last restart.
        """
        restarts = self.restarts()
        return restarts[-1].completed if restarts else 0.0

    # -- consensus-oriented queries ------------------------------------------

    def decisions(self) -> Dict[int, Tuple[float, Any]]:
        """pid -> (decision time, decided value), from ``DECIDED`` labels."""
        out: Dict[int, Tuple[float, Any]] = {}
        for e in self.labels(kind=op_kinds.DECIDED):
            out.setdefault(e.pid, (e.completed, e.value))
        return out

    def decision_time(self, pid: int) -> Optional[float]:
        decision = self.decisions().get(pid)
        return None if decision is None else decision[0]

    # -- mutual-exclusion-oriented queries ------------------------------------

    def cs_intervals(self, pid: Optional[int] = None) -> List[CsInterval]:
        """Critical-section occupancies, from CS_ENTER/CS_EXIT label pairs.

        An unmatched ``CS_ENTER`` (process crashed or run truncated inside
        its critical section) closes at the end of the trace — unless the
        process later *restarts* (crash-recovery), in which case the
        occupancy ends at the crash: the dead incarnation stopped executing
        its critical section there, and the fresh incarnation may enter CS
        again without this counting as "entered twice".
        """
        open_by_pid: Dict[int, float] = {}
        crashed_open: Dict[int, Tuple[float, float]] = {}  # pid -> (enter, crash)
        sessions: Dict[int, int] = {}
        intervals: List[CsInterval] = []

        def close(close_pid: int, enter: float, exit_time: float) -> None:
            session = sessions.get(close_pid, 0)
            sessions[close_pid] = session + 1
            intervals.append(CsInterval(close_pid, enter, exit_time, session))

        for e in self._events:
            if e.kind == EventKind.CRASH and e.pid in open_by_pid:
                crashed_open[e.pid] = (open_by_pid.pop(e.pid), e.completed)
                continue
            if e.kind == EventKind.RESTART and e.pid in crashed_open:
                enter, crash = crashed_open.pop(e.pid)
                close(e.pid, enter, crash)
                continue
            if e.kind != EventKind.LABEL:
                continue
            if pid is not None and e.pid != pid:
                continue
            if e.label == op_kinds.CS_ENTER:
                if e.pid in open_by_pid:
                    raise ValueError(f"pid {e.pid} entered CS twice without exiting")
                open_by_pid[e.pid] = e.completed
            elif e.label == op_kinds.CS_EXIT:
                enter = open_by_pid.pop(e.pid, None)
                if enter is None:
                    raise ValueError(f"pid {e.pid} exited CS without entering")
                close(e.pid, enter, e.completed)
        end = self.end_time
        # A crash with no subsequent restart keeps the pre-recovery
        # semantics: the occupancy persists to the end of the trace.
        for open_pid, (enter, _crash) in crashed_open.items():
            open_by_pid.setdefault(open_pid, enter)
        for open_pid, enter in open_by_pid.items():
            session = sessions.get(open_pid, 0)
            intervals.append(CsInterval(open_pid, enter, end, session))
        intervals.sort(key=lambda iv: (iv.enter, iv.pid))
        return intervals

    def entry_spans(self, pid: Optional[int] = None) -> List[Tuple[int, float, float]]:
        """(pid, entry_start, cs_enter) spans — time spent in entry code.

        An ``ENTRY_START`` with no subsequent ``CS_ENTER`` (still waiting
        when the run ended, or crashed in the entry code) spans to the end
        of the trace — unless the process later restarts (crash-recovery),
        in which case the attempt ends at the crash and the fresh
        incarnation may start a new entry.
        """
        open_by_pid: Dict[int, float] = {}
        crashed_open: Dict[int, Tuple[float, float]] = {}  # pid -> (start, crash)
        spans: List[Tuple[int, float, float]] = []
        for e in self._events:
            if e.kind == EventKind.CRASH and e.pid in open_by_pid:
                crashed_open[e.pid] = (open_by_pid.pop(e.pid), e.completed)
                continue
            if e.kind == EventKind.RESTART and e.pid in crashed_open:
                start, crash = crashed_open.pop(e.pid)
                spans.append((e.pid, start, crash))
                continue
            if e.kind != EventKind.LABEL:
                continue
            if pid is not None and e.pid != pid:
                continue
            if e.label == op_kinds.ENTRY_START:
                if e.pid in open_by_pid:
                    raise ValueError(
                        f"pid {e.pid} started entry twice without entering CS"
                    )
                open_by_pid[e.pid] = e.completed
            elif e.label == op_kinds.CS_ENTER:
                start = open_by_pid.pop(e.pid, None)
                if start is not None:
                    spans.append((e.pid, start, e.completed))
        end = self.end_time
        # A crash with no subsequent restart: the attempt spans to the end
        # of the trace, exactly as before crash-recovery existed.
        for open_pid, (start, _crash) in crashed_open.items():
            open_by_pid.setdefault(open_pid, start)
        for open_pid, start in open_by_pid.items():
            spans.append((open_pid, start, end))
        spans.sort(key=lambda s: (s[1], s[0]))
        return spans

    def exit_spans(self, pid: Optional[int] = None) -> List[Tuple[int, float, float]]:
        """(pid, cs_exit, exit_done) spans — time spent in exit code."""
        open_by_pid: Dict[int, float] = {}
        spans: List[Tuple[int, float, float]] = []
        for e in self._events:
            if e.kind != EventKind.LABEL:
                continue
            if pid is not None and e.pid != pid:
                continue
            if e.label == op_kinds.CS_EXIT:
                open_by_pid[e.pid] = e.completed
            elif e.label == op_kinds.EXIT_DONE:
                start = open_by_pid.pop(e.pid, None)
                if start is not None:
                    spans.append((e.pid, start, e.completed))
        spans.sort(key=lambda s: (s[1], s[0]))
        return spans

    # -- register history (linearizability checking) ---------------------------

    def register_history(self, register_name: Hashable) -> List[TraceEvent]:
        """All reads and writes of one register, in linearization order."""
        return [
            e
            for e in self._events
            if e.is_shared and e.register == register_name
        ]

    # -- slicing ---------------------------------------------------------------

    def events_between(self, start: float, end: float) -> List[TraceEvent]:
        """Events whose completion time lies in ``[start, end]``.

        Uses binary search over the (sorted) completion times.
        """
        times = [e.completed for e in self._events]
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_right(times, end)
        return self._events[lo:hi]

    def __repr__(self) -> str:
        return f"Trace({len(self._events)} events, delta={self.delta}, end={self.end_time:.3f})"
