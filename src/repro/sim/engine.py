"""The discrete-event engine: the paper's timing-based system, executable.

The engine realizes the paper's model directly:

* shared memory is a set of atomic registers (:class:`~repro.sim.registers.Memory`);
* each process is a generator program yielding operations;
* every shared-memory access takes a duration chosen by the
  :class:`~repro.sim.timing.TimingModel` — at most ``Δ`` in a well-behaved
  system, more than ``Δ`` during a *timing failure*;
* ``delay(d)`` suspends the process for (at least) ``d`` time units;
* an operation's atomic effect (its linearization point) happens at its
  completion instant; same-instant completions linearize in the order the
  configured :class:`~repro.sim.scheduler.TieBreak` dictates.

Crash failures (for the wait-freedom experiments) are pre-scheduled from a
:class:`~repro.sim.failures.CrashSchedule`: a crashed process takes no
further steps, and an in-flight operation whose completion would linearize
at or after the crash instant is discarded — the crash really does strike
"between the invocation and the effect".

Determinism: given the same programs, timing model (with its seed), tie
break and crash schedule, a run is bit-for-bit reproducible.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.tracer import Tracer, active_tracer

from .clock import VirtualClock
from .failures import CrashSchedule, MemoryFault, RecoverSchedule
from .instrument import EngineProbe, active_probe
from .ops import Delay, Label, LocalWork, Op, Read, ReadModifyWrite, Write
from .process import Process, ProcessState, Program, ProgramFactory
from .registers import Memory
from .scheduler import FifoTieBreak, TieBreak
from .timing import StepContext, TimingModel
from .trace import EventKind, Trace, TraceEvent

__all__ = ["Engine", "RunResult", "RunStatus", "SimulationError"]

# Relative tolerance when classifying a step as a timing failure; guards
# against float noise in duration arithmetic.
_DELTA_TOLERANCE = 1e-9

# How many consecutive zero-duration operations (labels) a process may
# execute before the engine declares it livelocked.
_MAX_ZERO_DURATION_RUN = 10_000


class SimulationError(RuntimeError):
    """An algorithm program raised, or the simulation itself is broken."""


class RunStatus(enum.Enum):
    """Why :meth:`Engine.run` returned."""

    COMPLETED = "completed"  # every process finished or crashed
    TIME_LIMIT = "time_limit"  # virtual max_time reached
    STEP_LIMIT = "step_limit"  # max_total_steps shared accesses reached


@dataclass
class RunResult:
    """Everything observable about one simulation run."""

    status: RunStatus
    trace: Trace
    memory: Memory
    processes: Dict[int, Process]
    end_time: float

    @property
    def returns(self) -> Dict[int, Any]:
        """pid -> program return value, for processes that finished."""
        return {
            pid: p.result
            for pid, p in self.processes.items()
            if p.state is ProcessState.DONE
        }

    @property
    def completed(self) -> bool:
        return self.status is RunStatus.COMPLETED

    @property
    def crashed_pids(self) -> List[int]:
        return sorted(
            pid
            for pid, p in self.processes.items()
            if p.state is ProcessState.CRASHED
        )

    @property
    def live_pids(self) -> List[int]:
        """Processes still running when the run stopped (limits only)."""
        return sorted(pid for pid, p in self.processes.items() if p.alive)

    def __repr__(self) -> str:
        return (
            f"RunResult(status={self.status.value}, end={self.end_time:.3f}, "
            f"events={len(self.trace)}, done={len(self.returns)}, "
            f"crashed={len(self.crashed_pids)})"
        )


# Internal event actions.
_START = "start"
_COMPLETE = "complete"
_CRASH = "crash"
_RESTART = "restart"
_FAULT = "fault"

#: Pseudo-pid used for scheduler bookkeeping of injected memory faults.
FAULT_PID = -1

# Heap entries are plain tuples, ordered lexicographically by
# (time, priority, seq).  ``seq`` is unique per entry, so comparison never
# reaches the payload fields behind it:
#
#     (time, priority, seq, pid, action, op, issued, payload)
#
# Tuples instead of a dataclass keep the hot loop free of per-event object
# construction and rich-comparison dispatch (~20% of event-loop time on
# the bench pingpong micro-scenario).


class Engine:
    """Discrete-event executor for generator programs.

    Class attribute ``_TRACE_SUBSTRATE`` names the substrate in emitted
    trace records (overridden by :class:`repro.net.NetEngine`).

    Parameters
    ----------
    delta:
        The paper's ``Δ`` — the *known* upper bound on step time.  Only
        used for classification (which steps count as timing failures) and
        by metrics; the actual durations come from ``timing``.
    timing:
        The :class:`TimingModel` assigning a duration to every operation.
    tie_break:
        Linearization order for same-instant completions.
    crashes:
        Optional :class:`CrashSchedule`.
    recoveries:
        Optional :class:`RecoverSchedule` — crash-recovery restarts.  A
        restarting process gets a fresh program instance built by the
        factory passed to :meth:`spawn` while shared registers persist.
    max_time / max_total_steps:
        Run limits; exceeding one stops the run with the corresponding
        :class:`RunStatus` (needed because asynchronous adversaries can
        make consensus run forever — FLP — and busy-wait loops never
        terminate on their own).
    probe:
        Optional :class:`~repro.sim.instrument.EngineProbe` accumulating
        deterministic work counters.  Defaults to the ambient
        :func:`~repro.sim.instrument.probe_scope` probe, i.e. ``None``
        outside any scope — in which case instrumentation costs nothing.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` receiving structured
        span/event records.  Defaults to the ambient
        :func:`~repro.obs.tracer.trace_scope` tracer, i.e. ``None``
        outside any scope.  Tracing is pure observation: a traced run is
        bit-identical to an untraced one.
    """

    _TRACE_SUBSTRATE = "sim"

    def __init__(
        self,
        delta: float,
        timing: TimingModel,
        tie_break: Optional[TieBreak] = None,
        crashes: Optional[CrashSchedule] = None,
        recoveries: Optional[RecoverSchedule] = None,
        max_time: float = math.inf,
        max_total_steps: float = math.inf,
        memory: Optional[Memory] = None,
        faults: Optional[List[MemoryFault]] = None,
        probe: Optional[EngineProbe] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)
        self.timing = timing
        self.tie_break = tie_break if tie_break is not None else FifoTieBreak()
        self.crashes = crashes if crashes is not None else CrashSchedule.none()
        self.recoveries = (
            recoveries if recoveries is not None else RecoverSchedule.none()
        )
        self.max_time = max_time
        self.max_total_steps = max_total_steps
        self.memory = memory if memory is not None else Memory()

        self.clock = VirtualClock()
        self.trace = Trace(delta)
        self.processes: Dict[int, Process] = {}
        self._heap: List[Tuple] = []
        self._seq = itertools.count()
        self._event_seq = itertools.count()
        self.total_shared_steps = 0
        self._ran = False
        self._probe = probe if probe is not None else active_probe()
        self._tracer = tracer if tracer is not None else active_tracer()
        if self._tracer is not None:
            self._tracer.bind_clock(self.clock)
        # FifoTieBreak priorities are just the issue sequence number; skip
        # the method call and the 1-tuple per push for the default policy.
        self._fifo = type(self.tie_break) is FifoTieBreak
        for fault in faults or ():
            self._push(fault.at, FAULT_PID, _FAULT, payload=fault)

    # -- setup ---------------------------------------------------------------

    def spawn(
        self,
        program: Program,
        pid: Optional[int] = None,
        name: Optional[str] = None,
        start_time: float = 0.0,
        factory: Optional[ProgramFactory] = None,
    ) -> Process:
        """Register a program as a process starting at ``start_time``.

        ``factory`` rebuilds the program for a crash-recovery restart; it
        is required for any pid the :class:`RecoverSchedule` restarts
        (local state is volatile — only registers survive the crash).
        """
        if self._ran:
            raise RuntimeError("cannot spawn after run() — build a new Engine")
        if start_time < 0:
            raise ValueError(f"start_time must be >= 0, got {start_time}")
        if pid is None:
            pid = len(self.processes)
        if pid in self.processes:
            raise ValueError(f"pid {pid} already spawned")
        proc = Process(pid, program, name, factory=factory)
        proc.started_at = start_time
        proc.crash_time = self.crashes.crash_time(pid)
        proc.crash_step = self.crashes.crash_step(pid)
        self.processes[pid] = proc
        self._push(start_time, pid, _START)
        if math.isfinite(proc.crash_time):
            # Stamp the crash with the incarnation it belongs to so a
            # restarted process is not killed by its predecessor's event.
            self._push(proc.crash_time, pid, _CRASH, payload=0)
        recover_time = self.recoveries.recover_time(pid)
        if math.isfinite(recover_time):
            if factory is None:
                raise ValueError(
                    f"pid {pid} has a scheduled recovery but no program "
                    f"factory: restarts need a fresh program instance"
                )
            self._push(recover_time, pid, _RESTART)
        return proc

    # -- event plumbing --------------------------------------------------------

    def _push(
        self,
        time: float,
        pid: int,
        action: str,
        op: Optional[Op] = None,
        issued: float = 0.0,
        payload: Any = None,
    ) -> None:
        seq = next(self._seq)
        priority: Any = seq if self._fifo else self.tie_break.priority(pid, seq)
        probe = self._probe
        if probe is not None:
            probe.heap_pushes += 1
        heapq.heappush(
            self._heap,
            (time, priority, next(self._event_seq), pid, action, op, issued, payload),
        )

    # -- main loop ---------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute until every process finishes/crashes or a limit trips."""
        if self._ran:
            raise RuntimeError("Engine.run() may only be called once")
        self._ran = True
        tracer = self._tracer
        if tracer is not None:
            tracer.engine_run(
                self._TRACE_SUBSTRATE, self.delta, list(self.processes)
            )
        status = RunStatus.COMPLETED
        # The event loop is the simulator's hot path: bind everything it
        # touches per event to locals once, and order the action checks by
        # frequency (completions dominate every workload).
        heap = self._heap
        heappop = heapq.heappop
        processes = self.processes
        advance_to = self.clock.advance_to
        max_time = self.max_time
        complete = self._complete
        probe = self._probe
        while heap:
            if self.total_shared_steps >= self.max_total_steps:
                status = RunStatus.STEP_LIMIT
                break
            time, _priority, _seq, pid, action, op, issued, payload = heappop(heap)
            if time > max_time:
                status = RunStatus.TIME_LIMIT
                break
            if probe is not None:
                probe.events += 1
            if action == _COMPLETE:
                proc = processes[pid]
                if not proc.alive or payload != proc.incarnation:
                    # Stale event: the process crashed, or this completion
                    # belongs to an incarnation that died before a restart.
                    continue
                advance_to(time)
                complete(proc, op, issued, time)
                continue
            if action == _FAULT:
                advance_to(time)
                fault: MemoryFault = payload
                self.memory.poke(fault.register, fault.value)
                self.trace.append(
                    TraceEvent(
                        seq=next(self._event_seq),
                        pid=FAULT_PID,
                        kind=EventKind.FAULT,
                        issued=time,
                        completed=time,
                        register=fault.register.name,
                        value=fault.value,
                    )
                )
                if tracer is not None:
                    tracer.fault(fault.register.name, time)
                continue
            proc = processes[pid]
            if action == _CRASH:
                if payload == proc.incarnation:
                    self._crash(proc, time)
                continue
            if action == _RESTART:
                advance_to(time)
                self._restart(proc, time)
                continue
            if not proc.alive:
                continue  # stale event for a crashed process
            advance_to(time)
            if action == _START:
                self._start(proc, time)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event action {action!r}")
        self.trace.finalize()
        if probe is not None:
            probe.runs += 1
            probe.ops_linearized += sum(
                p.total_ops for p in self.processes.values()
            )
            probe.shared_steps += self.total_shared_steps
            probe.trace_events += len(self.trace)
            probe.reads += self.memory.read_count
            probe.writes += self.memory.write_count
            probe.rmws += self.memory.rmw_count
            probe.registers_touched += self.memory.register_count
        return RunResult(
            status=status,
            trace=self.trace,
            memory=self.memory,
            processes=self.processes,
            end_time=self.clock.now,
        )

    # -- lifecycle -------------------------------------------------------------

    def _start(self, proc: Process, now: float) -> None:
        if proc.crash_step <= 0:
            self._crash(proc, now)
            return
        proc.state = ProcessState.RUNNING
        self._resume(proc, None, now)

    def _crash(self, proc: Process, now: float) -> None:
        if not proc.alive:
            return
        proc.state = ProcessState.CRASHED
        proc.finished_at = now
        self.trace.append(
            TraceEvent(
                seq=next(self._event_seq),
                pid=proc.pid,
                kind=EventKind.CRASH,
                issued=now,
                completed=now,
            )
        )
        if self._tracer is not None:
            self._tracer.crash(proc.pid, now)
        proc.program.close()

    def _restart(self, proc: Process, now: float) -> None:
        """Crash-recovery: fresh program instance, persistent registers.

        Only a CRASHED process restarts — a process that finished (or was
        never crashed because its crash time never fired) ignores the
        event.  One restart per pid: the recovered incarnation has no
        further crash scheduled.
        """
        if proc.state is not ProcessState.CRASHED or proc.factory is None:
            return
        proc.incarnation += 1
        proc.program = proc.factory(proc.pid)
        proc.state = ProcessState.RUNNING
        proc.finished_at = None
        proc.crash_time = math.inf
        proc.crash_step = math.inf
        self.trace.append(
            TraceEvent(
                seq=next(self._event_seq),
                pid=proc.pid,
                kind=EventKind.RESTART,
                issued=now,
                completed=now,
                value=proc.incarnation,
            )
        )
        if self._tracer is not None:
            self._tracer.restart(proc.pid, now)
        self._resume(proc, None, now)

    def _complete(self, proc: Process, op: Optional[Op], issued: float, now: float) -> None:
        """Apply an in-flight operation's effect at its completion instant."""
        send_value: Any = None
        if isinstance(op, Read):
            send_value = self.memory.read(op.register)
            self._record_shared(proc, EventKind.READ, op.register.name, send_value, issued, now)
        elif isinstance(op, Write):
            self.memory.write(op.register, op.value)
            self._record_shared(proc, EventKind.WRITE, op.register.name, op.value, issued, now)
        elif isinstance(op, ReadModifyWrite):
            send_value = self.memory.rmw(op.register, op.transform)
            self._record_shared(
                proc, EventKind.RMW, op.register.name, send_value, issued, now
            )
        elif isinstance(op, Delay):
            self._record(proc, EventKind.DELAY, None, op.duration, issued, now)
        elif isinstance(op, LocalWork):
            self._record(proc, EventKind.LOCAL, None, op.duration, issued, now)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unexpected in-flight op {op!r}")
        proc.total_ops += 1
        if isinstance(op, (Read, Write, ReadModifyWrite)):
            proc.shared_steps += 1
            self.total_shared_steps += 1
            if proc.shared_steps >= proc.crash_step:
                self._crash(proc, now)
                return
        self._resume(proc, send_value, now)

    def _resume(self, proc: Process, send_value: Any, now: float) -> None:
        """Pull operations from the program until one consumes time."""
        for _ in range(_MAX_ZERO_DURATION_RUN):
            try:
                op = proc.program.send(send_value)
            except StopIteration as stop:
                proc.state = ProcessState.DONE
                proc.result = stop.value
                proc.finished_at = now
                self.trace.append(
                    TraceEvent(
                        seq=next(self._event_seq),
                        pid=proc.pid,
                        kind=EventKind.DONE,
                        issued=now,
                        completed=now,
                        value=stop.value,
                    )
                )
                if self._tracer is not None:
                    self._tracer.done(proc.pid, now)
                return
            except Exception as exc:
                proc.state = ProcessState.FAILED
                proc.error = exc
                raise SimulationError(
                    f"process {proc.pid} ({proc.name}) raised {exc!r} at time {now}"
                ) from exc

            if isinstance(op, Label):
                self.trace.append(
                    TraceEvent(
                        seq=next(self._event_seq),
                        pid=proc.pid,
                        kind=EventKind.LABEL,
                        issued=now,
                        completed=now,
                        value=op.payload,
                        label=op.kind,
                    )
                )
                if self._tracer is not None:
                    self._tracer.label(proc.pid, op.kind, now)
                proc.total_ops += 1
                send_value = None
                continue

            duration = self._duration_of(proc, op, now)
            self._push(
                now + duration,
                proc.pid,
                _COMPLETE,
                op=op,
                issued=now,
                payload=proc.incarnation,
            )
            return
        raise SimulationError(
            f"process {proc.pid} ({proc.name}) executed {_MAX_ZERO_DURATION_RUN} "
            f"consecutive zero-duration operations at time {now}: livelock"
        )

    def _duration_of(self, proc: Process, op: Op, now: float) -> float:
        if isinstance(op, (Read, Write, ReadModifyWrite)):
            ctx = StepContext(pid=proc.pid, op=op, now=now, step_index=proc.shared_steps)
            duration = self.timing.shared_step_duration(ctx)
            if duration <= 0:
                raise SimulationError(
                    f"timing model produced nonpositive step duration {duration}"
                )
            return duration
        if isinstance(op, Delay):
            duration = self.timing.delay_duration(proc.pid, op.duration, now)
            if duration < op.duration:
                raise SimulationError(
                    f"delay({op.duration}) shortened to {duration}: delay must "
                    f"last at least the requested time"
                )
            return duration
        if isinstance(op, LocalWork):
            duration = self.timing.local_duration(proc.pid, op.duration, now)
            if duration < 0:
                raise SimulationError(
                    f"local work duration must be >= 0, got {duration}"
                )
            return duration
        if isinstance(op, Op) and op.is_message:
            raise SimulationError(
                f"process {proc.pid} ({proc.name}) yielded message op {op!r}; "
                f"message operations need the network-aware engine "
                f"(repro.net.NetEngine)"
            )
        raise SimulationError(
            f"process {proc.pid} ({proc.name}) yielded a non-operation: {op!r}"
        )

    # -- trace recording ----------------------------------------------------------

    def _record_shared(
        self,
        proc: Process,
        kind: str,
        register_name: Any,
        value: Any,
        issued: float,
        completed: float,
    ) -> None:
        exceeded = (completed - issued) > self.delta * (1.0 + _DELTA_TOLERANCE)
        self.trace.append(
            TraceEvent(
                seq=next(self._event_seq),
                pid=proc.pid,
                kind=kind,
                issued=issued,
                completed=completed,
                register=register_name,
                value=value,
                exceeded_delta=exceeded,
            )
        )
        if self._tracer is not None:
            self._tracer.op(kind, proc.pid, register_name, issued, completed, exceeded)

    def _record(
        self,
        proc: Process,
        kind: str,
        register_name: Any,
        value: Any,
        issued: float,
        completed: float,
    ) -> None:
        self.trace.append(
            TraceEvent(
                seq=next(self._event_seq),
                pid=proc.pid,
                kind=kind,
                issued=issued,
                completed=completed,
                register=register_name,
                value=value,
            )
        )
        if self._tracer is not None:
            self._tracer.op(kind, proc.pid, register_name, issued, completed)
