"""Discrete-event simulator of the paper's timing-based shared-memory model.

The public surface most users need:

* :class:`Engine` — run generator programs against a timing model;
* :class:`Register`, :class:`Array`, :class:`RegisterNamespace`,
  :class:`Memory` — atomic shared registers;
* the :mod:`~repro.sim.ops` vocabulary (``read``/``write``/``delay``/...);
* timing models (:class:`ConstantTiming`, :class:`FailureWindowTiming`,
  :class:`AsynchronousTiming`, ...), failure descriptions
  (:class:`TimingFailureWindow`, :class:`CrashSchedule`,
  :class:`RecoverSchedule`) and targeted
  adversaries (:mod:`~repro.sim.adversary`);
* :class:`Trace` — what happened, queryable by the spec checkers.
"""

from .adversary import (
    compose_hooks,
    slow_after,
    stall_read_of,
    stall_step_index,
    stall_write_to,
)
from .clock import VirtualClock
from .engine import Engine, RunResult, RunStatus, SimulationError
from .instrument import EngineProbe, active_probe, probe_scope
from .failures import (CrashSchedule, MemoryFault, RecoverSchedule,
                       TimingFailureWindow, failure_window, merge_windows)
from .ops import (
    CS_ENTER,
    CS_EXIT,
    DECIDED,
    ENTRY_START,
    EXIT_DONE,
    Broadcast,
    Delay,
    Label,
    LocalWork,
    Op,
    Read,
    ReadModifyWrite,
    Recv,
    Send,
    Write,
    broadcast,
    compare_and_swap,
    delay,
    fetch_and_add,
    get_and_set,
    label,
    local_work,
    read,
    recv,
    send,
    write,
)
from .process import Process, ProcessState, Program, ProgramFactory
from .registers import Array, Memory, Register, RegisterNamespace
from .scheduler import FifoTieBreak, PidOrderTieBreak, RandomTieBreak, TieBreak
from .timing import (
    AsynchronousTiming,
    ConstantTiming,
    EmpiricalTiming,
    FailureWindowTiming,
    HookTiming,
    PerProcessTiming,
    StepContext,
    TimingModel,
    UniformTiming,
)
from .trace import CsInterval, EventKind, Trace, TraceEvent

__all__ = [
    # engine
    "Engine",
    "RunResult",
    "RunStatus",
    "SimulationError",
    "VirtualClock",
    # instrumentation
    "EngineProbe",
    "active_probe",
    "probe_scope",
    # processes
    "Process",
    "ProcessState",
    "Program",
    "ProgramFactory",
    # memory
    "Array",
    "Memory",
    "Register",
    "RegisterNamespace",
    # ops
    "Op",
    "Read",
    "Write",
    "ReadModifyWrite",
    "compare_and_swap",
    "fetch_and_add",
    "get_and_set",
    "Delay",
    "LocalWork",
    "Label",
    "Send",
    "Broadcast",
    "Recv",
    "read",
    "write",
    "delay",
    "local_work",
    "label",
    "send",
    "broadcast",
    "recv",
    "ENTRY_START",
    "CS_ENTER",
    "CS_EXIT",
    "EXIT_DONE",
    "DECIDED",
    # timing
    "TimingModel",
    "StepContext",
    "ConstantTiming",
    "EmpiricalTiming",
    "UniformTiming",
    "PerProcessTiming",
    "FailureWindowTiming",
    "AsynchronousTiming",
    "HookTiming",
    # failures
    "TimingFailureWindow",
    "CrashSchedule",
    "RecoverSchedule",
    "MemoryFault",
    "failure_window",
    "merge_windows",
    # adversaries
    "compose_hooks",
    "slow_after",
    "stall_read_of",
    "stall_step_index",
    "stall_write_to",
    # scheduling
    "TieBreak",
    "FifoTieBreak",
    "PidOrderTieBreak",
    "RandomTieBreak",
    # trace
    "Trace",
    "TraceEvent",
    "EventKind",
    "CsInterval",
]
