"""Tie-breaking policies for same-instant events.

The engine orders events by completion time; when several operations
complete at the same instant (routine under :class:`ConstantTiming`), the
scheduler decides their linearization order.  Different policies expose
different interleavings without touching the timing model:

* :class:`FifoTieBreak` — issue order (deterministic, the default);
* :class:`PidOrderTieBreak` — a fixed priority list of pids, useful for
  constructing specific adversarial linearizations in tests;
* :class:`RandomTieBreak` — seeded random order, used by the
  property-based tests to sweep many linearizations cheaply.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence, Tuple

__all__ = ["TieBreak", "FifoTieBreak", "PidOrderTieBreak", "RandomTieBreak"]


class TieBreak(ABC):
    """Assigns a sort key fragment to each scheduled event."""

    @abstractmethod
    def priority(self, pid: int, seq: int) -> Tuple:
        """Sort key for an event by ``pid`` with engine sequence ``seq``.

        Events with equal completion time linearize in ascending priority
        order (the engine appends ``seq`` as a final deterministic
        tie-breaker, so priorities need not be unique).
        """


class FifoTieBreak(TieBreak):
    """Linearize same-instant events in the order they were scheduled."""

    def priority(self, pid: int, seq: int) -> Tuple:
        return (seq,)

    def __repr__(self) -> str:
        return "FifoTieBreak()"


class PidOrderTieBreak(TieBreak):
    """Linearize same-instant events by a fixed pid priority list.

    Pids missing from the list sort after all listed pids, by pid.
    """

    def __init__(self, order: Sequence[int]) -> None:
        self._rank = {pid: i for i, pid in enumerate(order)}

    def priority(self, pid: int, seq: int) -> Tuple:
        return (self._rank.get(pid, len(self._rank)), pid)

    def __repr__(self) -> str:
        ordered = sorted(self._rank, key=self._rank.get)
        return f"PidOrderTieBreak({ordered!r})"


class RandomTieBreak(TieBreak):
    """Linearize same-instant events in seeded-random order."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def priority(self, pid: int, seq: int) -> Tuple:
        return (self._rng.random(),)

    def __repr__(self) -> str:
        return f"RandomTieBreak(seed={self.seed})"
