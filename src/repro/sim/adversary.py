"""Targeted timing adversaries.

The safety proofs of the paper quantify over *all* executions, including
ones where a timing failure strikes at the worst possible instant.  These
helpers build :class:`~repro.sim.timing.HookTiming` hooks that stretch
exactly the steps an adversary would pick:

* Algorithm 1's agreement argument worries about the write to ``y[r]``
  being stalled after a process read ``y[r] = ⊥`` — :func:`stall_write_to`
  with a predicate matching ``y``-cells reproduces that schedule;
* Fischer's algorithm (Algorithm 2) loses mutual exclusion when the write
  ``x := i`` is stalled past another process's ``delay(Δ)`` —
  :func:`stall_write_to` on ``x`` builds the classic violation;
* Theorem 3.2's non-convergence scenario keeps contention alive inside the
  embedded asynchronous algorithm — :func:`slow_after` keeps selected
  processes slow forever.

Hooks compose with :func:`compose_hooks`; the first hook that overrides a
step wins.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Optional, Sequence

from .ops import Read, Write
from .timing import StepContext

__all__ = [
    "Hook",
    "stall_write_to",
    "stall_read_of",
    "stall_step_index",
    "slow_after",
    "compose_hooks",
    "register_leaf",
    "round_conflict_hook",
]

# A hook inspects a step and may override its duration (None = keep).
Hook = Callable[[StepContext, float], Optional[float]]


def _matches(register_name: Hashable, target: object) -> bool:
    """Match a register name against a name, a predicate, or a prefix tuple."""
    if callable(target):
        return bool(target(register_name))
    if isinstance(target, tuple) and isinstance(register_name, tuple):
        return register_name[: len(target)] == target
    return register_name == target


def stall_write_to(
    target: object,
    duration: float,
    pids: Optional[Iterable[int]] = None,
    count: Optional[int] = 1,
) -> Hook:
    """Stretch writes to matching registers to ``duration`` time units.

    ``target`` may be an exact register name, a prefix tuple (matching
    array cells such as ``("y", r)`` under any namespace suffix), or a
    predicate over names.  Only the first ``count`` matching writes are
    stalled (``None`` = all of them).
    """
    affected = None if pids is None else frozenset(pids)
    remaining = [count]

    def hook(ctx: StepContext, nominal: float) -> Optional[float]:
        if not isinstance(ctx.op, Write):
            return None
        if affected is not None and ctx.pid not in affected:
            return None
        if not _matches(ctx.op.register.name, target):
            return None
        if remaining[0] is not None:
            if remaining[0] <= 0:
                return None
            remaining[0] -= 1
        return max(nominal, duration)

    return hook


def stall_read_of(
    target: object,
    duration: float,
    pids: Optional[Iterable[int]] = None,
    count: Optional[int] = 1,
) -> Hook:
    """Like :func:`stall_write_to` but for reads."""
    affected = None if pids is None else frozenset(pids)
    remaining = [count]

    def hook(ctx: StepContext, nominal: float) -> Optional[float]:
        if not isinstance(ctx.op, Read):
            return None
        if affected is not None and ctx.pid not in affected:
            return None
        if not _matches(ctx.op.register.name, target):
            return None
        if remaining[0] is not None:
            if remaining[0] <= 0:
                return None
            remaining[0] -= 1
        return max(nominal, duration)

    return hook


def stall_step_index(pid: int, step_index: int, duration: float) -> Hook:
    """Stretch exactly the ``step_index``-th shared step of ``pid``."""

    def hook(ctx: StepContext, nominal: float) -> Optional[float]:
        if ctx.pid == pid and ctx.step_index == step_index:
            return max(nominal, duration)
        return None

    return hook


def slow_after(
    pids: Sequence[int], start: float, factor: float
) -> Hook:
    """Permanently slow the given processes from ``start`` onwards.

    Unlike a :class:`~repro.sim.failures.TimingFailureWindow`, this never
    ends — it models an environment that stays asynchronous, which is how
    Theorem 3.2's non-convergence adversary keeps contention alive.
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    affected = frozenset(pids)

    def hook(ctx: StepContext, nominal: float) -> Optional[float]:
        if ctx.pid in affected and ctx.now >= start:
            return nominal * factor
        return None

    return hook


def register_leaf(name: Hashable) -> Hashable:
    """The human-level register name inside namespaced/array names.

    Our conventions produce ``(namespace, "decide")`` for plain registers
    and ``((namespace, "x"), r, v)`` for array cells; this returns the
    ``"decide"`` / ``"x"`` leaf in either case (and the name itself for
    flat names).
    """
    if isinstance(name, tuple) and name:
        # Plain register: (namespace, "leaf") — the leaf is the trailing
        # string.  Array cell: ((namespace, "leaf"), idx...) — indices are
        # not strings, so the leaf is the base tuple's trailing string.
        if isinstance(name[-1], str):
            return name[-1]
        head = name[0]
        if isinstance(head, tuple) and head and isinstance(head[-1], str):
            return head[-1]
    return name


def round_conflict_hook(delta: float, slow_pid: int = 1, fast_pid: int = 0) -> Hook:
    """The worst legal schedule for round-based register consensus.

    All durations stay within ``Δ`` — *no timing failures* — yet every
    round of an Algorithm-1-shaped protocol (registers ``x``/``y``/
    ``decide``) keeps the conflict alive for as long as the protocol's
    delay statement is shorter than ``Δ``:

    * every write to an ``x`` flag takes ``Δ`` (keeps the two processes'
      rounds aligned so neither laps the other into an uncontested round);
    * the slow process's writes to ``y`` take ``Δ`` (its round proposal
      lands only after the fast process's post-delay read — unless that
      delay was a full ``Δ``);
    * the fast process's reads of ``decide`` take ``Δ`` (its per-round
      compensation for the slow process's late ``y`` write), and the slow
      process's *first* ``decide`` read also takes ``Δ`` (round-1 phase
      alignment).

    Against this schedule, Algorithm 1 with ``delay(Δ)`` decides in round
    2, while any estimate below ``Δ`` loses every round — the sharp
    threshold behind experiments E10 and E11 and the lower bound of
    Alur–Attiya–Taubenfeld for the unknown-bound model.
    """
    first_decide = {slow_pid: True}

    def hook(ctx: StepContext, nominal: float) -> Optional[float]:
        leaf = register_leaf(ctx.op.register.name)
        if isinstance(ctx.op, Write) and leaf == "x":
            return delta
        if isinstance(ctx.op, Write) and leaf == "y" and ctx.pid == slow_pid:
            return delta
        if isinstance(ctx.op, Read) and leaf == "decide":
            if ctx.pid == fast_pid:
                return delta
            if ctx.pid == slow_pid and first_decide[slow_pid]:
                first_decide[slow_pid] = False
                return delta
        return None

    return hook


def compose_hooks(*hooks: Hook) -> Hook:
    """Run hooks in order; the first override wins."""

    def hook(ctx: StepContext, nominal: float) -> Optional[float]:
        for h in hooks:
            override = h(ctx, nominal)
            if override is not None:
                return override
        return None

    return hook
