"""Failure descriptions: timing-failure windows and crash schedules.

The paper considers two kinds of adversity:

* **timing failures** — a step (one shared-memory access) takes longer
  than the known bound ``Δ``.  We describe these as
  :class:`TimingFailureWindow` intervals during which affected processes'
  steps are stretched beyond ``Δ``;
* **process crashes** — a process permanently stops taking steps
  (Algorithm 1 is wait-free, so it must tolerate any number of these).
  We describe these with a :class:`CrashSchedule`.

Both descriptions are pure data; :mod:`repro.sim.timing` and
:mod:`repro.sim.engine` interpret them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "TimingFailureWindow",
    "CrashSchedule",
    "RecoverSchedule",
    "MemoryFault",
    "failure_window",
    "merge_windows",
]


@dataclass(frozen=True)
class TimingFailureWindow:
    """An interval during which steps violate the timing assumption.

    Any shared-memory step *issued* at a time ``t`` with
    ``start <= t < end`` by an affected process takes ``stretch`` times its
    nominal duration (or exactly ``duration`` time units when given).  A
    window with ``pids=None`` affects every process.

    To actually constitute a timing failure in the paper's sense the
    resulting duration must exceed ``Δ``; the constructor cannot check that
    (it does not know ``Δ``), but :meth:`violates_delta` lets callers
    assert it.
    """

    start: float
    end: float
    pids: Optional[FrozenSet[int]] = None
    stretch: float = 1.0
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"window end {self.end} precedes start {self.start}")
        if self.stretch < 1.0:
            raise ValueError(f"stretch must be >= 1, got {self.stretch}")
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    def affects(self, pid: int, now: float) -> bool:
        """True when a step issued by ``pid`` at time ``now`` is affected."""
        if not (self.start <= now < self.end):
            return False
        return self.pids is None or pid in self.pids

    def apply(self, nominal: float) -> float:
        """The stretched duration of a step whose nominal duration is given."""
        if self.duration is not None:
            return max(nominal, self.duration)
        return nominal * self.stretch

    def violates_delta(self, delta: float, nominal: float) -> bool:
        """Whether the window turns a nominal-duration step into a failure."""
        return self.apply(nominal) > delta


def failure_window(
    start: float,
    end: float,
    pids: Optional[Iterable[int]] = None,
    stretch: float = 1.0,
    duration: Optional[float] = None,
) -> TimingFailureWindow:
    """Convenience constructor accepting any iterable of pids."""
    frozen = None if pids is None else frozenset(pids)
    return TimingFailureWindow(start, end, frozen, stretch, duration)


def merge_windows(
    windows: Sequence[TimingFailureWindow],
) -> List[Tuple[float, float]]:
    """Collapse windows into a sorted list of disjoint (start, end) spans.

    Used to compute "the last instant at which a timing failure may occur",
    after which the convergence clock of the resilience checker starts.

    Zero-length windows (``start == end``) affect no step — a step issued
    at ``t`` is affected only when ``start <= t < end`` — so they are
    dropped rather than surfacing as degenerate spans; exactly-abutting
    windows (one ends where the next starts) coalesce into one span.
    """
    spans = sorted((w.start, w.end) for w in windows if w.end > w.start)
    merged: List[Tuple[float, float]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass(frozen=True)
class MemoryFault:
    """A transient memory failure: a register spontaneously changes value.

    The paper's Discussion lists "both (transient) memory failures and
    timing failures" as an extension; this is the injection primitive for
    exploring it.  At virtual time ``at`` the register named by the handle
    ``register`` is overwritten with ``value``, independent of any
    process.  The corruption linearizes like a write at that instant and
    is recorded in the trace as a ``fault`` event.

    The paper's algorithms are NOT claimed resilient to these — the test
    suite documents which corruptions they happen to survive (e.g. stale
    round flags after a decision) and which they do not (a corrupted
    ``decide`` register forges decisions).
    """

    at: float
    register: object  # a Register handle
    value: object

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")


@dataclass
class CrashSchedule:
    """When (if ever) each process crashes.

    A crash is modelled as the process permanently ceasing to take steps.
    Two triggers are supported and may be combined; whichever fires first
    wins:

    * ``at_time[pid]`` — the process crashes at that virtual time (it will
      not *complete* any shared-memory step whose linearization point would
      fall at or after the crash time, and takes no further steps);
    * ``after_steps[pid]`` — the process crashes immediately after
      completing that many shared-memory steps (0 means it never takes a
      step at all).
    """

    at_time: Dict[int, float] = field(default_factory=dict)
    after_steps: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pid, t in self.at_time.items():
            # `not (t >= 0)` also rejects NaN, which `t < 0` lets through.
            if not (t >= 0):
                raise ValueError(f"crash time for pid {pid} must be >= 0, got {t}")
        for pid, k in self.after_steps.items():
            if not (k >= 0):
                raise ValueError(f"crash step for pid {pid} must be >= 0, got {k}")

    def crash_time(self, pid: int) -> float:
        """The scheduled crash time of ``pid`` (``inf`` when none)."""
        return self.at_time.get(pid, math.inf)

    def crash_step(self, pid: int) -> float:
        """The scheduled crash step-count of ``pid`` (``inf`` when none)."""
        return self.after_steps.get(pid, math.inf)

    def crashes(self, pid: int) -> bool:
        return pid in self.at_time or pid in self.after_steps

    @classmethod
    def none(cls) -> "CrashSchedule":
        """A schedule with no crashes."""
        return cls()

    @classmethod
    def crash_all_but(
        cls, survivor: int, pids: Iterable[int], after_steps: int = 0
    ) -> "CrashSchedule":
        """Crash everyone except ``survivor`` after ``after_steps`` steps."""
        return cls(after_steps={p: after_steps for p in pids if p != survivor})


@dataclass
class RecoverSchedule:
    """When (if ever) each crashed process restarts.

    The crash-recovery model: a restarting process gets a **fresh program
    instance** (all local/volatile state lost — the generator is rebuilt
    from its factory) while **shared registers persist** across the crash.
    This is the model of recoverable-object work (Golab's recoverable
    consensus) layered on the paper's crash model.

    ``at_time[pid]`` — the process restarts at that virtual time.  A
    restart scheduled for a process that never crashed, or that finished
    before its crash fired, is a no-op; a restart scheduled *before* the
    crash time is also a no-op (the engine only restarts CRASHED
    processes).  One restart per pid: a recovered process that crashes
    again stays down.
    """

    at_time: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pid, t in self.at_time.items():
            # `not (t >= 0)` also rejects NaN, which `t < 0` lets through.
            if not (t >= 0):
                raise ValueError(f"recover time for pid {pid} must be >= 0, got {t}")

    def recover_time(self, pid: int) -> float:
        """The scheduled restart time of ``pid`` (``inf`` when none)."""
        return self.at_time.get(pid, math.inf)

    def recovers(self, pid: int) -> bool:
        return pid in self.at_time

    @classmethod
    def none(cls) -> "RecoverSchedule":
        """A schedule with no restarts."""
        return cls()
