"""Timing models: how long each step takes.

The paper's timing-based model assumes a *known* upper bound ``Δ`` on the
time any process needs to execute one statement involving a single access
to shared memory.  A :class:`TimingModel` decides the actual duration of
every such step; a *timing failure* is, by definition, any step whose
duration exceeds ``Δ``.

The models below cover the regimes the experiments need:

* :class:`ConstantTiming` / :class:`UniformTiming` — well-behaved
  timing-based systems (every step within ``Δ``);
* :class:`FailureWindowTiming` — a well-behaved base model with transient
  timing-failure windows layered on top (experiments E2, E8, E12);
* :class:`PerProcessTiming` — heterogeneous per-process speeds, used to
  model ``δ_i`` with ``Δ = max δ_i``;
* :class:`AsynchronousTiming` — unbounded (heavy-tailed) step durations:
  the fully asynchronous regime, i.e. timing failures may strike at any
  moment (experiments E6, E7, E13 shape checks);
* :class:`HookTiming` — a programmable adversary used to build the
  targeted schedules in :mod:`repro.sim.adversary`.

All randomized models draw from their own ``random.Random`` seeded at
construction, so every simulation is reproducible from its parameters.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from .failures import TimingFailureWindow
from .ops import Op

__all__ = [
    "StepContext",
    "TimingModel",
    "ConstantTiming",
    "UniformTiming",
    "PerProcessTiming",
    "FailureWindowTiming",
    "AsynchronousTiming",
    "HookTiming",
    "EmpiricalTiming",
]


@dataclass(frozen=True)
class StepContext:
    """Everything a timing model may condition a step duration on."""

    pid: int
    op: Op
    now: float
    step_index: int  # how many shared steps this process completed so far


class TimingModel(ABC):
    """Decides durations for shared steps, delays and local work."""

    @abstractmethod
    def shared_step_duration(self, ctx: StepContext) -> float:
        """Duration of one shared-memory access issued in context ``ctx``."""

    def delay_duration(self, pid: int, requested: float, now: float) -> float:
        """Duration of an explicit ``delay(d)``.

        The paper's accounting convention is that ``delay(Δ)`` takes
        exactly ``Δ`` time units; models may override to stretch delays
        (stretching a delay is harmless for safety — the statement only
        promises *at least* ``d``).
        """
        return requested

    def local_duration(self, pid: int, requested: float, now: float) -> float:
        """Duration of local (non-shared) work; exact by default."""
        return requested


class ConstantTiming(TimingModel):
    """Every shared step takes exactly ``step`` time units.

    With ``step <= Δ`` this is a timing-failure-free system; it is the
    reference model for the efficiency bounds (e.g. Theorem 2.1's
    ``15·Δ``).
    """

    def __init__(self, step: float) -> None:
        if step <= 0:
            raise ValueError(f"step duration must be positive, got {step}")
        self.step = float(step)

    def shared_step_duration(self, ctx: StepContext) -> float:
        return self.step

    def __repr__(self) -> str:
        return f"ConstantTiming(step={self.step})"


class UniformTiming(TimingModel):
    """Step durations drawn uniformly from ``[lo, hi]``.

    Keep ``hi <= Δ`` for a failure-free system with realistic jitter.
    """

    def __init__(self, lo: float, hi: float, seed: int = 0) -> None:
        if not (0 < lo <= hi):
            raise ValueError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.seed = seed
        self._rng = random.Random(seed)

    def shared_step_duration(self, ctx: StepContext) -> float:
        return self._rng.uniform(self.lo, self.hi)

    def __repr__(self) -> str:
        return f"UniformTiming(lo={self.lo}, hi={self.hi}, seed={self.seed})"


class PerProcessTiming(TimingModel):
    """Heterogeneous speeds: process ``i`` pays ``delta_i`` per step.

    Models the paper's ``δ_i`` with ``Δ = max_i δ_i``; pids missing from
    the map fall back to ``default``.
    """

    def __init__(self, deltas: Dict[int, float], default: float) -> None:
        if default <= 0:
            raise ValueError(f"default step duration must be positive, got {default}")
        for pid, d in deltas.items():
            if d <= 0:
                raise ValueError(f"step duration for pid {pid} must be positive, got {d}")
        self.deltas = dict(deltas)
        self.default = float(default)

    def shared_step_duration(self, ctx: StepContext) -> float:
        return self.deltas.get(ctx.pid, self.default)

    @property
    def max_delta(self) -> float:
        """The ``Δ = max δ_i`` this model realizes."""
        return max([self.default, *self.deltas.values()])

    def __repr__(self) -> str:
        return f"PerProcessTiming({self.deltas!r}, default={self.default})"


class FailureWindowTiming(TimingModel):
    """A base model plus transient timing-failure windows.

    Steps issued inside a window (by an affected process) are stretched by
    the window; overlapping windows compound by taking the worst (longest)
    stretched duration.  Outside every window the base model applies
    unchanged, so "failures stop at time T" is literally true after the
    last window closes.
    """

    def __init__(
        self, base: TimingModel, windows: Sequence[TimingFailureWindow]
    ) -> None:
        self.base = base
        self.windows = list(windows)

    def shared_step_duration(self, ctx: StepContext) -> float:
        nominal = self.base.shared_step_duration(ctx)
        worst = nominal
        for window in self.windows:
            if window.affects(ctx.pid, ctx.now):
                worst = max(worst, window.apply(nominal))
        return worst

    def delay_duration(self, pid: int, requested: float, now: float) -> float:
        return self.base.delay_duration(pid, requested, now)

    def local_duration(self, pid: int, requested: float, now: float) -> float:
        return self.base.local_duration(pid, requested, now)

    @property
    def last_failure_end(self) -> float:
        """The time after which no window can stretch a step."""
        return max((w.end for w in self.windows), default=0.0)

    def __repr__(self) -> str:
        return f"FailureWindowTiming(base={self.base!r}, windows={len(self.windows)})"


class AsynchronousTiming(TimingModel):
    """Unbounded step durations: the fully asynchronous regime.

    Durations are ``base`` time units most of the time, but with
    probability ``tail_prob`` a step is stretched by a Pareto-distributed
    factor — so *no* finite ``Δ`` bounds all steps, which is exactly an
    environment where timing failures never provably stop.
    """

    def __init__(
        self,
        base: float,
        tail_prob: float = 0.1,
        tail_alpha: float = 1.2,
        tail_scale: float = 4.0,
        seed: int = 0,
    ) -> None:
        if base <= 0:
            raise ValueError(f"base step duration must be positive, got {base}")
        if not (0.0 <= tail_prob <= 1.0):
            raise ValueError(f"tail_prob must be in [0, 1], got {tail_prob}")
        if tail_alpha <= 0:
            raise ValueError(f"tail_alpha must be positive, got {tail_alpha}")
        self.base = float(base)
        self.tail_prob = tail_prob
        self.tail_alpha = tail_alpha
        self.tail_scale = tail_scale
        self.seed = seed
        self._rng = random.Random(seed)

    def shared_step_duration(self, ctx: StepContext) -> float:
        if self._rng.random() < self.tail_prob:
            factor = self.tail_scale * self._rng.paretovariate(self.tail_alpha)
            return self.base * max(1.0, factor)
        return self.base

    def __repr__(self) -> str:
        return (
            f"AsynchronousTiming(base={self.base}, tail_prob={self.tail_prob}, "
            f"seed={self.seed})"
        )


class EmpiricalTiming(TimingModel):
    """Step durations bootstrapped from a measured sample set.

    Bridges the real-thread backend and the simulator: measure the host's
    inter-step gaps under contention
    (:func:`repro.runtime.timing.measure_host_delta` exposes the samples'
    distribution), rescale them into simulator time units, and replay them
    here — the simulation then exercises the algorithms against the
    *actual* timing texture of the machine, GIL stalls included, while
    staying fully deterministic and replayable.

    Durations are drawn uniformly (with replacement) from ``samples``
    scaled so that the sample quantile ``calibrate_quantile`` maps to
    ``calibrated_to`` time units — e.g. map the p99 to ``Δ``, making
    everything above the p99 a (realistically rare) timing failure.
    """

    def __init__(
        self,
        samples: Sequence[float],
        calibrated_to: float = 1.0,
        calibrate_quantile: float = 0.99,
        seed: int = 0,
    ) -> None:
        cleaned = sorted(s for s in samples if s > 0)
        if not cleaned:
            raise ValueError("need at least one positive sample")
        if not (0.0 < calibrate_quantile <= 1.0):
            raise ValueError(
                f"calibrate_quantile must be in (0, 1], got {calibrate_quantile}"
            )
        if calibrated_to <= 0:
            raise ValueError(f"calibrated_to must be positive, got {calibrated_to}")
        anchor = cleaned[min(len(cleaned) - 1, int(calibrate_quantile * len(cleaned)))]
        self._scale = calibrated_to / anchor
        self._samples = cleaned
        self.seed = seed
        self._rng = random.Random(seed)

    def shared_step_duration(self, ctx: StepContext) -> float:
        return self._rng.choice(self._samples) * self._scale

    def __repr__(self) -> str:
        return (
            f"EmpiricalTiming({len(self._samples)} samples, seed={self.seed})"
        )


class HookTiming(TimingModel):
    """A programmable model: a hook may override any step's duration.

    The hook receives the :class:`StepContext` and the nominal duration
    from ``base``; returning ``None`` keeps the nominal duration.  This is
    the substrate for the targeted adversaries in
    :mod:`repro.sim.adversary` (e.g. "stall exactly the write to ``y[r]``
    that Algorithm 1's agreement argument worries about").
    """

    def __init__(
        self,
        base: TimingModel,
        hook: Callable[[StepContext, float], Optional[float]],
    ) -> None:
        self.base = base
        self.hook = hook

    def shared_step_duration(self, ctx: StepContext) -> float:
        nominal = self.base.shared_step_duration(ctx)
        override = self.hook(ctx, nominal)
        return nominal if override is None else override

    def delay_duration(self, pid: int, requested: float, now: float) -> float:
        return self.base.delay_duration(pid, requested, now)

    def local_duration(self, pid: int, requested: float, now: float) -> float:
        return self.base.local_duration(pid, requested, now)

    def __repr__(self) -> str:
        return f"HookTiming(base={self.base!r})"
