"""Atomic registers and shared memory for the simulator.

The paper's model is shared memory consisting of *atomic read/write
registers*.  A :class:`Register` is a lightweight handle — a name plus an
initial value — that algorithms embed in the :class:`~repro.sim.ops.Read`
and :class:`~repro.sim.ops.Write` operations they yield.  The actual
storage lives in a :class:`Memory` owned by whichever executor interprets
the operations.

``Memory`` is default-backed: a register that has never been written reads
as its handle's ``initial`` value.  This gives us the paper's *infinite*
register arrays (``x[1..∞, 0..1]``, ``y[1..∞]``) for free — an
:class:`Array` manufactures handles on demand and nothing is allocated
until a cell is first written.

``Memory`` also keeps an audit of every distinct register ever *touched*
(read or written), which experiment E9 uses to compare the space
consumption of the mutual-exclusion algorithms against the Burns–Lynch /
Lynch–Shavit lower bound of Theorem 3.1.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

__all__ = ["Register", "Array", "Memory", "RegisterNamespace"]


class Register:
    """Handle for one atomic shared register.

    Handles are value objects: two handles with the same ``name`` refer to
    the same storage cell.  ``initial`` is the value read before any write;
    executors trust the handle for the default, so all handles for one name
    should agree on it (``Memory`` checks this in debug mode).
    """

    __slots__ = ("name", "initial")

    def __init__(self, name: Hashable, initial: Any = 0) -> None:
        self.name = name
        self.initial = initial

    def read(self) -> "ops_module.Read":
        """Build a read operation: ``value = yield reg.read()``."""
        from . import ops as ops_module

        return ops_module.Read(self)

    def write(self, value: Any) -> "ops_module.Write":
        """Build a write operation: ``yield reg.write(v)``."""
        from . import ops as ops_module

        return ops_module.Write(self, value)

    def __repr__(self) -> str:
        return f"Register({self.name!r}, initial={self.initial!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Register) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Register", self.name))


class Array:
    """A (possibly unbounded) array of registers sharing a base name.

    Indexing with one or more indices yields a :class:`Register` whose name
    is ``(base, idx...)``.  Multi-dimensional access mirrors the paper's
    ``x[r, v]`` notation::

        x = Array("x", initial=0)
        op = x[r, v].read()
    """

    __slots__ = ("base", "initial")

    def __init__(self, base: Hashable, initial: Any = 0) -> None:
        self.base = base
        self.initial = initial

    def __getitem__(self, index: Any) -> Register:
        if isinstance(index, tuple):
            name: Tuple[Hashable, ...] = (self.base,) + index
        else:
            name = (self.base, index)
        return Register(name, self.initial)

    def __repr__(self) -> str:
        return f"Array({self.base!r}, initial={self.initial!r})"


class Memory:
    """Backing store for atomic registers.

    The simulator is single-threaded and applies each shared-memory
    operation at a single instant of virtual time, so plain dictionary
    reads and writes are trivially atomic/linearizable here.  (The real
    thread backend in :mod:`repro.runtime` uses a lock per memory instead.)
    """

    __slots__ = (
        "_store",
        "_touched",
        "_write_count",
        "_read_count",
        "_rmw_count",
        "_initials",
    )

    def __init__(self) -> None:
        self._store: Dict[Hashable, Any] = {}
        self._touched: Set[Hashable] = set()
        self._initials: Dict[Hashable, Any] = {}
        self._write_count = 0
        self._read_count = 0
        self._rmw_count = 0

    def read(self, register: Register) -> Any:
        """Atomically read ``register`` (its initial value if unwritten)."""
        self._touch(register)
        self._read_count += 1
        return self._store.get(register.name, register.initial)

    def write(self, register: Register, value: Any) -> None:
        """Atomically write ``value`` to ``register``."""
        self._touch(register)
        self._write_count += 1
        self._store[register.name] = value

    def rmw(self, register: Register, transform: Any) -> Any:
        """Atomically apply ``transform(old) -> (new, result)``.

        Counts as one read and one write for the access statistics (the
        primitive both observes and updates the cell).
        """
        self._touch(register)
        self._read_count += 1
        self._write_count += 1
        self._rmw_count += 1
        old = self._store.get(register.name, register.initial)
        new, result = transform(old)
        self._store[register.name] = new
        return result

    def peek(self, register: Register) -> Any:
        """Read without counting as a touch (for assertions and metrics)."""
        return self._store.get(register.name, register.initial)

    def poke(self, register: Register, value: Any) -> None:
        """Write without counting as a touch (for test setup)."""
        self._store[register.name] = value

    def _touch(self, register: Register) -> None:
        name = register.name
        if name not in self._touched:
            self._touched.add(name)
            self._initials[name] = register.initial
        elif self._initials.get(name) != register.initial:
            raise ValueError(
                f"register {name!r} used with conflicting initial values: "
                f"{self._initials[name]!r} vs {register.initial!r}"
            )

    # -- auditing ---------------------------------------------------------

    @property
    def touched_registers(self) -> Set[Hashable]:
        """Names of every register ever read or written."""
        return set(self._touched)

    @property
    def register_count(self) -> int:
        """Number of distinct registers ever touched (experiment E9)."""
        return len(self._touched)

    @property
    def read_count(self) -> int:
        return self._read_count

    @property
    def write_count(self) -> int:
        return self._write_count

    @property
    def rmw_count(self) -> int:
        """Read-modify-writes applied (each also counts one read + one write)."""
        return self._rmw_count

    def snapshot(self) -> Dict[Hashable, Any]:
        """A copy of the written cells (unwritten cells are implicit)."""
        return dict(self._store)

    def fingerprint(self) -> Tuple[Tuple[Hashable, Any], ...]:
        """A hashable, order-independent digest of the written cells.

        Cells whose current value equals their initial value are omitted so
        that "written back to the default" and "never written" fingerprints
        coincide — both yield identical futures for deterministic
        processes, which keeps the model checker's memoization sound *and*
        effective.
        """
        items = []
        for name, value in self._store.items():
            if name in self._initials and value == self._initials[name]:
                continue
            items.append((_freeze(name), _freeze(value)))
        items.sort(key=repr)
        return tuple(items)

    def __repr__(self) -> str:
        return f"Memory({len(self._store)} cells, {len(self._touched)} touched)"


def _freeze(value: Any) -> Hashable:
    """Best-effort conversion of a value to something hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((_freeze(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, set):
        return tuple(sorted((_freeze(v) for v in value), key=repr))
    return value


class RegisterNamespace:
    """Prefixes register names so independent algorithm instances coexist.

    Two algorithm objects built over different namespaces can share one
    :class:`Memory` without register collisions — this is how Algorithm 3
    guarantees "the registers of A do not include x".

    Algorithm classes that default their namespace use :meth:`unique`, so
    two default-constructed instances never collide silently; pass an
    explicit namespace when registers must be addressable from outside
    (targeted adversaries, test assertions).
    """

    __slots__ = ("prefix",)

    _counter = itertools.count()

    def __init__(self, prefix: Hashable) -> None:
        self.prefix = prefix

    @classmethod
    def unique(cls, base: Hashable) -> "RegisterNamespace":
        """A namespace guaranteed distinct from every other default one.

        The discriminator is an integer (not a string) so that
        :func:`repro.sim.adversary.register_leaf` — which identifies the
        human-level register name by the trailing string component — is
        never fooled by the suffix.
        """
        return cls((base, next(cls._counter)))

    def register(self, name: Hashable, initial: Any = 0) -> Register:
        return Register((self.prefix, name), initial)

    def array(self, base: Hashable, initial: Any = 0) -> Array:
        return Array((self.prefix, base), initial)

    def child(self, suffix: Hashable) -> "RegisterNamespace":
        return RegisterNamespace((self.prefix, suffix))

    def __repr__(self) -> str:
        return f"RegisterNamespace({self.prefix!r})"


def registers_in(names: Iterable[Hashable], prefix: Hashable) -> Iterator[Hashable]:
    """Yield the register names under ``prefix`` (audit helper)."""
    for name in names:
        if isinstance(name, tuple) and name and name[0] == prefix:
            yield name
