"""Simulated processes.

A *program* is a Python generator that yields :class:`~repro.sim.ops.Op`
objects and receives each operation's result via ``send``; its ``return``
value (if any) becomes the process's result.  A :class:`Process` wraps a
program with the bookkeeping the engine needs: lifecycle state, step
counts, and the eventual result.

The paper's model has no bound on the number of participating processes
(Theorem 2.1 item 5); the engine accepts any number of processes and the
algorithms never need to know ``n`` unless their specification requires it
(mutual exclusion algorithms are parameterized by ``n`` as in the paper).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional

from .ops import Op

__all__ = ["Program", "ProgramFactory", "ProcessState", "Process"]

# The generator protocol every algorithm follows.
Program = Generator[Op, Any, Any]

# Builds a fresh program instance for a pid — required for crash-recovery
# restarts (a generator cannot be rewound, only rebuilt).
ProgramFactory = Callable[[int], Program]


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    READY = "ready"  # will issue its next operation when scheduled
    RUNNING = "running"  # an operation is in flight
    DONE = "done"  # program returned normally
    CRASHED = "crashed"  # stopped permanently by the crash schedule
    FAILED = "failed"  # program raised an exception (a bug, re-raised)


class Process:
    """Engine-side wrapper around one program."""

    __slots__ = (
        "pid",
        "name",
        "program",
        "factory",
        "incarnation",
        "state",
        "result",
        "error",
        "shared_steps",
        "total_ops",
        "crash_time",
        "crash_step",
        "started_at",
        "finished_at",
    )

    def __init__(
        self,
        pid: int,
        program: Program,
        name: Optional[str] = None,
        factory: Optional[ProgramFactory] = None,
    ) -> None:
        self.pid = pid
        self.name = name if name is not None else f"p{pid}"
        self.program = program
        self.factory = factory  # rebuilds the program on a restart
        self.incarnation = 0  # bumped by each crash-recovery restart
        self.state = ProcessState.READY
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.shared_steps = 0  # completed shared-memory accesses
        self.total_ops = 0  # completed operations of any kind
        self.crash_time: float = float("inf")
        self.crash_step: float = float("inf")
        self.started_at: float = 0.0
        self.finished_at: Optional[float] = None

    @property
    def alive(self) -> bool:
        """True while the process may still take steps."""
        return self.state in (ProcessState.READY, ProcessState.RUNNING)

    @property
    def decided(self) -> bool:
        """True when the program ran to completion."""
        return self.state is ProcessState.DONE

    def __repr__(self) -> str:
        return (
            f"Process(pid={self.pid}, name={self.name!r}, state={self.state.value}, "
            f"shared_steps={self.shared_steps})"
        )
