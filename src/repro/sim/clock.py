"""Virtual time for the discrete-event simulator.

Time is a nonnegative float measured in abstract "time units"; the paper's
``Δ`` (the known upper bound on the duration of one shared-memory step) is
expressed in the same units.  The clock only moves forward, and only the
engine may advance it.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically nondecreasing virtual clock."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock must start at a nonnegative time, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """The current virtual time."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to time ``t``.

        Raises :class:`ValueError` on any attempt to move backwards; the
        engine's event queue guarantees it never does.
        """
        if t < self._now:
            raise ValueError(f"clock cannot move backwards: {self._now} -> {t}")
        self._now = t

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now})"
